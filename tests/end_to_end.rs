//! Workspace-level integration: a miniature application exercising every
//! layer together — PAMI clients, the MPI layer, sub-communicators,
//! one-sided windows, and both collective paths — on one simulated
//! partition.

use pami_repro::bgq_collnet::ops::elems;
use pami_repro::pami::{coll::Algorithm, Counter, Machine, MemKey, MemRegion, PayloadSource};
use pami_repro::pami_mpi::{CollOp, DataType, Mpi, MpiConfig, ANY_SOURCE, ANY_TAG};

const NODES: usize = 4;
const PPN: usize = 2;

#[test]
fn mixed_workload_application() {
    let machine = Machine::with_nodes(NODES).ppn(PPN).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        // One-sided window per task, exchanged over a world bcast.
        let window = MemRegion::zeroed(64);
        let hits = Counter::new();
        hits.add_expected(8);
        let key = env.machine.create_window(window.clone(), Some(hits.clone()));
        env.machine.task_barrier();

        let world = mpi.world().clone();
        let me = world.rank();
        let n = world.size();

        // Publish every task's key via n broadcasts (bootstrap pattern).
        let keys: Vec<MemKey> = (0..n)
            .map(|r| {
                let buf = MemRegion::zeroed(8);
                if r == me {
                    buf.write_i64(0, key.0 as i64);
                }
                mpi.bcast(&buf, 0, 8, r, &world);
                MemKey(buf.read_i64(0) as u64)
            })
            .collect();

        // Phase 1: one-sided ring put through the PAMI client underneath.
        let right = (me + 1) % n;
        let ctx = mpi.client().context(0);
        let payload = MemRegion::zeroed(8);
        payload.write_i64(0, me as i64 * 11);
        let put_done = Counter::new();
        put_done.add_expected(8);
        ctx.put(pami_repro::pami::PutArgs {
            dest_task: world.task_of(right),
            window: pami_repro::pami::WindowRef::base(keys[right]),
            payload: PayloadSource::Region { region: payload, offset: 0, len: 8 },
            local_done: Some(put_done.clone()),
        })
        .unwrap();
        ctx.advance_until(|| put_done.is_complete() && hits.is_complete());
        let left = (me + n - 1) % n;
        assert_eq!(window.read_i64(0), left as i64 * 11, "ring put landed");

        // Phase 2: split into odd/even halves; allreduce within each.
        let sub = mpi.comm_split(&world, (me % 2) as i32, me as i32).unwrap();
        let src = MemRegion::from_vec(elems::from_i64(&[me as i64]));
        let dst = MemRegion::zeroed(8);
        mpi.allreduce((&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64, &sub);
        let want: i64 = (0..n as i64).filter(|r| (r % 2) == (me as i64 % 2)).sum();
        assert_eq!(elems::to_i64(&dst.to_vec()), vec![want]);

        // Phase 3: wildcard gather at rank 0 over tagged sends.
        if me == 0 {
            let buf = MemRegion::zeroed(8);
            let mut sum = 0i64;
            for _ in 1..n {
                let st = mpi.recv(&buf, 0, 8, ANY_SOURCE, ANY_TAG, &world);
                assert_eq!(st.tag, 500 + st.source);
                sum += buf.read_i64(0);
            }
            assert_eq!(sum, (1..n as i64).map(|r| r * r).sum());
        } else {
            let buf = MemRegion::zeroed(8);
            buf.write_i64(0, (me * me) as i64);
            mpi.send(&buf, 0, 8, 0, 500 + me as i32, &world);
        }

        // Phase 4: hardware vs software collective agreement on world.
        world.optimize().expect("rectangular world");
        for alg in [Algorithm::HwCollNet, Algorithm::SwBinomial] {
            let d = MemRegion::zeroed(8);
            mpi.allreduce_with(alg, (&src, 0), (&d, 0), 1, CollOp::Max, DataType::Int64, &world);
            assert_eq!(elems::to_i64(&d.to_vec()), vec![n as i64 - 1]);
        }
        mpi.barrier(&world);
    });
}

#[test]
fn rectangle_broadcast_matches_collnet_broadcast() {
    let machine = Machine::with_nodes(8).build();
    machine.run(|env| {
        let mpi = Mpi::init(&env.machine, env.task, MpiConfig::default());
        env.machine.task_barrier();
        let world = mpi.world().clone();
        world.optimize().unwrap();
        let me = world.rank();
        let len = 100_000;
        let reference: Vec<u8> = (0..len).map(|i| ((i * 7) % 251) as u8).collect();
        // Once through the collective network…
        let a = if me == 0 {
            MemRegion::from_vec(reference.clone())
        } else {
            MemRegion::zeroed(len)
        };
        mpi.bcast(&a, 0, len, 0, &world);
        // …once through the 10-color rectangle algorithm.
        let b = if me == 0 {
            MemRegion::from_vec(reference.clone())
        } else {
            MemRegion::zeroed(len)
        };
        mpi.bcast_rect(&b, 0, len, 0, &world);
        assert_eq!(a.to_vec(), reference);
        assert_eq!(b.to_vec(), reference);
        mpi.barrier(&world);
    });
}

#[test]
fn fifo_budget_supports_many_contexts_per_node() {
    // 16 contexts per task (the 1-ppn configuration of the paper) fits
    // comfortably in the 544/272 FIFO budget.
    let machine = Machine::with_nodes(2).build();
    machine.run(|env| {
        let client = pami_repro::pami::Client::create(&env.machine, env.task, "many", 16);
        env.machine.task_barrier();
        assert_eq!(client.num_contexts(), 16);
        // Each context pinned injection FIFOs: 16 × 4 = 64 of 544 used.
    });
}
