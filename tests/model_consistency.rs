//! Cross-checks between the functional stack and the timing models: the
//! orderings the paper's evaluation rests on must hold in both.

use pami_repro::bgq_netsim::{coll, p2p, MachineParams};

#[test]
fn modeled_latency_orderings_match_paper() {
    let p = MachineParams::default();
    // PAMI beats MPI; immediate beats queued.
    let imm = p2p::pami_send_immediate_latency(&p, 0);
    let send = p2p::pami_send_latency(&p, 0);
    let classic = p2p::mpi_latency(
        &p,
        p2p::MpiLatencyConfig { thread_optimized: false, thread_multiple: false, commthreads: false },
        0,
    );
    assert!(imm < send && send < classic);
    // Barrier is the cheapest collective; allreduce adds combine cost.
    for nodes in [64usize, 512, 2048] {
        for ppn in [1usize, 4, 16] {
            assert!(
                coll::barrier_latency(&p, nodes, ppn) < coll::allreduce_latency(&p, nodes, ppn),
                "nodes={nodes} ppn={ppn}"
            );
        }
    }
}

#[test]
fn modeled_throughput_never_exceeds_hardware() {
    let p = MachineParams::default();
    for size in [4096usize, 1 << 16, 1 << 20, 1 << 23] {
        for ppn in [1usize, 4, 16] {
            assert!(coll::allreduce_throughput(&p, 2048, ppn, size) <= p.link_payload_bw);
            assert!(coll::broadcast_throughput(&p, 2048, ppn, size) <= p.link_payload_bw);
            assert!(
                coll::rect_broadcast_throughput(&p, 2048, ppn, size)
                    <= 10.0 * p.link_payload_bw
            );
            // The 10-color algorithm never loses to the single tree.
            assert!(
                coll::rect_broadcast_throughput(&p, 2048, ppn, size)
                    >= 0.9 * coll::broadcast_throughput(&p, 2048, ppn, size),
                "size={size} ppn={ppn}"
            );
        }
    }
}

#[test]
fn modeled_peak_sizes_shift_down_with_ppn() {
    // The L2-spill knee moves to smaller buffers as PPN grows — the core
    // scaling insight of Figures 8/9.
    let p = MachineParams::default();
    let peak_size = |ppn: usize| -> usize {
        (13..=25)
            .map(|e| 1usize << e)
            .max_by(|&a, &b| {
                coll::allreduce_throughput(&p, 2048, ppn, a)
                    .total_cmp(&coll::allreduce_throughput(&p, 2048, ppn, b))
            })
            .unwrap()
    };
    let p1 = peak_size(1);
    let p4 = peak_size(4);
    let p16 = peak_size(16);
    assert!(p1 >= p4 && p4 >= p16, "peaks {p1} {p4} {p16}");
    assert!(p16 <= 1 << 20, "ppn16 peaks at or below 1MB");
}

#[test]
fn functional_ordering_pami_faster_than_mpi() {
    // The functional stack reproduces Table 1/2's headline ordering:
    // the raw PAMI path costs less software than the MPI path on the same
    // host. (Absolute numbers are host-dependent; the ratio is not.)
    let pami = pami_bench_mini::pami_rtt(600);
    let mpi = pami_bench_mini::mpi_rtt(600);
    assert!(
        mpi.as_secs_f64() > pami.as_secs_f64() * 1.05,
        "MPI half-rtt {mpi:?} should exceed PAMI {pami:?}"
    );
}

/// A miniature inline version of the bench-crate harness (the root test
/// crate does not depend on `bench`).
mod pami_bench_mini {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use pami_repro::pami::{Client, Endpoint, Machine, MemRegion, Recv};
    use pami_repro::pami_mpi::{Mpi, MpiConfig};

    pub fn pami_rtt(iters: u32) -> Duration {
        let machine = Machine::with_nodes(2).build();
        let c0 = Client::create(&machine, 0, "m", 1);
        let c1 = Client::create(&machine, 1, "m", 1);
        let got = Arc::new(AtomicU64::new(0));
        for c in [&c0, &c1] {
            let got = Arc::clone(&got);
            c.context(0).set_dispatch(
                1,
                Arc::new(move |_ctx, _msg, _p| {
                    got.fetch_add(1, Ordering::Relaxed);
                    Recv::Done
                }),
            );
        }
        let start = Instant::now();
        for i in 1..=iters as u64 {
            c0.context(0).send_immediate(Endpoint::of_task(1), 1, b"", b"x").unwrap();
            while got.load(Ordering::Relaxed) < 2 * i - 1 {
                c0.context(0).advance();
                c1.context(0).advance();
            }
            c1.context(0).send_immediate(Endpoint::of_task(0), 1, b"", b"x").unwrap();
            while got.load(Ordering::Relaxed) < 2 * i {
                c1.context(0).advance();
                c0.context(0).advance();
            }
        }
        start.elapsed() / (2 * iters)
    }

    pub fn mpi_rtt(iters: u32) -> Duration {
        let machine = Machine::with_nodes(2).build();
        let mpi0 = Mpi::init(&machine, 0, MpiConfig::default());
        let mpi1 = Mpi::init(&machine, 1, MpiConfig::default());
        let w0 = mpi0.world().clone();
        let w1 = mpi1.world().clone();
        let b0 = MemRegion::zeroed(8);
        let b1 = MemRegion::zeroed(8);
        let start = Instant::now();
        for _ in 0..iters {
            let r = mpi1.irecv(&b1, 0, 8, 0, 1, &w1);
            mpi0.send(&b0, 0, 8, 1, 1, &w0);
            while !mpi1.request_complete(r) {
                mpi0.advance();
                mpi1.advance();
            }
            mpi1.test(r);
            let r = mpi0.irecv(&b0, 0, 8, 1, 2, &w0);
            mpi1.send(&b1, 0, 8, 0, 2, &w1);
            while !mpi0.request_complete(r) {
                mpi1.advance();
                mpi0.advance();
            }
            mpi0.test(r);
        }
        start.elapsed() / (2 * iters)
    }
}
