//! Link-level reliability: per-(source, destination) retransmit channels,
//! the `ras.*` counter family, and the RAS event ring.
//!
//! BG/Q's serdes links run a hardware link-level protocol — CRC per packet,
//! sliding-window retransmit on CRC failure, and a RAS event when a link
//! retries persistently or dies. This module is the software model of that
//! layer for the simulated fabric: when a [`crate::faults::FaultPlan`] is
//! installed, traffic between distinct nodes moves as [`Frame`]s through a
//! per-(src, dst) [`Channel`] that delivers in order, retransmits lost or
//! corrupted frames with exponential backoff, reroutes around killed links,
//! and — when the retry budget runs out — fails the outstanding transfers'
//! completion counters with a typed [`DeliveryFault`] instead of hanging
//! whoever is polling them.
//!
//! Two deliberate simplifications, documented here because they bound what
//! the model can show:
//!
//! * **Acks are lossless and immediate.** The simulation's "wire" is a
//!   function call, so a delivered frame is acknowledged on the spot
//!   (cumulative ack ≡ frame pop). The retry window therefore bounds
//!   *transmissions per link-pump tick* rather than unacked frames in
//!   flight; drops, corruption and delay all act on the data frames.
//! * **Faults fire on the links of the route.** A frame's fate is decided
//!   per crossed link (first bad link wins), so longer routes really are
//!   more exposed, but there is no per-hop buffering — a frame is either
//!   delivered whole or lost whole.
//!
//! The channel state machine itself is driven by
//! [`crate::fabric::MuFabric::pump_links`]; this module owns the data
//! structures and the bookkeeping.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_hw::{Counter as HwCounter, DeliveryFault, MemRegion};
use bgq_torus::{Dir, LinkHealth};
use bgq_upc::{Counter, Upc};
use bytes::Bytes;
use parking_lot::Mutex;

use crate::descriptor::Descriptor;
use crate::faults::{FaultInjector, RetryConfig};
use crate::fifo::RecFifoId;

/// `ras.*` telemetry probes — the reliability layer's RAS event counters,
/// registered on the fabric's shared [`Upc`] so `pamistat` exports them
/// alongside `mu.*`. All no-ops with the `telemetry` feature off.
pub struct RasCounters {
    /// Frames that arrived with a failing CRC and were discarded.
    pub crc_errors: Counter,
    /// Frame retransmissions (every attempt beyond the first).
    pub retransmits: Counter,
    /// Directed links declared dead by kill schedules or
    /// [`crate::fabric::MuFabric::kill_link`] (both directions of a
    /// physical link count).
    pub link_down: Counter,
    /// Channels that switched to a non-deterministic route around dead
    /// links.
    pub reroutes: Counter,
    /// Transfers whose completion counters were failed with a
    /// [`DeliveryFault`] (retry budget exhausted or destination
    /// unreachable).
    pub delivery_failures: Counter,
}

impl RasCounters {
    pub(crate) fn new(upc: &Upc) -> Self {
        RasCounters {
            crc_errors: upc.counter("ras.crc_errors"),
            retransmits: upc.counter("ras.retransmits"),
            link_down: upc.counter("ras.link_down"),
            reroutes: upc.counter("ras.reroutes"),
            delivery_failures: upc.counter("ras.delivery_failures"),
        }
    }
}

/// What a [`RasEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RasEventKind {
    /// A frame was silently dropped by the fabric.
    PacketDropped,
    /// A frame arrived corrupted and was discarded.
    CrcError,
    /// A frame was retransmitted.
    Retransmit,
    /// A directed link went down (`detail` = link id).
    LinkDown,
    /// A channel rerouted around dead links (`detail` = new hop count).
    Reroute,
    /// A transfer failed permanently (`detail` = fault discriminant).
    DeliveryFailure,
    /// A directed link came back up after a service action (`detail` =
    /// link id).
    LinkRevived,
    /// A dead channel was administratively cleared so traffic (e.g. a
    /// persistent-channel renegotiation) can flow again (`detail` = the
    /// fault discriminant that had killed it).
    ChannelRevived,
}

impl RasEventKind {
    /// Stable lower-case name (used by `pamistat` and the chaos bench).
    pub fn as_str(&self) -> &'static str {
        match self {
            RasEventKind::PacketDropped => "packet_dropped",
            RasEventKind::CrcError => "crc_error",
            RasEventKind::Retransmit => "retransmit",
            RasEventKind::LinkDown => "link_down",
            RasEventKind::Reroute => "reroute",
            RasEventKind::DeliveryFailure => "delivery_failure",
            RasEventKind::LinkRevived => "link_revived",
            RasEventKind::ChannelRevived => "channel_revived",
        }
    }
}

/// One entry in the RAS event ring.
#[derive(Clone, Debug)]
pub struct RasEvent {
    /// Source-node link-pump tick when the event fired.
    pub tick: u64,
    /// What happened.
    pub kind: RasEventKind,
    /// Source node of the affected channel.
    pub src_node: u32,
    /// Destination node of the affected channel.
    pub dst_node: u32,
    /// Kind-specific detail (frame sequence, link id, hop count, …).
    pub detail: u64,
}

/// Bounded RAS event ring: newest events win, the drop count is kept so an
/// operator can tell the ring overflowed. The control plane (RAS) is off
/// the data path, so a mutex is fine here.
/// Observer invoked synchronously for every RAS event as it is recorded.
///
/// This is the RAS→policy feedback hook: `Machine` installs one that feeds
/// retransmit/delivery-failure deltas into the protocol policy so flaky
/// destinations shift toward counter-protected rendezvous. Observers run on
/// the control plane (record time, under no ring lock) and must be cheap
/// and non-reentrant into the link layer.
pub type RasObserver = Arc<dyn Fn(&RasEvent) + Send + Sync>;

pub struct RasRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    observer: OnceLock<RasObserver>,
}

struct RingInner {
    events: VecDeque<RasEvent>,
    dropped: u64,
}

impl RasRing {
    pub(crate) fn new(capacity: usize) -> Self {
        RasRing {
            inner: Mutex::new(RingInner { events: VecDeque::new(), dropped: 0 }),
            capacity: capacity.max(1),
            observer: OnceLock::new(),
        }
    }

    /// Install the event observer. Set-once: later calls are ignored, so a
    /// machine's policy hook cannot be silently displaced.
    pub(crate) fn set_observer(&self, obs: RasObserver) {
        let _ = self.observer.set(obs);
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn record(&self, ev: RasEvent) {
        if let Some(obs) = self.observer.get() {
            obs(&ev);
        }
        let mut g = self.inner.lock();
        if g.events.len() == self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }

    /// Copy out the ring (oldest first) and the overflow drop count.
    pub fn snapshot(&self) -> (Vec<RasEvent>, u64) {
        let g = self.inner.lock();
        (g.events.iter().cloned().collect(), g.dropped)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no event has been recorded (and none dropped).
    pub fn is_empty(&self) -> bool {
        let g = self.inner.lock();
        g.events.is_empty() && g.dropped == 0
    }
}

/// A frame's payload: clone-cheap ingredients for rebuilding the delivery
/// on a retransmit attempt.
#[derive(Clone)]
pub(crate) enum FramePayload {
    /// Bytes staged in the frame.
    Inline(Bytes),
    /// Zero-copy window into the source region.
    Region { region: MemRegion, offset: usize, len: usize },
}

impl FramePayload {
    pub(crate) fn len(&self) -> usize {
        match self {
            FramePayload::Inline(b) => b.len(),
            FramePayload::Region { len, .. } => *len,
        }
    }
}

/// What delivering a frame does at the destination.
pub(crate) enum FrameBody {
    /// One memory-FIFO packet.
    Packet {
        rec_fifo: RecFifoId,
        src_context: u16,
        dispatch: u16,
        metadata: Bytes,
        msg_id: u64,
        msg_len: u32,
        offset: u32,
        /// Short-tier flag, carried so the delivered [`crate::packet::MuPacket`]
        /// keeps its tier under a fault plan.
        short: bool,
        payload: FramePayload,
    },
    /// One ≤512-byte window of a direct put.
    Put {
        dst_region: MemRegion,
        dst_offset: usize,
        payload: FramePayload,
        rec_counter: Option<HwCounter>,
    },
    /// A remote-get request carrying the payload descriptor the
    /// destination injects on our behalf.
    Get { desc: Box<Descriptor> },
}

/// Transmission state of the channel's front frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FrameState {
    /// Not yet transmitted at the current attempt.
    Queued,
    /// Transmitted and lost (dropped or corrupted); waiting out the RTO
    /// that started at this tick.
    Lost { since: u64 },
    /// In flight but delayed; deliverable at this tick.
    Delayed { until: u64 },
}

/// One frame in a channel: a unit of link-level (re)transmission.
pub(crate) struct Frame {
    /// Channel-local sequence number (fate-hash input, receiver tracking).
    pub seq: u64,
    /// Transmission attempt, 0-based.
    pub attempt: u32,
    /// Where the frame is in the transmit state machine.
    pub state: FrameState,
    /// Bytes credited to `inj_counter` when the frame is acknowledged.
    pub credit: u64,
    /// Source-side completion counter share.
    pub inj_counter: Option<HwCounter>,
    /// The delivery action.
    pub body: FrameBody,
}

impl Frame {
    /// Fail every completion counter this frame carries (including the
    /// counters buried in a remote-get's payload descriptor) — called when
    /// the channel dies so pollers see completion-with-fault instead of a
    /// hang. Returns how many counters were newly failed.
    pub(crate) fn fail(&self, fault: DeliveryFault) -> u64 {
        let mut failed = 0;
        if let Some(c) = &self.inj_counter {
            failed += c.fail(fault) as u64;
        }
        failed + fail_body(&self.body, fault)
    }
}

/// Fail the destination-side counters a frame body carries.
pub(crate) fn fail_body(body: &FrameBody, fault: DeliveryFault) -> u64 {
    match body {
        FrameBody::Put { rec_counter: Some(c), .. } => c.fail(fault) as u64,
        FrameBody::Get { desc } => fail_descriptor(desc, fault),
        _ => 0,
    }
}

/// Recursively fail the counters a descriptor carries.
pub(crate) fn fail_descriptor(desc: &Descriptor, fault: DeliveryFault) -> u64 {
    let mut failed = 0;
    if let Some(c) = &desc.inj_counter {
        failed += c.fail(fault) as u64;
    }
    match &desc.kind {
        crate::descriptor::XferKind::DirectPut { rec_counter: Some(c), .. } => {
            failed += c.fail(fault) as u64;
        }
        crate::descriptor::XferKind::RemoteGet { payload } => {
            failed += fail_descriptor(payload, fault);
        }
        _ => {}
    }
    failed
}

/// Mutable half of a channel, guarded by the channel mutex.
pub(crate) struct TxState {
    /// Frames awaiting transmission/ack, in order. The front frame is the
    /// one the go-back-N state machine is working on.
    pub queue: VecDeque<Frame>,
    /// Current retransmit timeout in ticks (exponential backoff).
    pub rto: u64,
    /// Retransmissions consumed by the *front* frame.
    pub retries: u32,
    /// Cached healthy route; `None` = recompute before next transmission.
    pub route: Option<Vec<Dir>>,
    /// [`LinkHealth::epoch`] the cached route was computed at; a newer
    /// epoch invalidates the cache.
    pub route_epoch: usize,
    /// Set when the channel failed permanently; new frames fail on push.
    pub dead: Option<DeliveryFault>,
}

/// A reliable link-level channel for one (source node, destination node)
/// pair — the analogue of the BG/Q send unit's per-link retransmission
/// FIFO, lifted to route granularity.
pub(crate) struct Channel {
    pub src: u32,
    pub dst: u32,
    /// Next frame sequence number to assign. Atomic (not under `tx`) so
    /// the fair-weather path can stamp sequence numbers without taking
    /// the channel lock; queued (slow-path) assignment happens under the
    /// lock and therefore stays in queue order.
    pub next_seq: AtomicU64,
    /// Lock-free mirror of [`TxState::dead`] (the authoritative flag,
    /// written under the lock). Lets the fast path skip dead channels
    /// without acquiring the mutex; a racing kill at worst lets one
    /// in-flight frame deliver, which is indistinguishable from the frame
    /// having crossed just before the kill.
    dead_hint: std::sync::atomic::AtomicBool,
    pub tx: Mutex<TxState>,
}

impl Channel {
    fn new(src: u32, dst: u32, retry: &RetryConfig) -> Self {
        Channel {
            src,
            dst,
            next_seq: AtomicU64::new(0),
            dead_hint: std::sync::atomic::AtomicBool::new(false),
            tx: Mutex::new(TxState {
                queue: VecDeque::new(),
                rto: retry.rto_ticks,
                retries: 0,
                route: None,
                route_epoch: 0,
                dead: None,
            }),
        }
    }

    /// Lock-free liveness probe (see `dead_hint`).
    pub(crate) fn seems_alive(&self) -> bool {
        !self.dead_hint.load(Ordering::Acquire)
    }

    /// Publish the lock-free dead hint; called with the lock held, right
    /// after [`TxState::dead`] is set.
    pub(crate) fn publish_dead(&self) {
        self.dead_hint.store(true, Ordering::Release);
    }

    /// Clear the dead hint; called with the lock held, right after
    /// [`TxState::dead`] is cleared by a channel revive.
    pub(crate) fn publish_alive(&self) {
        self.dead_hint.store(false, Ordering::Release);
    }
}

/// Machines up to this many nodes use the dense one-level channel table
/// (n² `OnceLock<Channel>` slots ≈ a few MB at the threshold); larger
/// machines fall back to lazily-allocated per-source rows so an idle
/// source costs one pointer.
const FLAT_CHANNEL_TABLE_MAX_NODES: usize = 128;

/// Storage for the per-(src, dst) channels.
///
/// The fair-weather send path looks a channel up once per descriptor, so
/// the lookup cost is on the message-rate critical path under a fault
/// plan. The dense [`ChannelTable::Flat`] form resolves it with a single
/// index + one lock-free `OnceLock` read — no chained row lookup, no
/// hashing, no refcount traffic.
enum ChannelTable {
    /// One `src * n + dst`-indexed slab (small machines — the common bench
    /// and test shape).
    Flat(Box<[OnceLock<Channel>]>),
    /// Per-source rows allocated on first use (large machines, where a
    /// dense n² slab would waste memory on never-used pairs).
    Rows(Vec<OnceLock<Box<[OnceLock<Channel>]>>>),
}

/// Everything the reliability layer owns, hung off the fabric when a fault
/// plan is installed.
pub(crate) struct Reliability {
    /// Compiled fault plan.
    pub injector: FaultInjector,
    /// Which links are alive (shared with the torus router).
    pub health: LinkHealth,
    /// `ras.*` probes (shared with the fabric's registry).
    pub ras: Arc<RasCounters>,
    /// RAS event ring.
    pub ring: Arc<RasRing>,
    /// `true` when the plan injects nothing — the channel pump takes a
    /// straight-through path (still counting frames, so the fault-free
    /// protocol overhead is real and measurable).
    pub clean: bool,
    /// The (src, dst) channel table; see [`ChannelTable`].
    channels: ChannelTable,
    /// Number of nodes (row width).
    num_nodes: usize,
    /// Per-source-node link-pump tick.
    ticks: Vec<AtomicU64>,
    /// Per-source-node count of frames queued across its channels (lock
    /// free idle check for `advance`).
    pending: Vec<AtomicUsize>,
}

impl Reliability {
    pub(crate) fn new(
        injector: FaultInjector,
        health: LinkHealth,
        ras: Arc<RasCounters>,
        ring: Arc<RasRing>,
        num_nodes: usize,
    ) -> Self {
        let clean = injector.plan().is_clean();
        let channels = if num_nodes <= FLAT_CHANNEL_TABLE_MAX_NODES {
            ChannelTable::Flat((0..num_nodes * num_nodes).map(|_| OnceLock::new()).collect())
        } else {
            ChannelTable::Rows((0..num_nodes).map(|_| OnceLock::new()).collect())
        };
        Reliability {
            injector,
            health,
            ras,
            ring,
            clean,
            channels,
            num_nodes,
            ticks: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            pending: (0..num_nodes).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// The channel from `src` to `dst`, created on first use. On the dense
    /// table this is one index plus one lock-free `OnceLock` read.
    pub(crate) fn channel(&self, src: u32, dst: u32) -> &Channel {
        match &self.channels {
            ChannelTable::Flat(slab) => slab[src as usize * self.num_nodes + dst as usize]
                .get_or_init(|| Channel::new(src, dst, &self.injector.retry())),
            ChannelTable::Rows(rows) => {
                let row = rows[src as usize]
                    .get_or_init(|| (0..self.num_nodes).map(|_| OnceLock::new()).collect());
                row[dst as usize].get_or_init(|| Channel::new(src, dst, &self.injector.retry()))
            }
        }
    }

    /// All channels sourced at `node` (pump order: destination index).
    pub(crate) fn channels_of(&self, node: u32) -> impl Iterator<Item = &Channel> {
        let flat = match &self.channels {
            ChannelTable::Flat(slab) => {
                let start = node as usize * self.num_nodes;
                Some(slab[start..start + self.num_nodes].iter().filter_map(OnceLock::get))
            }
            ChannelTable::Rows(_) => None,
        };
        let rows = match &self.channels {
            ChannelTable::Rows(rows) => Some(
                rows[node as usize]
                    .get()
                    .into_iter()
                    .flat_map(|row| row.iter().filter_map(OnceLock::get)),
            ),
            ChannelTable::Flat(_) => None,
        };
        flat.into_iter().flatten().chain(rows.into_iter().flatten())
    }

    /// Advance and read `node`'s link-pump tick.
    pub(crate) fn bump_tick(&self, node: u32) -> u64 {
        self.ticks[node as usize].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current tick without advancing.
    pub(crate) fn tick(&self, node: u32) -> u64 {
        self.ticks[node as usize].load(Ordering::Relaxed)
    }

    /// Frame-queued accounting.
    pub(crate) fn add_pending(&self, node: u32, n: usize) {
        self.pending[node as usize].fetch_add(n, Ordering::Release);
    }

    /// Frame-retired accounting.
    pub(crate) fn sub_pending(&self, node: u32, n: usize) {
        self.pending[node as usize].fetch_sub(n, Ordering::Release);
    }

    /// Whether `node` has no frames awaiting transmission or retry.
    pub(crate) fn idle(&self, node: u32) -> bool {
        self.pending[node as usize].load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_ring_caps_and_counts_drops() {
        let ring = RasRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(RasEvent {
                tick: i,
                kind: RasEventKind::Retransmit,
                src_node: 0,
                dst_node: 1,
                detail: i,
            });
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 2);
        assert_eq!(events[0].detail, 2, "oldest surviving event");
        assert_eq!(events[2].detail, 4, "newest event");
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(RasEventKind::CrcError.as_str(), "crc_error");
        assert_eq!(RasEventKind::LinkDown.as_str(), "link_down");
        assert_eq!(RasEventKind::Reroute.as_str(), "reroute");
        assert_eq!(RasEventKind::Retransmit.as_str(), "retransmit");
        assert_eq!(RasEventKind::PacketDropped.as_str(), "packet_dropped");
        assert_eq!(RasEventKind::DeliveryFailure.as_str(), "delivery_failure");
    }

    #[test]
    fn frame_fail_fails_nested_counters() {
        use crate::descriptor::{PayloadSource, XferKind};
        let inj = HwCounter::new();
        let rec = HwCounter::new();
        inj.add_expected(8);
        rec.add_expected(8);
        let frame = Frame {
            seq: 0,
            attempt: 0,
            state: FrameState::Queued,
            credit: 8,
            inj_counter: Some(inj.clone()),
            body: FrameBody::Get {
                desc: Box::new(Descriptor {
                    dst_node: 0,
                    dst_context: 0,
                    src_context: 0,
                    routing: bgq_torus::Routing::Dynamic,
                    payload: PayloadSource::Immediate(Bytes::new()),
                    kind: XferKind::DirectPut {
                        dst_region: MemRegion::zeroed(8),
                        dst_offset: 0,
                        rec_counter: Some(rec.clone()),
                    },
                    inj_counter: None,
                }),
            },
        };
        assert_eq!(frame.fail(DeliveryFault::Timeout), 2);
        assert_eq!(inj.fault(), Some(DeliveryFault::Timeout));
        assert_eq!(rec.fault(), Some(DeliveryFault::Timeout));
        assert!(inj.is_complete() && rec.is_complete());
        // Idempotent: already-failed counters don't double count.
        assert_eq!(frame.fail(DeliveryFault::Aborted), 0);
    }

    #[test]
    fn channel_table_rows_fallback_above_flat_threshold() {
        use crate::faults::FaultPlan;
        use bgq_torus::TorusShape;
        let n = (FLAT_CHANNEL_TABLE_MAX_NODES + 8) as u32;
        let shape = TorusShape::new([n as u16, 1, 1, 1, 1]);
        let upc = Upc::new();
        let r = Reliability::new(
            FaultInjector::new(FaultPlan::new(), shape),
            LinkHealth::new(shape),
            Arc::new(RasCounters::new(&upc)),
            Arc::new(RasRing::new(16)),
            n as usize,
        );
        assert!(matches!(r.channels, ChannelTable::Rows(_)));
        let a = r.channel(3, n - 1);
        let b = r.channel(3, n - 1);
        assert!(std::ptr::eq(a, b), "channel is created once");
        assert_eq!(r.channels_of(3).count(), 1);
        assert_eq!(r.channels_of(4).count(), 0);
    }

    #[test]
    fn reliability_pending_accounting() {
        use crate::faults::FaultPlan;
        use bgq_torus::TorusShape;
        let shape = TorusShape::new([2, 1, 1, 1, 1]);
        let upc = Upc::new();
        let r = Reliability::new(
            FaultInjector::new(FaultPlan::new(), shape),
            LinkHealth::new(shape),
            Arc::new(RasCounters::new(&upc)),
            Arc::new(RasRing::new(16)),
            2,
        );
        assert!(r.idle(0));
        r.add_pending(0, 3);
        assert!(!r.idle(0));
        assert!(r.idle(1), "per-node accounting");
        r.sub_pending(0, 3);
        assert!(r.idle(0));
        let a = r.channel(0, 1);
        let b = r.channel(0, 1);
        assert!(std::ptr::eq(a, b), "channel is created once");
        assert_eq!(r.channels_of(0).count(), 1);
        assert_eq!(r.channels_of(1).count(), 0);
        assert_eq!(r.bump_tick(0), 1);
        assert_eq!(r.bump_tick(0), 2);
        assert_eq!(r.tick(0), 2);
        assert_eq!(r.tick(1), 0);
    }
}
