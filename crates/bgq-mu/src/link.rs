//! Link-level reliability: per-(source, destination) retransmit channels,
//! the `ras.*` counter family, and the RAS event ring.
//!
//! BG/Q's serdes links run a hardware link-level protocol — CRC per packet,
//! sliding-window retransmit on CRC failure, and a RAS event when a link
//! retries persistently or dies. This module is the software model of that
//! layer for the simulated fabric: when a [`crate::faults::FaultPlan`] is
//! installed, traffic between distinct nodes moves as [`Frame`]s through a
//! per-(src, dst) [`Channel`] that delivers in order, retransmits lost or
//! corrupted frames with exponential backoff, reroutes around killed links,
//! and — when the retry budget runs out — fails the outstanding transfers'
//! completion counters with a typed [`DeliveryFault`] instead of hanging
//! whoever is polling them.
//!
//! The retransmit protocol is **selective repeat** (go-back-N remains
//! selectable through [`crate::faults::LinkProtocol`] for A/B runs): the
//! sender works a window of frames rather than only the oldest one, the
//! receiver accepts out-of-order arrivals into a bounded reorder buffer
//! ([`RxState`]) and answers each with a selective ack, and a cumulative
//! ack covering every in-order-delivered frame retires whole prefixes of
//! the queue at once. A selective ack for a later frame doubles as SACK
//! information: any earlier frame the sender knows to be lost is
//! retransmitted immediately (`ras.sack_retransmits`) instead of waiting
//! out its RTO.
//!
//! Deliberate modeling choices, documented because they bound what the
//! model can show:
//!
//! * **Acks are frames too, and they can be lost.** Under selective repeat
//!   an ack crosses the reverse route and rolls the same per-link fate
//!   dice as data; a lost ack leaves the sender's frame in
//!   [`FrameState::AckWait`] until an RTO-driven probe re-elicits a
//!   cumulative ack (the receiver discards the duplicate data). Ack
//!   crossings do not advance kill schedules, so kill-at-Nth-frame plans
//!   count data frames only. Go-back-N mode keeps the old lossless-ack
//!   model, bit for bit.
//! * **The reorder buffer is sender-resident.** The simulation's "wire" is
//!   a function call, so an out-of-order frame's body stays in the sender's
//!   queue ([`FrameState::SackHeld`]) and is deposited at the destination
//!   when the sequence gap fills; the receiver tracks only the held
//!   sequence numbers, bounded by the plan's reorder capacity. Arrivals
//!   beyond the high-water mark are refused (drop-newest,
//!   `RasEventKind::ReorderEvict`) and retransmitted later.
//! * **Faults fire on the links of the route.** A frame's fate is decided
//!   per crossed link (first bad link wins), so longer routes really are
//!   more exposed, but there is no per-hop buffering — a frame is either
//!   delivered whole or lost whole.
//!
//! The channel state machine itself is driven by
//! [`crate::fabric::MuFabric::pump_links`]; this module owns the data
//! structures and the bookkeeping.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_hw::{Counter as HwCounter, DeliveryFault, MemRegion};
use bgq_torus::{Coords, Dir, LinkHealth};
use bgq_upc::{Counter, Upc};
use bytes::Bytes;
use parking_lot::Mutex;

use crate::descriptor::{Descriptor, RmwOp, RmwReply};
use crate::faults::FaultInjector;
use crate::fifo::RecFifoId;

/// `ras.*` telemetry probes — the reliability layer's RAS event counters,
/// registered on the fabric's shared [`Upc`] so `pamistat` exports them
/// alongside `mu.*`. All no-ops with the `telemetry` feature off.
pub struct RasCounters {
    /// Frames that arrived with a failing CRC and were discarded.
    pub crc_errors: Counter,
    /// Frame retransmissions (every attempt beyond the first).
    pub retransmits: Counter,
    /// Directed links declared dead by kill schedules or
    /// [`crate::fabric::MuFabric::kill_link`] (both directions of a
    /// physical link count).
    pub link_down: Counter,
    /// Channels that switched to a non-deterministic route around dead
    /// links.
    pub reroutes: Counter,
    /// Transfers whose completion counters were failed with a
    /// [`DeliveryFault`] (retry budget exhausted or destination
    /// unreachable).
    pub delivery_failures: Counter,
    /// Retransmissions triggered by SACK information (a later frame's ack
    /// revealed an earlier frame missing) rather than an RTO expiry.
    pub sack_retransmits: Counter,
    /// Frames accepted out of order into a receiver reorder buffer
    /// (cumulative occupancy, the selective-repeat reorder pressure
    /// signal).
    pub reorder_depth: Counter,
}

impl RasCounters {
    pub(crate) fn new(upc: &Upc) -> Self {
        RasCounters {
            crc_errors: upc.counter("ras.crc_errors"),
            retransmits: upc.counter("ras.retransmits"),
            link_down: upc.counter("ras.link_down"),
            reroutes: upc.counter("ras.reroutes"),
            delivery_failures: upc.counter("ras.delivery_failures"),
            sack_retransmits: upc.counter("ras.sack_retransmits"),
            reorder_depth: upc.counter("ras.reorder_depth"),
        }
    }
}

/// What a [`RasEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RasEventKind {
    /// A frame was silently dropped by the fabric.
    PacketDropped,
    /// A frame arrived corrupted and was discarded.
    CrcError,
    /// A frame was retransmitted.
    Retransmit,
    /// A directed link went down (`detail` = link id).
    LinkDown,
    /// A channel rerouted around dead links (`detail` = new hop count).
    Reroute,
    /// A transfer failed permanently (`detail` = fault discriminant).
    DeliveryFailure,
    /// A directed link came back up after a service action (`detail` =
    /// link id).
    LinkRevived,
    /// A dead channel was administratively cleared so traffic (e.g. a
    /// persistent-channel renegotiation) can flow again (`detail` = the
    /// fault discriminant that had killed it).
    ChannelRevived,
    /// A frame was retransmitted because SACK information showed it
    /// missing, without waiting out its RTO (`detail` = frame sequence).
    SackRetransmit,
    /// An out-of-order arrival was refused because the receiver's reorder
    /// buffer hit its high-water mark (`detail` = frame sequence).
    ReorderEvict,
}

impl RasEventKind {
    /// Stable lower-case name (used by `pamistat` and the chaos bench).
    pub fn as_str(&self) -> &'static str {
        match self {
            RasEventKind::PacketDropped => "packet_dropped",
            RasEventKind::CrcError => "crc_error",
            RasEventKind::Retransmit => "retransmit",
            RasEventKind::LinkDown => "link_down",
            RasEventKind::Reroute => "reroute",
            RasEventKind::DeliveryFailure => "delivery_failure",
            RasEventKind::LinkRevived => "link_revived",
            RasEventKind::ChannelRevived => "channel_revived",
            RasEventKind::SackRetransmit => "sack_retransmit",
            RasEventKind::ReorderEvict => "reorder_evict",
        }
    }
}

/// One entry in the RAS event ring.
#[derive(Clone, Debug)]
pub struct RasEvent {
    /// Source-node link-pump tick when the event fired.
    pub tick: u64,
    /// What happened.
    pub kind: RasEventKind,
    /// Source node of the affected channel.
    pub src_node: u32,
    /// Destination node of the affected channel.
    pub dst_node: u32,
    /// Kind-specific detail (frame sequence, link id, hop count, …).
    pub detail: u64,
}

/// Bounded RAS event ring: newest events win, the drop count is kept so an
/// operator can tell the ring overflowed. The control plane (RAS) is off
/// the data path, so a mutex is fine here.
/// Observer invoked synchronously for every RAS event as it is recorded.
///
/// This is the RAS→policy feedback hook: `Machine` installs one that feeds
/// retransmit/delivery-failure deltas into the protocol policy so flaky
/// destinations shift toward counter-protected rendezvous. Observers run on
/// the control plane (record time, under no ring lock) and must be cheap
/// and non-reentrant into the link layer.
pub type RasObserver = Arc<dyn Fn(&RasEvent) + Send + Sync>;

pub struct RasRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    observer: OnceLock<RasObserver>,
}

struct RingInner {
    events: VecDeque<RasEvent>,
    dropped: u64,
}

impl RasRing {
    pub(crate) fn new(capacity: usize) -> Self {
        RasRing {
            inner: Mutex::new(RingInner { events: VecDeque::new(), dropped: 0 }),
            capacity: capacity.max(1),
            observer: OnceLock::new(),
        }
    }

    /// Install the event observer. Set-once: later calls are ignored, so a
    /// machine's policy hook cannot be silently displaced.
    pub(crate) fn set_observer(&self, obs: RasObserver) {
        let _ = self.observer.set(obs);
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn record(&self, ev: RasEvent) {
        if let Some(obs) = self.observer.get() {
            obs(&ev);
        }
        let mut g = self.inner.lock();
        if g.events.len() == self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }

    /// Copy out the ring (oldest first) and the overflow drop count.
    pub fn snapshot(&self) -> (Vec<RasEvent>, u64) {
        let g = self.inner.lock();
        (g.events.iter().cloned().collect(), g.dropped)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no event has been recorded (and none dropped).
    pub fn is_empty(&self) -> bool {
        let g = self.inner.lock();
        g.events.is_empty() && g.dropped == 0
    }
}

/// A frame's payload: clone-cheap ingredients for rebuilding the delivery
/// on a retransmit attempt.
#[derive(Clone)]
pub(crate) enum FramePayload {
    /// Bytes staged in the frame.
    Inline(Bytes),
    /// Zero-copy window into the source region.
    Region { region: MemRegion, offset: usize, len: usize },
}

impl FramePayload {
    pub(crate) fn len(&self) -> usize {
        match self {
            FramePayload::Inline(b) => b.len(),
            FramePayload::Region { len, .. } => *len,
        }
    }
}

/// What delivering a frame does at the destination.
pub(crate) enum FrameBody {
    /// One memory-FIFO packet.
    Packet {
        rec_fifo: RecFifoId,
        src_context: u16,
        dispatch: u16,
        metadata: Bytes,
        msg_id: u64,
        msg_len: u32,
        offset: u32,
        /// Short-tier flag, carried so the delivered [`crate::packet::MuPacket`]
        /// keeps its tier under a fault plan.
        short: bool,
        payload: FramePayload,
    },
    /// One ≤512-byte window of a direct put.
    Put {
        dst_region: MemRegion,
        dst_offset: usize,
        payload: FramePayload,
        rec_counter: Option<HwCounter>,
    },
    /// A remote-get request carrying the payload descriptor the
    /// destination injects on our behalf.
    Get { desc: Box<Descriptor> },
    /// A remote atomic, applied at the destination on delivery; the prior
    /// value is written to the requester's reply slot. The channel's
    /// duplicate suppression makes a retransmitted rmw apply exactly once.
    Rmw {
        win_key: u64,
        dst_region: MemRegion,
        dst_offset: usize,
        op: RmwOp,
        operand: u64,
        compare: u64,
        reply: Option<RmwReply>,
    },
}

/// Transmission state of a queued frame (selective repeat tracks this per
/// frame, not just for the queue front).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FrameState {
    /// Not yet transmitted at the current attempt.
    Queued,
    /// Transmitted and lost (dropped, corrupted, or refused by a full
    /// reorder buffer); waiting out the RTO that started at this tick.
    Lost { since: u64 },
    /// In flight but delayed; deliverable at this tick.
    Delayed { until: u64 },
    /// Data delivered in order at the receiver, but the cumulative ack was
    /// lost; an RTO-driven probe (the receiver discards the duplicate)
    /// re-elicits it, started at this tick.
    AckWait { since: u64 },
    /// Data sitting in the receiver's reorder buffer (selectively acked,
    /// out of order). No retransmit timer: the frame retires when the
    /// sequence gap ahead of it fills and a cumulative ack covers it.
    SackHeld,
}

/// One frame in a channel: a unit of link-level (re)transmission.
pub(crate) struct Frame {
    /// Channel-local sequence number (fate-hash input, receiver tracking).
    pub seq: u64,
    /// Transmission attempt, 0-based.
    pub attempt: u32,
    /// Where the frame is in the transmit state machine.
    pub state: FrameState,
    /// RTO-driven retransmissions consumed by this frame (counts against
    /// the retry budget; SACK-driven fast retransmits are free — they are
    /// evidence the path works).
    pub retries: u32,
    /// This frame's current retransmit timeout in ticks (per-frame
    /// exponential backoff).
    pub rto: u64,
    /// Bytes credited to `inj_counter` when the frame is acknowledged.
    pub credit: u64,
    /// Source-side completion counter share.
    pub inj_counter: Option<HwCounter>,
    /// The delivery action.
    pub body: FrameBody,
}

impl Frame {
    /// Fail every completion counter this frame carries (including the
    /// counters buried in a remote-get's payload descriptor) — called when
    /// the channel dies so pollers see completion-with-fault instead of a
    /// hang. Returns how many counters were newly failed.
    pub(crate) fn fail(&self, fault: DeliveryFault) -> u64 {
        let mut failed = 0;
        if let Some(c) = &self.inj_counter {
            failed += c.fail(fault) as u64;
        }
        failed + fail_body(&self.body, fault)
    }
}

/// Fail the destination-side counters a frame body carries.
pub(crate) fn fail_body(body: &FrameBody, fault: DeliveryFault) -> u64 {
    match body {
        FrameBody::Put { rec_counter: Some(c), .. } => c.fail(fault) as u64,
        FrameBody::Get { desc } => fail_descriptor(desc, fault),
        _ => 0,
    }
}

/// Recursively fail the counters a descriptor carries.
pub(crate) fn fail_descriptor(desc: &Descriptor, fault: DeliveryFault) -> u64 {
    let mut failed = 0;
    if let Some(c) = &desc.inj_counter {
        failed += c.fail(fault) as u64;
    }
    match &desc.kind {
        crate::descriptor::XferKind::DirectPut { rec_counter: Some(c), .. } => {
            failed += c.fail(fault) as u64;
        }
        crate::descriptor::XferKind::RemoteGet { payload } => {
            failed += fail_descriptor(payload, fault);
        }
        _ => {}
    }
    failed
}

/// A healthy route, precomputed into exactly what the per-frame hot path
/// needs: forward hops with their link ids resolved (for kill schedules
/// and fate dice) and the reverse-route link ids (for ack dice under
/// selective repeat). Built once per route computation so crossing a
/// frame does no coordinate arithmetic and no allocation — the cached
/// copy is shared out of [`TxState`] by refcount.
pub(crate) struct RoutePlan {
    /// Forward per-hop state: (link id, coords of the hop's tail, dir).
    pub hops: Vec<(crate::faults::LinkId, Coords, Dir)>,
    /// Reverse-route link ids, destination back to source, in ack
    /// crossing order.
    pub rev_lids: Vec<crate::faults::LinkId>,
    /// Per-link dice salts ([`crate::faults::FaultInjector::link_salt`])
    /// for the forward hops, in `hops` order — the fate peek combines
    /// each with the packet's seq salt in one finalizer.
    pub fwd_salts: Vec<u64>,
    /// Dice salts for `rev_lids`, in the same order.
    pub rev_salts: Vec<u64>,
}

/// Mutable transmit half of a channel, guarded by the channel mutex.
pub(crate) struct TxState {
    /// Frames awaiting transmission/ack, in sequence order. Selective
    /// repeat works up to a window of them per pump visit; go-back-N mode
    /// examines only the front.
    pub queue: VecDeque<Frame>,
    /// Cached healthy route; `None` = recompute before next transmission.
    pub route: Option<Arc<RoutePlan>>,
    /// [`LinkHealth::epoch`] the cached route was computed at; a newer
    /// epoch invalidates the cache.
    pub route_epoch: usize,
    /// Set when the channel failed permanently; new frames fail on push.
    pub dead: Option<DeliveryFault>,
}

/// What the receiver said about one arriving data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RxVerdict {
    /// In-order: deposit now (the pump then drains consecutive
    /// [`FrameState::SackHeld`] successors).
    Deliver,
    /// Out of order: entered the reorder buffer, selectively acked.
    Sacked,
    /// Duplicate of a frame already in the reorder buffer; re-acked.
    DupSacked,
    /// Duplicate of an already-delivered frame; discarded and the
    /// cumulative ack re-sent.
    Duplicate,
    /// Reorder buffer at its high-water mark (or the frame is too far
    /// ahead of the window): refused, drop-newest.
    Refused,
}

/// Receive half of a channel: the selective-repeat reorder tracking for
/// the (src, dst) flow. Bounded memory: only sequence numbers are held —
/// the frame bodies stay in the sender's queue ([`FrameState::SackHeld`])
/// until the gap fills. Locked after `tx`, never before.
pub(crate) struct RxState {
    /// Next in-order sequence the receiver will deposit.
    pub next_expected: u64,
    /// Out-of-order sequences currently held in the reorder buffer.
    pub buffer: std::collections::HashSet<u64>,
    /// Reorder-buffer high-water mark in frames.
    pub capacity: usize,
}

impl RxState {
    /// Classify one arriving data frame. `Deliver` advances
    /// `next_expected`; the caller deposits the body and then drains
    /// consecutive buffered successors with [`RxState::drain_next`].
    pub(crate) fn accept(&mut self, seq: u64) -> RxVerdict {
        let rel = seq.wrapping_sub(self.next_expected);
        if rel >= 1 << 63 {
            return RxVerdict::Duplicate;
        }
        if rel == 0 {
            // A frame that was sacked earlier (but whose selective ack was
            // lost) can be retransmitted and arrive in order; drop the now
            // stale buffer entry so it doesn't pin capacity.
            self.buffer.remove(&seq);
            self.next_expected = self.next_expected.wrapping_add(1);
            return RxVerdict::Deliver;
        }
        if self.buffer.contains(&seq) {
            return RxVerdict::DupSacked;
        }
        if rel as usize > self.capacity || self.buffer.len() >= self.capacity {
            return RxVerdict::Refused;
        }
        self.buffer.insert(seq);
        RxVerdict::Sacked
    }

    /// Release `seq` from the reorder buffer if it is the next in-order
    /// sequence; returns whether the caller should deposit its body.
    pub(crate) fn drain_next(&mut self, seq: u64) -> bool {
        if seq == self.next_expected && self.buffer.remove(&seq) {
            self.next_expected = self.next_expected.wrapping_add(1);
            return true;
        }
        false
    }

    /// Fast-forward past sequences the fair-weather path delivered without
    /// touching this state: the oldest unacked queued frame is the oldest
    /// sequence the receiver could still be missing.
    pub(crate) fn sync_to(&mut self, oldest_unacked: u64) {
        let rel = oldest_unacked.wrapping_sub(self.next_expected);
        if rel > 0 && rel < 1 << 63 {
            self.next_expected = oldest_unacked;
            let ne = self.next_expected;
            self.buffer.retain(|&s| s.wrapping_sub(ne) < 1 << 63);
        }
    }
}

/// A reliable link-level channel for one (source node, destination node)
/// pair — the analogue of the BG/Q send unit's per-link retransmission
/// FIFO, lifted to route granularity.
pub(crate) struct Channel {
    pub src: u32,
    pub dst: u32,
    /// Next frame sequence number to assign. Atomic (not under `tx`) so
    /// the fair-weather path can stamp sequence numbers without taking
    /// the channel lock; queued (slow-path) assignment happens under the
    /// lock and therefore stays in queue order.
    pub next_seq: AtomicU64,
    /// Lock-free mirror of [`TxState::dead`] (the authoritative flag,
    /// written under the lock). Lets the fast path skip dead channels
    /// without acquiring the mutex; a racing kill at worst lets one
    /// in-flight frame deliver, which is indistinguishable from the frame
    /// having crossed just before the kill.
    dead_hint: std::sync::atomic::AtomicBool,
    /// Lock-free mirror of "the queue is non-empty". The fair-weather
    /// fast path checks it so synchronous sends never overtake frames
    /// still queued from a fault episode — one relaxed load when clean.
    backlog_hint: std::sync::atomic::AtomicBool,
    /// The deterministic route in hot-path form, built lazily once per
    /// channel. Valid whenever every link is up (then it is exactly the
    /// route `ensure_route` would cache); read lock-free by the
    /// fate-peeked cut-through so the send path under a hostile plan
    /// never takes the channel mutex for a passing message.
    pub(crate) fair_plan: std::sync::OnceLock<Arc<RoutePlan>>,
    pub tx: Mutex<TxState>,
    /// Receiver-side reorder tracking. Lock order: `tx` before `rx`,
    /// always.
    pub rx: Mutex<RxState>,
}

impl Channel {
    fn new(src: u32, dst: u32, reorder_capacity: usize) -> Self {
        Channel {
            src,
            dst,
            next_seq: AtomicU64::new(0),
            dead_hint: std::sync::atomic::AtomicBool::new(false),
            backlog_hint: std::sync::atomic::AtomicBool::new(false),
            fair_plan: std::sync::OnceLock::new(),
            tx: Mutex::new(TxState {
                queue: VecDeque::new(),
                route: None,
                route_epoch: 0,
                dead: None,
            }),
            rx: Mutex::new(RxState {
                next_expected: 0,
                buffer: std::collections::HashSet::new(),
                capacity: reorder_capacity.max(1),
            }),
        }
    }

    /// Lock-free liveness probe (see `dead_hint`).
    pub(crate) fn seems_alive(&self) -> bool {
        !self.dead_hint.load(Ordering::Acquire)
    }

    /// Lock-free backlog probe (see `backlog_hint`).
    pub(crate) fn has_backlog(&self) -> bool {
        self.backlog_hint.load(Ordering::Relaxed)
    }

    /// Publish whether the transmit queue is non-empty; called with the
    /// `tx` lock held whenever the emptiness changes.
    pub(crate) fn publish_backlog(&self, on: bool) {
        self.backlog_hint.store(on, Ordering::Release);
    }

    /// Publish the lock-free dead hint; called with the lock held, right
    /// after [`TxState::dead`] is set.
    pub(crate) fn publish_dead(&self) {
        self.dead_hint.store(true, Ordering::Release);
    }

    /// Clear the dead hint; called with the lock held, right after
    /// [`TxState::dead`] is cleared by a channel revive.
    pub(crate) fn publish_alive(&self) {
        self.dead_hint.store(false, Ordering::Release);
    }
}

/// Machines up to this many nodes use the dense one-level channel table
/// (n² `OnceLock<Channel>` slots ≈ a few MB at the threshold); larger
/// machines fall back to lazily-allocated per-source rows so an idle
/// source costs one pointer.
const FLAT_CHANNEL_TABLE_MAX_NODES: usize = 128;

/// Storage for the per-(src, dst) channels.
///
/// The fair-weather send path looks a channel up once per descriptor, so
/// the lookup cost is on the message-rate critical path under a fault
/// plan. The dense [`ChannelTable::Flat`] form resolves it with a single
/// index + one lock-free `OnceLock` read — no chained row lookup, no
/// hashing, no refcount traffic.
enum ChannelTable {
    /// One `src * n + dst`-indexed slab (small machines — the common bench
    /// and test shape).
    Flat(Box<[OnceLock<Channel>]>),
    /// Per-source rows allocated on first use (large machines, where a
    /// dense n² slab would waste memory on never-used pairs).
    Rows(Vec<OnceLock<Box<[OnceLock<Channel>]>>>),
}

/// Everything the reliability layer owns, hung off the fabric when a fault
/// plan is installed.
pub(crate) struct Reliability {
    /// Compiled fault plan.
    pub injector: FaultInjector,
    /// Which links are alive (shared with the torus router).
    pub health: LinkHealth,
    /// `ras.*` probes (shared with the fabric's registry).
    pub ras: Arc<RasCounters>,
    /// RAS event ring.
    pub ring: Arc<RasRing>,
    /// `true` when the plan injects nothing — the channel pump takes a
    /// straight-through path (still counting frames, so the fault-free
    /// protocol overhead is real and measurable).
    pub clean: bool,
    /// The (src, dst) channel table; see [`ChannelTable`].
    channels: ChannelTable,
    /// Number of nodes (row width).
    num_nodes: usize,
    /// Per-source-node link-pump tick.
    ticks: Vec<AtomicU64>,
    /// Per-source-node count of frames queued across its channels (lock
    /// free idle check for `advance`).
    pending: Vec<AtomicUsize>,
}

impl Reliability {
    pub(crate) fn new(
        injector: FaultInjector,
        health: LinkHealth,
        ras: Arc<RasCounters>,
        ring: Arc<RasRing>,
        num_nodes: usize,
    ) -> Self {
        let clean = injector.plan().is_clean();
        let channels = if num_nodes <= FLAT_CHANNEL_TABLE_MAX_NODES {
            ChannelTable::Flat((0..num_nodes * num_nodes).map(|_| OnceLock::new()).collect())
        } else {
            ChannelTable::Rows((0..num_nodes).map(|_| OnceLock::new()).collect())
        };
        Reliability {
            injector,
            health,
            ras,
            ring,
            clean,
            channels,
            num_nodes,
            ticks: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            pending: (0..num_nodes).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// The channel from `src` to `dst`, created on first use. On the dense
    /// table this is one index plus one lock-free `OnceLock` read.
    pub(crate) fn channel(&self, src: u32, dst: u32) -> &Channel {
        let cap = self.injector.reorder_capacity();
        match &self.channels {
            ChannelTable::Flat(slab) => slab[src as usize * self.num_nodes + dst as usize]
                .get_or_init(|| Channel::new(src, dst, cap)),
            ChannelTable::Rows(rows) => {
                let row = rows[src as usize]
                    .get_or_init(|| (0..self.num_nodes).map(|_| OnceLock::new()).collect());
                row[dst as usize].get_or_init(|| Channel::new(src, dst, cap))
            }
        }
    }

    /// All channels sourced at `node` (pump order: destination index).
    pub(crate) fn channels_of(&self, node: u32) -> impl Iterator<Item = &Channel> {
        let flat = match &self.channels {
            ChannelTable::Flat(slab) => {
                let start = node as usize * self.num_nodes;
                Some(slab[start..start + self.num_nodes].iter().filter_map(OnceLock::get))
            }
            ChannelTable::Rows(_) => None,
        };
        let rows = match &self.channels {
            ChannelTable::Rows(rows) => Some(
                rows[node as usize]
                    .get()
                    .into_iter()
                    .flat_map(|row| row.iter().filter_map(OnceLock::get)),
            ),
            ChannelTable::Flat(_) => None,
        };
        flat.into_iter().flatten().chain(rows.into_iter().flatten())
    }

    /// Advance and read `node`'s link-pump tick.
    pub(crate) fn bump_tick(&self, node: u32) -> u64 {
        self.ticks[node as usize].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current tick without advancing.
    pub(crate) fn tick(&self, node: u32) -> u64 {
        self.ticks[node as usize].load(Ordering::Relaxed)
    }

    /// Frame-queued accounting.
    pub(crate) fn add_pending(&self, node: u32, n: usize) {
        self.pending[node as usize].fetch_add(n, Ordering::Release);
    }

    /// Frame-retired accounting.
    pub(crate) fn sub_pending(&self, node: u32, n: usize) {
        self.pending[node as usize].fetch_sub(n, Ordering::Release);
    }

    /// Whether `node` has no frames awaiting transmission or retry.
    pub(crate) fn idle(&self, node: u32) -> bool {
        self.pending[node as usize].load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_ring_caps_and_counts_drops() {
        let ring = RasRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(RasEvent {
                tick: i,
                kind: RasEventKind::Retransmit,
                src_node: 0,
                dst_node: 1,
                detail: i,
            });
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 2);
        assert_eq!(events[0].detail, 2, "oldest surviving event");
        assert_eq!(events[2].detail, 4, "newest event");
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(RasEventKind::CrcError.as_str(), "crc_error");
        assert_eq!(RasEventKind::LinkDown.as_str(), "link_down");
        assert_eq!(RasEventKind::Reroute.as_str(), "reroute");
        assert_eq!(RasEventKind::Retransmit.as_str(), "retransmit");
        assert_eq!(RasEventKind::PacketDropped.as_str(), "packet_dropped");
        assert_eq!(RasEventKind::DeliveryFailure.as_str(), "delivery_failure");
        assert_eq!(RasEventKind::SackRetransmit.as_str(), "sack_retransmit");
        assert_eq!(RasEventKind::ReorderEvict.as_str(), "reorder_evict");
    }

    fn rx(next_expected: u64, capacity: usize) -> RxState {
        RxState { next_expected, buffer: std::collections::HashSet::new(), capacity }
    }

    #[test]
    fn rx_accepts_in_order_and_buffers_gaps() {
        let mut r = rx(0, 4);
        assert_eq!(r.accept(0), RxVerdict::Deliver);
        assert_eq!(r.next_expected, 1);
        // Gap: 2 and 3 buffered out of order, selectively acked.
        assert_eq!(r.accept(2), RxVerdict::Sacked);
        assert_eq!(r.accept(3), RxVerdict::Sacked);
        assert_eq!(r.accept(2), RxVerdict::DupSacked, "re-arrival of a held frame");
        // Gap fills: 1 delivers, then the drain releases 2 and 3 in order.
        assert_eq!(r.accept(1), RxVerdict::Deliver);
        assert!(r.drain_next(2));
        assert!(r.drain_next(3));
        assert!(!r.drain_next(4), "nothing buffered at 4");
        assert_eq!(r.next_expected, 4);
        assert!(r.buffer.is_empty());
    }

    #[test]
    fn rx_discards_duplicates_of_delivered_frames() {
        let mut r = rx(0, 4);
        assert_eq!(r.accept(0), RxVerdict::Deliver);
        assert_eq!(r.accept(0), RxVerdict::Duplicate, "retransmit probe after lost ack");
        assert_eq!(r.next_expected, 1, "duplicates do not advance the cursor");
    }

    #[test]
    fn rx_refuses_past_high_water_mark() {
        let mut r = rx(0, 2);
        assert_eq!(r.accept(1), RxVerdict::Sacked);
        assert_eq!(r.accept(2), RxVerdict::Sacked);
        assert_eq!(r.accept(3), RxVerdict::Refused, "buffer full: drop-newest");
        assert_eq!(r.accept(100), RxVerdict::Refused, "far beyond the window");
        assert_eq!(r.buffer.len(), 2);
    }

    #[test]
    fn rx_sequences_wrap_around_u64() {
        let near_max = u64::MAX - 1;
        let mut r = rx(near_max, 4);
        assert_eq!(r.accept(near_max), RxVerdict::Deliver);
        assert_eq!(r.accept(0), RxVerdict::Sacked, "post-wrap seq buffers across the wrap");
        assert_eq!(r.accept(u64::MAX), RxVerdict::Deliver);
        assert!(r.drain_next(0), "drain follows the wrap");
        assert_eq!(r.next_expected, 1);
        assert_eq!(r.accept(u64::MAX), RxVerdict::Duplicate, "pre-wrap seq is behind");
    }

    #[test]
    fn rx_sync_fast_forwards_and_prunes() {
        let mut r = rx(0, 8);
        assert_eq!(r.accept(2), RxVerdict::Sacked);
        r.sync_to(5);
        assert_eq!(r.next_expected, 5);
        assert!(r.buffer.is_empty(), "stale held seq pruned");
        r.sync_to(3);
        assert_eq!(r.next_expected, 5, "sync never moves backwards");
    }

    #[test]
    fn frame_fail_fails_nested_counters() {
        use crate::descriptor::{PayloadSource, XferKind};
        let inj = HwCounter::new();
        let rec = HwCounter::new();
        inj.add_expected(8);
        rec.add_expected(8);
        let frame = Frame {
            seq: 0,
            attempt: 0,
            state: FrameState::Queued,
            retries: 0,
            rto: 4,
            credit: 8,
            inj_counter: Some(inj.clone()),
            body: FrameBody::Get {
                desc: Box::new(Descriptor {
                    dst_node: 0,
                    dst_context: 0,
                    src_context: 0,
                    routing: bgq_torus::Routing::Dynamic,
                    payload: PayloadSource::Immediate(Bytes::new()),
                    kind: XferKind::DirectPut {
                        dst_region: MemRegion::zeroed(8),
                        dst_offset: 0,
                        rec_counter: Some(rec.clone()),
                    },
                    inj_counter: None,
                }),
            },
        };
        assert_eq!(frame.fail(DeliveryFault::Timeout), 2);
        assert_eq!(inj.fault(), Some(DeliveryFault::Timeout));
        assert_eq!(rec.fault(), Some(DeliveryFault::Timeout));
        assert!(inj.is_complete() && rec.is_complete());
        // Idempotent: already-failed counters don't double count.
        assert_eq!(frame.fail(DeliveryFault::Aborted), 0);
    }

    #[test]
    fn channel_table_rows_fallback_above_flat_threshold() {
        use crate::faults::FaultPlan;
        use bgq_torus::TorusShape;
        let n = (FLAT_CHANNEL_TABLE_MAX_NODES + 8) as u32;
        let shape = TorusShape::new([n as u16, 1, 1, 1, 1]);
        let upc = Upc::new();
        let r = Reliability::new(
            FaultInjector::new(FaultPlan::new(), shape),
            LinkHealth::new(shape),
            Arc::new(RasCounters::new(&upc)),
            Arc::new(RasRing::new(16)),
            n as usize,
        );
        assert!(matches!(r.channels, ChannelTable::Rows(_)));
        let a = r.channel(3, n - 1);
        let b = r.channel(3, n - 1);
        assert!(std::ptr::eq(a, b), "channel is created once");
        assert_eq!(r.channels_of(3).count(), 1);
        assert_eq!(r.channels_of(4).count(), 0);
    }

    #[test]
    fn reliability_pending_accounting() {
        use crate::faults::FaultPlan;
        use bgq_torus::TorusShape;
        let shape = TorusShape::new([2, 1, 1, 1, 1]);
        let upc = Upc::new();
        let r = Reliability::new(
            FaultInjector::new(FaultPlan::new(), shape),
            LinkHealth::new(shape),
            Arc::new(RasCounters::new(&upc)),
            Arc::new(RasRing::new(16)),
            2,
        );
        assert!(r.idle(0));
        r.add_pending(0, 3);
        assert!(!r.idle(0));
        assert!(r.idle(1), "per-node accounting");
        r.sub_pending(0, 3);
        assert!(r.idle(0));
        let a = r.channel(0, 1);
        let b = r.channel(0, 1);
        assert!(std::ptr::eq(a, b), "channel is created once");
        assert_eq!(r.channels_of(0).count(), 1);
        assert_eq!(r.channels_of(1).count(), 0);
        assert_eq!(r.bump_tick(0), 1);
        assert_eq!(r.bump_tick(0), 2);
        assert_eq!(r.tick(0), 2);
        assert_eq!(r.tick(1), 0);
    }
}
