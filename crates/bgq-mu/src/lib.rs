//! The Blue Gene/Q Message Unit (MU).
//!
//! The MU moves data between node memory and the 5D torus. Software
//! initiates every transfer by writing a 64-byte *descriptor* into one of
//! the node's 544 injection FIFOs; depending on the packet type the data is
//! delivered into one of 272 reception FIFOs (**memory FIFO** packets,
//! consumed by software) or written straight into destination memory
//! (**RDMA write** / *direct put*), with **RDMA read** / *remote get*
//! packets carrying a payload descriptor that the destination MU injects on
//! the requester's behalf (paper section II.C).
//!
//! The simulation keeps all of those moving parts:
//!
//! * [`descriptor::Descriptor`] — what software injects; payload comes from
//!   a registered [`bgq_hw::MemRegion`] or from immediate bytes
//!   (`PAMI_Send_immediate`'s copy-through path).
//! * [`fifo`] — injection and reception FIFOs with the per-node 544/272
//!   resource accounting that lets PAMI give every context an exclusive,
//!   lock-free partition.
//! * [`fabric::MuFabric`] — the nodes plus delivery: executing a descriptor
//!   fragments payload into ≤512-byte packets, pushes memory-FIFO packets
//!   into the destination reception FIFO (waking its wakeup region), applies
//!   direct puts to destination memory and decrements reception counters,
//!   and queues remote-get payload descriptors on the destination's system
//!   injection FIFO.
//! * [`engine`] — who pumps injection: inline from a context's `advance`
//!   (deterministic, the default) or dedicated engine threads per node
//!   mirroring the MU's parallel message engines.
//!
//! Ordering: one (source context → destination) pair always uses the same
//! injection FIFO (PAMI pins it by destination) and packets of a FIFO are
//! executed in order, so memory-FIFO packets arrive in injection order —
//! the property MPI matching relies on. Direct-put payload takes the
//! dynamically-routed path and completes out of order; completion is
//! observed only through reception counters, never packet order.

pub mod batch;
pub mod comb;
pub mod crc;
pub mod descriptor;
pub mod engine;
pub mod fabric;
pub mod faults;
pub mod fifo;
pub mod json;
pub mod link;
pub mod packet;
pub mod transport;

pub use batch::{push_record, record_size, BatchRecord, RecordIter};
pub use bgq_hw::{Counter, DeliveryFault};
pub use comb::CombCounters;
pub use descriptor::{Descriptor, PayloadSource, RmwOp, RmwReply, XferKind};
pub use engine::EngineMode;
pub use fabric::{MuCounters, MuFabric, MuFabricBuilder, MU_PACKET_COUNTER_SAMPLE};
pub use faults::{Fate, FaultInjector, FaultPlan, FaultPlanError, FaultRates, LinkFault, LinkProtocol, RetryConfig};
pub use link::{RasCounters, RasEvent, RasEventKind, RasObserver, RasRing};
pub use packet::packet_crc;
pub use transport::Transport;
pub use fifo::{
    FifoAllocator, FifoTable, InjFifo, InjFifoId, MsgIdLane, RecFifo, RecFifoId,
    INJ_FIFOS_PER_NODE, LANE_SEQ_MASK, LANE_SHIFT, NODE_LANE, REC_FIFOS_PER_NODE, SYS_LANE,
};
pub use packet::{MuPacket, PacketPayload};
