//! A minimal JSON reader for fault-plan files.
//!
//! The workspace deliberately carries no serde; this is the smallest
//! recursive-descent parser that covers the JSON subset fault plans use
//! (objects, arrays, numbers, strings with basic escapes, booleans, null).
//! It is strict about syntax but imposes no schema — that lives in
//! [`crate::faults::FaultPlan::from_json`].

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 survive exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Obj),
}

/// A JSON object: key/value pairs in source order (few keys — linear
/// lookup beats a map here).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Obj(pub Vec<(String, Json)>);

impl Obj {
    /// First value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl Json {
    /// The value as an object.
    pub fn as_obj(&self) -> Option<&Obj> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// anything that doesn't round-trip through f64).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", "expected 'true'").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false", "expected 'false'").map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(Obj(pairs)));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|mut e| {
                e.msg = "expected an object key string";
                e
            })?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(Obj(pairs))),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // No surrogate-pair support; fault plans are ASCII.
                        out.push(char::from_u32(code).ok_or(self.err("bad \\u escape"))?);
                    }
                    _ => return Err(self.err("bad escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if start + width > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, msg: "malformed number" })
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_obj().unwrap().get("b").unwrap().as_str(), Some("x"));
        assert_eq!(obj.get("c").unwrap(), &Json::Bool(true));
        assert!(obj.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err(), "trailing garbage");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn unicode_strings_survive() {
        assert_eq!(parse("\"π≈3\"").unwrap().as_str(), Some("π≈3"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
