//! Deterministic fault injection for the simulated torus fabric.
//!
//! Real BG/Q links see bit flips and (rarely) outright failures; the
//! network hardware answers with link-level CRC + retransmit and a RAS
//! event stream. To exercise that machinery here, a [`FaultPlan`] describes
//! *what* goes wrong — per-link drop/corrupt/delay probabilities and
//! kill-at-packet-N schedules — and a [`FaultInjector`] compiled from the
//! plan decides the fate of every frame crossing a link.
//!
//! Determinism is the whole point: the injector's verdict is a pure hash of
//! `(seed, link, frame sequence number, attempt)`, so a chaos run replays
//! identically for the same seed regardless of thread interleaving, and a
//! retransmitted frame (higher `attempt`) re-rolls the dice instead of
//! being doomed forever. Plans serialize to/from a small JSON dialect
//! (hand-rolled — no serde in this workspace) so chaos configurations live
//! in files and `PAMI_FAULT_PLAN`, not code edits.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bgq_torus::{Dir, TorusShape};

use crate::json::{self, Json};

/// Directed-link identifier: `node_index * 10 + Dir::index()`.
pub type LinkId = u64;

/// Compute a [`LinkId`] from a node index and outgoing direction.
pub fn link_id(node: u32, dir: Dir) -> LinkId {
    node as u64 * 10 + dir.index() as u64
}

/// Split a [`LinkId`] back into (node index, direction).
pub fn link_parts(id: LinkId) -> (u32, Dir) {
    ((id / 10) as u32, Dir::all()[(id % 10) as usize])
}

/// Per-link fault probabilities. All rates are in `[0, 1]` and are applied
/// in priority order drop → corrupt → delay on a single uniform draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame arrives with a failing CRC.
    pub corrupt: f64,
    /// Probability a frame is held back for [`FaultRates::delay_ticks`].
    pub delay: f64,
    /// How many link-pump ticks a delayed frame waits.
    pub delay_ticks: u32,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates { drop: 0.0, corrupt: 0.0, delay: 0.0, delay_ticks: 2 }
    }
}

impl FaultRates {
    fn is_clean(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.delay == 0.0
    }
}

/// Link-level retry protocol constants (the BG/Q link-retry analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Sliding-window size in frames per (source, destination) channel.
    pub window: usize,
    /// Initial retransmit timeout, in link-pump ticks.
    pub rto_ticks: u64,
    /// Ceiling for the exponentially backed-off timeout.
    pub rto_max_ticks: u64,
    /// Retransmit attempts per frame before the channel is declared dead
    /// and outstanding transfers fail with a timeout.
    pub retry_budget: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { window: 64, rto_ticks: 4, rto_max_ticks: 64, retry_budget: 10 }
    }
}

/// Which retransmit protocol the link channels run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkProtocol {
    /// Selective repeat: per-frame acks with SACK-driven fast retransmit
    /// and a receiver reorder buffer — only missing frames are re-sent.
    #[default]
    SelectiveRepeat,
    /// Go-back-N: the channel examines only its oldest unacked frame and
    /// acks are modeled lossless — the pre-selective-repeat behaviour,
    /// kept selectable for A/B benchmarking.
    GoBackN,
}

impl LinkProtocol {
    fn as_str(&self) -> &'static str {
        match self {
            LinkProtocol::SelectiveRepeat => "selective_repeat",
            LinkProtocol::GoBackN => "go_back_n",
        }
    }
}

/// A per-link override in a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    /// Node index of the link's source endpoint.
    pub node: u32,
    /// Outgoing direction.
    pub dir: Dir,
    /// Rates for this link (overrides the plan default when set).
    pub rates: Option<FaultRates>,
    /// Kill the physical link when the N-th frame crosses it (1-based).
    /// The frame itself is lost; both directions go down.
    pub kill_at: Option<u64>,
}

/// Declarative description of everything that goes wrong in a chaos run:
/// a seed, machine-wide default rates, per-link overrides and kill
/// schedules, and the retry-protocol constants. Build one with the fluent
/// methods, or load it from JSON ([`FaultPlan::from_json`]) or the
/// `PAMI_FAULT_PLAN` environment variable ([`FaultPlan::from_env`]).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic fate hash.
    pub seed: u64,
    /// Default rates for every link without an override.
    pub default_rates: FaultRates,
    /// Per-link overrides.
    pub links: Vec<LinkFault>,
    /// Retry-protocol constants.
    pub retry: RetryConfig,
    /// Retransmit protocol (selective repeat by default; go-back-N kept
    /// for A/B comparison).
    pub protocol: LinkProtocol,
    /// Receiver reorder-buffer capacity in frames per channel. `None`
    /// defaults to the retry window — out-of-order frames beyond this
    /// high-water mark are refused (drop-newest) and retransmitted later.
    pub reorder_capacity: Option<usize>,
}

impl FaultPlan {
    /// An empty plan: no faults, default retry constants. Installing an
    /// empty plan still routes traffic through the reliable channel path
    /// (useful for measuring protocol overhead).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Machine-wide drop probability.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.default_rates.drop = rate;
        self
    }

    /// Machine-wide corruption probability.
    pub fn corrupt_rate(mut self, rate: f64) -> Self {
        self.default_rates.corrupt = rate;
        self
    }

    /// Machine-wide delay probability and per-delay duration in ticks.
    pub fn delay_rate(mut self, rate: f64, ticks: u32) -> Self {
        self.default_rates.delay = rate;
        self.default_rates.delay_ticks = ticks;
        self
    }

    /// Override the rates of one directed link.
    pub fn link_rates(mut self, node: u32, dir: Dir, rates: FaultRates) -> Self {
        self.link_entry(node, dir).rates = Some(rates);
        self
    }

    /// Kill the physical link out of `node` in `dir` when its `nth` frame
    /// crosses (1-based; the frame is lost).
    pub fn kill_link_at(mut self, node: u32, dir: Dir, nth: u64) -> Self {
        assert!(nth > 0, "kill_at is 1-based");
        self.link_entry(node, dir).kill_at = Some(nth);
        self
    }

    /// Set the retry-protocol constants.
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Select the retransmit protocol (selective repeat by default).
    pub fn link_protocol(mut self, protocol: LinkProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Cap the receiver reorder buffer at `frames` per channel (defaults
    /// to the retry window).
    pub fn reorder_capacity(mut self, frames: usize) -> Self {
        self.reorder_capacity = Some(frames);
        self
    }

    fn link_entry(&mut self, node: u32, dir: Dir) -> &mut LinkFault {
        if let Some(i) = self.links.iter().position(|l| l.node == node && l.dir == dir) {
            &mut self.links[i]
        } else {
            self.links.push(LinkFault { node, dir, rates: None, kill_at: None });
            self.links.last_mut().unwrap()
        }
    }

    /// Whether the plan injects any fault at all (an all-clean plan still
    /// exercises the reliable-channel protocol, just without retries).
    pub fn is_clean(&self) -> bool {
        self.default_rates.is_clean()
            && self.links.iter().all(|l| {
                l.kill_at.is_none() && l.rates.is_none_or(|r| r.is_clean())
            })
    }

    /// Serialize to the JSON dialect accepted by [`FaultPlan::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\": {}", self.seed));
        let d = &self.default_rates;
        out.push_str(&format!(
            ", \"drop\": {}, \"corrupt\": {}, \"delay\": {}, \"delay_ticks\": {}",
            d.drop, d.corrupt, d.delay, d.delay_ticks
        ));
        let r = &self.retry;
        out.push_str(&format!(
            ", \"retry\": {{\"window\": {}, \"rto_ticks\": {}, \"rto_max_ticks\": {}, \"retry_budget\": {}}}",
            r.window, r.rto_ticks, r.rto_max_ticks, r.retry_budget
        ));
        out.push_str(&format!(", \"protocol\": \"{}\"", self.protocol.as_str()));
        if let Some(cap) = self.reorder_capacity {
            out.push_str(&format!(", \"reorder_capacity\": {cap}"));
        }
        out.push_str(", \"links\": [");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"node\": {}, \"dir\": {}", l.node, l.dir.index()));
            if let Some(rates) = l.rates {
                out.push_str(&format!(
                    ", \"drop\": {}, \"corrupt\": {}, \"delay\": {}, \"delay_ticks\": {}",
                    rates.drop, rates.corrupt, rates.delay, rates.delay_ticks
                ));
            }
            if let Some(k) = l.kill_at {
                out.push_str(&format!(", \"kill_at\": {k}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parse a plan from JSON. Unknown keys are ignored; missing keys take
    /// their defaults, so `{}` is the empty plan.
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let v = json::parse(text).map_err(FaultPlanError::Parse)?;
        let obj = v.as_obj().ok_or(FaultPlanError::Shape("top level must be an object"))?;
        let mut plan = FaultPlan::new();
        if let Some(s) = obj.get("seed") {
            plan.seed = s.as_u64().ok_or(FaultPlanError::Shape("seed must be an integer"))?;
        }
        plan.default_rates = rates_from(obj, FaultRates::default())?;
        if let Some(r) = obj.get("retry") {
            let r = r.as_obj().ok_or(FaultPlanError::Shape("retry must be an object"))?;
            let mut retry = RetryConfig::default();
            if let Some(w) = r.get("window") {
                retry.window = w
                    .as_u64()
                    .ok_or(FaultPlanError::Shape("retry.window must be an integer"))?
                    as usize;
            }
            if let Some(t) = r.get("rto_ticks") {
                retry.rto_ticks =
                    t.as_u64().ok_or(FaultPlanError::Shape("retry.rto_ticks must be an integer"))?;
            }
            if let Some(t) = r.get("rto_max_ticks") {
                retry.rto_max_ticks = t
                    .as_u64()
                    .ok_or(FaultPlanError::Shape("retry.rto_max_ticks must be an integer"))?;
            }
            if let Some(b) = r.get("retry_budget") {
                retry.retry_budget = b
                    .as_u64()
                    .ok_or(FaultPlanError::Shape("retry.retry_budget must be an integer"))?
                    as u32;
            }
            plan.retry = retry;
        }
        if let Some(p) = obj.get("protocol") {
            plan.protocol = match p.as_str() {
                Some("selective_repeat") => LinkProtocol::SelectiveRepeat,
                Some("go_back_n") => LinkProtocol::GoBackN,
                _ => {
                    return Err(FaultPlanError::Shape(
                        "protocol must be \"selective_repeat\" or \"go_back_n\"",
                    ))
                }
            };
        }
        if let Some(cap) = obj.get("reorder_capacity") {
            plan.reorder_capacity = Some(
                cap.as_u64()
                    .ok_or(FaultPlanError::Shape("reorder_capacity must be an integer"))?
                    as usize,
            );
        }
        if let Some(links) = obj.get("links") {
            let links =
                links.as_arr().ok_or(FaultPlanError::Shape("links must be an array"))?;
            for l in links {
                let l = l.as_obj().ok_or(FaultPlanError::Shape("link must be an object"))?;
                let node = l
                    .get("node")
                    .and_then(Json::as_u64)
                    .ok_or(FaultPlanError::Shape("link.node must be an integer"))?
                    as u32;
                let dir_idx = l
                    .get("dir")
                    .and_then(Json::as_u64)
                    .ok_or(FaultPlanError::Shape("link.dir must be an integer 0..10"))?;
                if dir_idx >= 10 {
                    return Err(FaultPlanError::Shape("link.dir must be an integer 0..10"));
                }
                let dir = Dir::all()[dir_idx as usize];
                let has_rates = ["drop", "corrupt", "delay", "delay_ticks"]
                    .iter()
                    .any(|k| l.get(k).is_some());
                let rates = if has_rates {
                    Some(rates_from(l, plan.default_rates)?)
                } else {
                    None
                };
                let kill_at = match l.get("kill_at") {
                    Some(k) => Some(
                        k.as_u64()
                            .filter(|&k| k > 0)
                            .ok_or(FaultPlanError::Shape("link.kill_at must be a positive integer"))?,
                    ),
                    None => None,
                };
                plan.links.push(LinkFault { node, dir, rates, kill_at });
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Load a plan from the `PAMI_FAULT_PLAN` environment variable: inline
    /// JSON when the value starts with `{`, otherwise a path to a JSON
    /// file. Returns `Ok(None)` when the variable is unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, FaultPlanError> {
        let Ok(val) = std::env::var("PAMI_FAULT_PLAN") else { return Ok(None) };
        let val = val.trim().to_string();
        if val.is_empty() {
            return Ok(None);
        }
        let text = if val.starts_with('{') {
            val
        } else {
            std::fs::read_to_string(&val).map_err(|e| FaultPlanError::Io(val, e.to_string()))?
        };
        FaultPlan::from_json(&text).map(Some)
    }

    /// Sanity-check rates and retry constants.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let check = |r: &FaultRates| -> Result<(), FaultPlanError> {
            for (name, v) in
                [("drop", r.drop), ("corrupt", r.corrupt), ("delay", r.delay)]
            {
                if !(0.0..=1.0).contains(&v) {
                    let _ = name;
                    return Err(FaultPlanError::Shape("rates must be within [0, 1]"));
                }
            }
            Ok(())
        };
        check(&self.default_rates)?;
        for l in &self.links {
            if let Some(r) = &l.rates {
                check(r)?;
            }
        }
        if self.retry.window == 0 {
            return Err(FaultPlanError::Shape("retry.window must be positive"));
        }
        if self.retry.rto_ticks == 0 || self.retry.rto_max_ticks < self.retry.rto_ticks {
            return Err(FaultPlanError::Shape(
                "retry timeouts must satisfy 0 < rto_ticks <= rto_max_ticks",
            ));
        }
        if self.reorder_capacity == Some(0) {
            return Err(FaultPlanError::Shape("reorder_capacity must be positive"));
        }
        Ok(())
    }

    /// Effective receiver reorder-buffer capacity (explicit or the retry
    /// window).
    pub fn effective_reorder_capacity(&self) -> usize {
        self.reorder_capacity.unwrap_or(self.retry.window).max(1)
    }
}

/// Why a [`FaultPlan`] could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// JSON syntax error.
    Parse(json::JsonError),
    /// Structurally valid JSON that doesn't describe a plan.
    Shape(&'static str),
    /// The `PAMI_FAULT_PLAN` file could not be read.
    Io(String, String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Parse(e) => write!(f, "fault plan JSON: {e}"),
            FaultPlanError::Shape(s) => write!(f, "fault plan: {s}"),
            FaultPlanError::Io(path, e) => write!(f, "fault plan file {path}: {e}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn rates_from(
    obj: &json::Obj,
    base: FaultRates,
) -> Result<FaultRates, FaultPlanError> {
    let mut rates = base;
    if let Some(v) = obj.get("drop") {
        rates.drop = v.as_f64().ok_or(FaultPlanError::Shape("drop must be a number"))?;
    }
    if let Some(v) = obj.get("corrupt") {
        rates.corrupt = v.as_f64().ok_or(FaultPlanError::Shape("corrupt must be a number"))?;
    }
    if let Some(v) = obj.get("delay") {
        rates.delay = v.as_f64().ok_or(FaultPlanError::Shape("delay must be a number"))?;
    }
    if let Some(v) = obj.get("delay_ticks") {
        rates.delay_ticks =
            v.as_u64().ok_or(FaultPlanError::Shape("delay_ticks must be an integer"))? as u32;
    }
    Ok(rates)
}

/// The fate of one frame crossing one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered intact.
    Pass,
    /// Silently lost.
    Drop,
    /// Delivered with a failing CRC (receiver discards it).
    Corrupt,
    /// Held for this many link-pump ticks, then delivered intact.
    Delay(u32),
}

/// Runtime form of a [`FaultPlan`]: per-link compiled rates, kill-schedule
/// crossing counters, and the deterministic fate hash.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Links with overridden rates.
    overrides: HashMap<LinkId, FaultRates>,
    /// Links with a kill schedule: kill threshold and crossing counter.
    kills: HashMap<LinkId, (u64, AtomicU64)>,
    /// Uniform-plan fate thresholds, precomputed when no link carries a
    /// rate override: a draw at or above `.0` is `Pass`, at or above `.1`
    /// is `Pass` or `Delay`. `None` disables the fate-peek fast path
    /// (per-link rates need the full `decide`).
    uniform: Option<(f64, f64)>,
}

impl FaultInjector {
    /// Compile a plan. `shape` bounds-checks link node indices.
    pub fn new(plan: FaultPlan, shape: TorusShape) -> Self {
        let mut overrides = HashMap::new();
        let mut kills = HashMap::new();
        for l in &plan.links {
            assert!(
                (l.node as usize) < shape.num_nodes(),
                "fault plan names node {} outside the {}-node machine",
                l.node,
                shape.num_nodes()
            );
            let id = link_id(l.node, l.dir);
            if let Some(r) = l.rates {
                overrides.insert(id, r);
            }
            if let Some(k) = l.kill_at {
                kills.insert(id, (k, AtomicU64::new(0)));
            }
        }
        let uniform = if overrides.is_empty() {
            let r = plan.default_rates;
            Some((r.drop + r.corrupt + r.delay, r.drop + r.corrupt))
        } else {
            None
        };
        FaultInjector { plan, overrides, kills, uniform }
    }

    /// The plan this injector was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Retry-protocol constants.
    pub fn retry(&self) -> RetryConfig {
        self.plan.retry
    }

    /// Which retransmit protocol the channels run.
    pub fn protocol(&self) -> LinkProtocol {
        self.plan.protocol
    }

    /// Receiver reorder-buffer capacity in frames.
    pub fn reorder_capacity(&self) -> usize {
        self.plan.effective_reorder_capacity()
    }

    /// Per-link half of the dice key. `link_salt(l) + seq_salt(s, a)`
    /// (wrapping) reproduces `decide`'s hash input exactly — addition
    /// commutes — so route plans precompute this once per link and the
    /// per-frame fate peek pays a single finalizer per die.
    #[inline]
    pub fn link_salt(&self, link: LinkId) -> u64 {
        self.plan.seed.wrapping_add(mix(link ^ 0x9E37_79B9_7F4A_7C15))
    }

    /// Per-(seq, attempt) half of the dice key; see [`Self::link_salt`].
    #[inline]
    pub fn seq_salt(seq: u64, attempt: u32) -> u64 {
        mix(seq ^ 0xBF58_476D_1CE4_E5B9)
            .wrapping_add(mix(attempt as u64 ^ 0x94D0_49BB_1331_11EB))
    }

    /// The uniform draw in [0, 1) behind `decide`, from precomputed keys.
    #[inline]
    pub fn draw(link_salt: u64, seq_salt: u64) -> f64 {
        (splitmix64(link_salt.wrapping_add(seq_salt)) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform-plan fate thresholds (`None` when per-link rate overrides
    /// exist): `draw >= .0` ⇔ `Fate::Pass`; `draw >= .1` ⇔ `Pass` or
    /// `Delay`.
    #[inline]
    pub fn uniform_thresholds(&self) -> Option<(f64, f64)> {
        self.uniform
    }

    /// Decide the fate of frame `seq` crossing `link` on transmission
    /// `attempt` (0 = first try). Pure in its arguments and the seed.
    pub fn decide(&self, link: LinkId, seq: u64, attempt: u32) -> Fate {
        // The hot path rolls these dice once per link per frame (twice
        // under selective repeat, which also dices the reverse-route
        // ack) — skip the map probe entirely for uniform-rate plans.
        let rates = if self.overrides.is_empty() {
            self.plan.default_rates
        } else {
            self.overrides.get(&link).copied().unwrap_or(self.plan.default_rates)
        };
        if rates.is_clean() {
            return Fate::Pass;
        }
        let draw = Self::draw(self.link_salt(link), Self::seq_salt(seq, attempt));
        if draw < rates.drop {
            Fate::Drop
        } else if draw < rates.drop + rates.corrupt {
            Fate::Corrupt
        } else if draw < rates.drop + rates.corrupt + rates.delay {
            Fate::Delay(rates.delay_ticks.max(1))
        } else {
            Fate::Pass
        }
    }

    /// Record a frame crossing `link`; returns `true` exactly once, when
    /// the crossing count reaches the link's kill threshold.
    pub fn note_crossing(&self, link: LinkId) -> bool {
        match self.kills.get(&link) {
            None => false,
            Some((kill_at, count)) => {
                count.fetch_add(1, Ordering::Relaxed) + 1 == *kill_at
            }
        }
    }

    /// Whether any link carries a kill schedule (cheap pre-check).
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }
}

#[inline]
fn mix(x: u64) -> u64 {
    splitmix64(x)
}

/// SplitMix64 finalizer — the standard 64-bit avalanche.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> TorusShape {
        TorusShape::new([2, 2, 2, 1, 1])
    }

    #[test]
    fn empty_plan_passes_everything() {
        let inj = FaultInjector::new(FaultPlan::new(), shape());
        for link in 0..80 {
            for seq in 0..100 {
                assert_eq!(inj.decide(link, seq, 0), Fate::Pass);
            }
        }
        assert!(inj.plan().is_clean());
    }

    #[test]
    fn fate_is_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::new().seed(7).drop_rate(0.3), shape());
        let b = FaultInjector::new(FaultPlan::new().seed(7).drop_rate(0.3), shape());
        let c = FaultInjector::new(FaultPlan::new().seed(8).drop_rate(0.3), shape());
        let fates_a: Vec<Fate> = (0..400).map(|s| a.decide(3, s, 0)).collect();
        let fates_b: Vec<Fate> = (0..400).map(|s| b.decide(3, s, 0)).collect();
        let fates_c: Vec<Fate> = (0..400).map(|s| c.decide(3, s, 0)).collect();
        assert_eq!(fates_a, fates_b, "same seed ⇒ same fates");
        assert_ne!(fates_a, fates_c, "different seed ⇒ different fates");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(
            FaultPlan::new().seed(42).drop_rate(0.2).corrupt_rate(0.1),
            shape(),
        );
        let n = 20_000;
        let mut drops = 0;
        let mut corrupts = 0;
        for seq in 0..n {
            match inj.decide(11, seq, 0) {
                Fate::Drop => drops += 1,
                Fate::Corrupt => corrupts += 1,
                _ => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        let corrupt_rate = corrupts as f64 / n as f64;
        assert!((0.18..0.22).contains(&drop_rate), "drop rate {drop_rate}");
        assert!((0.085..0.115).contains(&corrupt_rate), "corrupt rate {corrupt_rate}");
    }

    #[test]
    fn attempt_rerolls_the_dice() {
        let inj = FaultInjector::new(FaultPlan::new().seed(1).drop_rate(0.5), shape());
        // Any dropped frame must eventually pass on a retransmit attempt.
        for seq in 0..50 {
            if inj.decide(5, seq, 0) != Fate::Drop {
                continue;
            }
            let passed = (1..64).any(|a| inj.decide(5, seq, a) == Fate::Pass);
            assert!(passed, "seq {seq} never passed across 64 attempts");
        }
    }

    #[test]
    fn link_override_beats_default() {
        let dir = Dir::all()[0];
        let plan = FaultPlan::new().seed(3).link_rates(
            1,
            dir,
            FaultRates { drop: 1.0, ..FaultRates::default() },
        );
        let inj = FaultInjector::new(plan, shape());
        assert_eq!(inj.decide(link_id(1, dir), 0, 0), Fate::Drop);
        assert_eq!(inj.decide(link_id(0, dir), 0, 0), Fate::Pass, "other links clean");
    }

    #[test]
    fn kill_schedule_fires_exactly_once() {
        let dir = Dir::all()[2];
        let plan = FaultPlan::new().kill_link_at(0, dir, 3);
        let inj = FaultInjector::new(plan, shape());
        let id = link_id(0, dir);
        assert!(inj.has_kills());
        assert!(!inj.note_crossing(id));
        assert!(!inj.note_crossing(id));
        assert!(inj.note_crossing(id), "third crossing kills");
        assert!(!inj.note_crossing(id), "fires once");
        assert!(!inj.note_crossing(link_id(1, dir)), "other links unaffected");
    }

    #[test]
    fn json_round_trip() {
        let dir = Dir::all()[4];
        let plan = FaultPlan::new()
            .seed(99)
            .drop_rate(0.05)
            .corrupt_rate(0.01)
            .delay_rate(0.02, 3)
            .link_rates(2, dir, FaultRates { drop: 0.5, corrupt: 0.0, delay: 0.0, delay_ticks: 2 })
            .kill_link_at(3, dir, 128)
            .retry(RetryConfig { window: 32, rto_ticks: 2, rto_max_ticks: 16, retry_budget: 5 })
            .link_protocol(LinkProtocol::GoBackN)
            .reorder_capacity(12);
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("round trip parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn protocol_and_reorder_capacity_parse_and_default() {
        let plan = FaultPlan::from_json("{}").unwrap();
        assert_eq!(plan.protocol, LinkProtocol::SelectiveRepeat);
        assert_eq!(plan.reorder_capacity, None);
        assert_eq!(plan.effective_reorder_capacity(), plan.retry.window);
        let plan =
            FaultPlan::from_json("{\"protocol\": \"go_back_n\", \"reorder_capacity\": 4}").unwrap();
        assert_eq!(plan.protocol, LinkProtocol::GoBackN);
        assert_eq!(plan.effective_reorder_capacity(), 4);
        assert!(FaultPlan::from_json("{\"protocol\": \"stop_and_wait\"}").is_err());
        assert!(FaultPlan::from_json("{\"reorder_capacity\": 0}").is_err());
    }

    #[test]
    fn from_json_defaults_and_rejects() {
        let empty = FaultPlan::from_json("{}").expect("empty object is the empty plan");
        assert_eq!(empty, FaultPlan::new());
        assert!(FaultPlan::from_json("[1,2]").is_err(), "top-level array rejected");
        assert!(FaultPlan::from_json("{\"drop\": 1.5}").is_err(), "rate > 1 rejected");
        assert!(
            FaultPlan::from_json("{\"retry\": {\"window\": 0}}").is_err(),
            "zero window rejected"
        );
        assert!(
            FaultPlan::from_json("{\"links\": [{\"node\": 0, \"dir\": 10}]}").is_err(),
            "dir out of range rejected"
        );
    }

    #[test]
    fn link_id_round_trips() {
        for node in 0..8u32 {
            for dir in Dir::all() {
                let id = link_id(node, dir);
                assert_eq!(link_parts(id), (node, dir));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn injector_rejects_out_of_shape_links() {
        let plan = FaultPlan::new().kill_link_at(999, Dir::all()[0], 1);
        FaultInjector::new(plan, shape());
    }
}
