//! MU packets as they land in reception FIFOs.

use bgq_hw::MemRegion;
use bytes::Bytes;

/// A packet's payload — either bytes carried in the packet itself or a
/// zero-copy window into the *source* node's registered memory.
///
/// The real MU DMAs payload from source memory onto the wire; the receiving
/// software's single copy is pulling it out of the reception FIFO into the
/// destination buffer. The simulation reproduces that copy count: a
/// [`PacketPayload::Region`] packet carries no staged bytes, only a
/// refcounted window into the source region (standing in for the bytes the
/// hardware would have placed in the FIFO's packet buffer), and
/// [`PacketPayload::deposit`] performs the one region-to-destination copy.
#[derive(Debug)]
pub enum PacketPayload {
    /// Bytes staged in the packet (the `PAMI_Send_immediate` copy-through
    /// path). Shared slices of the message payload; cheap refcount clones.
    Inline(Bytes),
    /// Zero-copy window into the source region.
    Region {
        /// Source region (refcounted handle, no bytes copied).
        region: MemRegion,
        /// Window offset within `region`.
        offset: usize,
        /// Window length (≤ 512).
        len: usize,
    },
}

impl PacketPayload {
    /// Logical payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PacketPayload::Inline(b) => b.len(),
            PacketPayload::Region { len, .. } => *len,
        }
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes *as visible in the packet buffer*: the staged
    /// bytes for [`PacketPayload::Inline`], empty for
    /// [`PacketPayload::Region`] (the data is still in source memory —
    /// consumers must [`PacketPayload::deposit`] it). Dispatch handlers are
    /// handed this view; a handler that sees fewer bytes than the message
    /// length returns [`Recv::Into`](`crate::packet`) -style deposit
    /// instructions rather than consuming in place.
    #[inline]
    pub fn view(&self) -> &[u8] {
        match self {
            PacketPayload::Inline(b) => b,
            PacketPayload::Region { .. } => &[],
        }
    }

    /// Deposit the payload into `dst` at `dst_offset` — the receive-side
    /// copy (exactly one for either variant).
    pub fn deposit(&mut self, dst: &MemRegion, dst_offset: usize) {
        match self {
            PacketPayload::Inline(b) => dst.write(dst_offset, b),
            PacketPayload::Region { region, offset, len } => {
                dst.copy_from(dst_offset, region, *offset, *len);
            }
        }
    }
}

impl From<Bytes> for PacketPayload {
    fn from(b: Bytes) -> Self {
        PacketPayload::Inline(b)
    }
}

/// A memory-FIFO packet: the unit software pulls out of a reception FIFO.
///
/// The real packet is a 32-byte header plus ≤512 bytes of payload; the
/// header carries the source, a software dispatch identifier, and enough
/// message bookkeeping for the protocol layer to reassemble multi-packet
/// messages. Dispatch metadata is shared across a message's packets (PAMI
/// sends it in the first packet; the simulation clones the handle — a cheap
/// refcount bump — onto every packet, which avoids modeling out-of-order
/// header arrival while preserving per-packet payload granularity).
///
/// Packets are intentionally not `Clone`: each one owns its payload window.
#[derive(Debug)]
pub struct MuPacket {
    /// Source node index.
    pub src_node: u32,
    /// Source context offset within the source node (lets the destination
    /// side address replies; part of PAMI's endpoint addressing).
    pub src_context: u16,
    /// Software dispatch identifier — selects the active-message handler.
    pub dispatch: u16,
    /// Protocol metadata (matching bits, rendezvous handles, …).
    pub metadata: Bytes,
    /// Message identifier, unique per source node.
    pub msg_id: u64,
    /// Total message payload length in bytes.
    pub msg_len: u32,
    /// Offset of this packet's payload within the message.
    pub offset: u32,
    /// This packet's payload (≤ 512 bytes, possibly a zero-copy window).
    pub payload: PacketPayload,
}

impl MuPacket {
    /// Whether this is the last packet of its message.
    pub fn is_last(&self) -> bool {
        self.offset as usize + self.payload.len() >= self.msg_len as usize
    }

    /// Whether this is the first packet of its message.
    pub fn is_first(&self) -> bool {
        self.offset == 0
    }

    /// Number of packets the whole message occupies.
    pub fn packets_in_message(&self) -> usize {
        bgq_torus::packet::packets_for(self.msg_len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(offset: u32, len: usize, total: u32) -> MuPacket {
        MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 0,
            metadata: Bytes::new(),
            msg_id: 1,
            msg_len: total,
            offset,
            payload: PacketPayload::Inline(Bytes::from(vec![0u8; len])),
        }
    }

    #[test]
    fn first_and_last_detection() {
        let p = pkt(0, 512, 1024);
        assert!(p.is_first());
        assert!(!p.is_last());
        let q = pkt(512, 512, 1024);
        assert!(!q.is_first());
        assert!(q.is_last());
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let p = pkt(0, 0, 0);
        assert!(p.is_first());
        assert!(p.is_last());
        assert_eq!(p.packets_in_message(), 1);
    }

    #[test]
    fn region_payload_reports_logical_len_but_empty_view() {
        let region = MemRegion::from_vec((0..64).collect());
        let p = PacketPayload::Region { region, offset: 8, len: 16 };
        assert_eq!(p.len(), 16);
        assert!(!p.is_empty());
        assert!(p.view().is_empty(), "region bytes live in source memory");
    }

    #[test]
    fn deposit_copies_window() {
        let src = MemRegion::from_vec((0..32).collect());
        let dst = MemRegion::zeroed(32);
        let mut p = PacketPayload::Region { region: src, offset: 4, len: 8 };
        p.deposit(&dst, 16);
        assert_eq!(&dst.to_vec()[16..24], &(4..12).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn inline_deposit_writes_bytes() {
        let dst = MemRegion::zeroed(8);
        let mut p = PacketPayload::Inline(Bytes::from_static(b"abcd"));
        assert_eq!(p.view(), b"abcd");
        p.deposit(&dst, 2);
        assert_eq!(&dst.to_vec()[2..6], b"abcd");
    }
}
