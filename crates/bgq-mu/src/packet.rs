//! MU packets as they land in reception FIFOs.

use bgq_hw::MemRegion;
use bytes::Bytes;

/// A packet's payload — either bytes carried in the packet itself or a
/// zero-copy window into the *source* node's registered memory.
///
/// The real MU DMAs payload from source memory onto the wire; the receiving
/// software's single copy is pulling it out of the reception FIFO into the
/// destination buffer. The simulation reproduces that copy count: a
/// [`PacketPayload::Region`] packet carries no staged bytes, only a
/// refcounted window into the source region (standing in for the bytes the
/// hardware would have placed in the FIFO's packet buffer), and
/// [`PacketPayload::deposit`] performs the one region-to-destination copy.
#[derive(Debug)]
pub enum PacketPayload {
    /// Bytes staged in the packet (the `PAMI_Send_immediate` copy-through
    /// path). Shared slices of the message payload; cheap refcount clones.
    Inline(Bytes),
    /// Zero-copy window into the source region.
    Region {
        /// Source region (refcounted handle, no bytes copied).
        region: MemRegion,
        /// Window offset within `region`.
        offset: usize,
        /// Window length (≤ 512).
        len: usize,
    },
}

impl PacketPayload {
    /// Logical payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PacketPayload::Inline(b) => b.len(),
            PacketPayload::Region { len, .. } => *len,
        }
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes *as visible in the packet buffer*: the staged
    /// bytes for [`PacketPayload::Inline`], empty for
    /// [`PacketPayload::Region`] (the data is still in source memory —
    /// consumers must [`PacketPayload::deposit`] it). Dispatch handlers are
    /// handed this view; a handler that sees fewer bytes than the message
    /// length returns [`Recv::Into`](`crate::packet`) -style deposit
    /// instructions rather than consuming in place.
    #[inline]
    pub fn view(&self) -> &[u8] {
        match self {
            PacketPayload::Inline(b) => b,
            PacketPayload::Region { .. } => &[],
        }
    }

    /// Deposit the payload into `dst` at `dst_offset` — the receive-side
    /// copy (exactly one for either variant).
    pub fn deposit(&mut self, dst: &MemRegion, dst_offset: usize) {
        match self {
            PacketPayload::Inline(b) => dst.write(dst_offset, b),
            PacketPayload::Region { region, offset, len } => {
                dst.copy_from(dst_offset, region, *offset, *len);
            }
        }
    }
}

impl From<Bytes> for PacketPayload {
    fn from(b: Bytes) -> Self {
        PacketPayload::Inline(b)
    }
}

/// A memory-FIFO packet: the unit software pulls out of a reception FIFO.
///
/// The real packet is a 32-byte header plus ≤512 bytes of payload; the
/// header carries the source, a software dispatch identifier, and enough
/// message bookkeeping for the protocol layer to reassemble multi-packet
/// messages. Dispatch metadata is shared across a message's packets (PAMI
/// sends it in the first packet; the simulation clones the handle — a cheap
/// refcount bump — onto every packet, which avoids modeling out-of-order
/// header arrival while preserving per-packet payload granularity).
///
/// Packets are intentionally not `Clone`: each one owns its payload window.
#[derive(Debug)]
pub struct MuPacket {
    /// Source node index.
    pub src_node: u32,
    /// Source context offset within the source node (lets the destination
    /// side address replies; part of PAMI's endpoint addressing).
    pub src_context: u16,
    /// Software dispatch identifier — selects the active-message handler.
    pub dispatch: u16,
    /// Protocol metadata (matching bits, rendezvous handles, …).
    pub metadata: Bytes,
    /// Message identifier, unique per source node.
    pub msg_id: u64,
    /// Total message payload length in bytes.
    pub msg_len: u32,
    /// Offset of this packet's payload within the message.
    pub offset: u32,
    /// Link-level sequence number: per-node monotonic on the fault-free
    /// fast path, per-channel under a fault plan. The retransmit protocol
    /// tracks frames by it.
    pub link_seq: u64,
    /// CRC-32C over the header fields, metadata, and staged payload bytes
    /// (zero when the fabric is built with CRC disabled). See
    /// [`MuPacket::verify_crc`].
    pub crc: u32,
    /// Short-tier flag: the packet is a complete message whose metadata and
    /// payload were inlined into a single envelope at the send call — the
    /// receive side dispatches straight from the packet (no reassembly, no
    /// matching-queue traffic) and feeds the short-tier cost model instead
    /// of the eager one. Mirrors the header bit the Charm++ PAMI layers'
    /// `SHORT_DISPATCH` id encodes.
    pub short: bool,
    /// This packet's payload (≤ 512 bytes, possibly a zero-copy window).
    pub payload: PacketPayload,
}

/// CRC-32C over a packet's header fields, metadata, and *staged* payload —
/// [`PacketPayload::Region`] windows contribute only through `msg_len` /
/// `offset`, since their bytes never leave source memory in the simulation
/// (real hardware checksums them on the wire; here the in-process copy is
/// the wire).
#[allow(clippy::too_many_arguments)]
pub fn packet_crc(
    src_node: u32,
    src_context: u16,
    dispatch: u16,
    msg_id: u64,
    msg_len: u32,
    offset: u32,
    link_seq: u64,
    metadata: &[u8],
    staged_payload: &[u8],
) -> u32 {
    let mut c = crate::crc::Crc32c::new();
    c.update(&src_node.to_le_bytes());
    c.update(&src_context.to_le_bytes());
    c.update(&dispatch.to_le_bytes());
    c.update_u64(msg_id);
    c.update(&msg_len.to_le_bytes());
    c.update(&offset.to_le_bytes());
    c.update_u64(link_seq);
    c.update(metadata);
    c.update(staged_payload);
    c.finish()
}

impl MuPacket {
    /// Whether this is the last packet of its message.
    pub fn is_last(&self) -> bool {
        self.offset as usize + self.payload.len() >= self.msg_len as usize
    }

    /// Whether this is the first packet of its message.
    pub fn is_first(&self) -> bool {
        self.offset == 0
    }

    /// Number of packets the whole message occupies.
    pub fn packets_in_message(&self) -> usize {
        bgq_torus::packet::packets_for(self.msg_len as usize)
    }

    /// Recompute this packet's CRC from its contents.
    pub fn compute_crc(&self) -> u32 {
        packet_crc(
            self.src_node,
            self.src_context,
            self.dispatch,
            self.msg_id,
            self.msg_len,
            self.offset,
            self.link_seq,
            &self.metadata,
            self.payload.view(),
        )
    }

    /// Receive-side integrity check: does the carried CRC match the packet
    /// contents? Always `true` for packets from a fabric built with
    /// [`crate::fabric::MuFabricBuilder::crc`]`(false)` (stamp is zero and
    /// verification is skipped).
    pub fn verify_crc(&self) -> bool {
        self.crc == 0 || self.crc == self.compute_crc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(offset: u32, len: usize, total: u32) -> MuPacket {
        let payload = Bytes::from(vec![0u8; len]);
        MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 0,
            metadata: Bytes::new(),
            msg_id: 1,
            msg_len: total,
            offset,
            link_seq: 9,
            crc: packet_crc(0, 0, 0, 1, total, offset, 9, &[], &payload),
            short: false,
            payload: PacketPayload::Inline(payload),
        }
    }

    #[test]
    fn first_and_last_detection() {
        let p = pkt(0, 512, 1024);
        assert!(p.is_first());
        assert!(!p.is_last());
        let q = pkt(512, 512, 1024);
        assert!(!q.is_first());
        assert!(q.is_last());
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let p = pkt(0, 0, 0);
        assert!(p.is_first());
        assert!(p.is_last());
        assert_eq!(p.packets_in_message(), 1);
    }

    #[test]
    fn region_payload_reports_logical_len_but_empty_view() {
        let region = MemRegion::from_vec((0..64).collect());
        let p = PacketPayload::Region { region, offset: 8, len: 16 };
        assert_eq!(p.len(), 16);
        assert!(!p.is_empty());
        assert!(p.view().is_empty(), "region bytes live in source memory");
    }

    #[test]
    fn deposit_copies_window() {
        let src = MemRegion::from_vec((0..32).collect());
        let dst = MemRegion::zeroed(32);
        let mut p = PacketPayload::Region { region: src, offset: 4, len: 8 };
        p.deposit(&dst, 16);
        assert_eq!(&dst.to_vec()[16..24], &(4..12).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn crc_round_trips_and_catches_mutation() {
        let mut p = pkt(0, 64, 64);
        assert!(p.verify_crc());
        p.dispatch = 5;
        assert!(!p.verify_crc(), "header mutation breaks the CRC");
        p.dispatch = 0;
        assert!(p.verify_crc());
        p.crc = 0;
        assert!(p.verify_crc(), "zero stamp means CRC disabled");
    }

    #[test]
    fn inline_deposit_writes_bytes() {
        let dst = MemRegion::zeroed(8);
        let mut p = PacketPayload::Inline(Bytes::from_static(b"abcd"));
        assert_eq!(p.view(), b"abcd");
        p.deposit(&dst, 2);
        assert_eq!(&dst.to_vec()[2..6], b"abcd");
    }
}
