//! MU packets as they land in reception FIFOs.

use bytes::Bytes;

/// A memory-FIFO packet: the unit software pulls out of a reception FIFO.
///
/// The real packet is a 32-byte header plus ≤512 bytes of payload; the
/// header carries the source, a software dispatch identifier, and enough
/// message bookkeeping for the protocol layer to reassemble multi-packet
/// messages. Dispatch metadata is shared across a message's packets (PAMI
/// sends it in the first packet; the simulation clones the handle — a cheap
/// refcount bump — onto every packet, which avoids modeling out-of-order
/// header arrival while preserving per-packet payload granularity).
#[derive(Debug, Clone)]
pub struct MuPacket {
    /// Source node index.
    pub src_node: u32,
    /// Source context offset within the source node (lets the destination
    /// side address replies; part of PAMI's endpoint addressing).
    pub src_context: u16,
    /// Software dispatch identifier — selects the active-message handler.
    pub dispatch: u16,
    /// Protocol metadata (matching bits, rendezvous handles, …).
    pub metadata: Bytes,
    /// Message identifier, unique per source node.
    pub msg_id: u64,
    /// Total message payload length in bytes.
    pub msg_len: u32,
    /// Offset of this packet's payload within the message.
    pub offset: u32,
    /// This packet's payload slice (≤ 512 bytes).
    pub payload: Bytes,
}

impl MuPacket {
    /// Whether this is the last packet of its message.
    pub fn is_last(&self) -> bool {
        self.offset as usize + self.payload.len() >= self.msg_len as usize
    }

    /// Whether this is the first packet of its message.
    pub fn is_first(&self) -> bool {
        self.offset == 0
    }

    /// Number of packets the whole message occupies.
    pub fn packets_in_message(&self) -> usize {
        bgq_torus::packet::packets_for(self.msg_len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(offset: u32, len: usize, total: u32) -> MuPacket {
        MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 0,
            metadata: Bytes::new(),
            msg_id: 1,
            msg_len: total,
            offset,
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    #[test]
    fn first_and_last_detection() {
        let p = pkt(0, 512, 1024);
        assert!(p.is_first());
        assert!(!p.is_last());
        let q = pkt(512, 512, 1024);
        assert!(!q.is_first());
        assert!(q.is_last());
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let p = pkt(0, 0, 0);
        assert!(p.is_first());
        assert!(p.is_last());
        assert_eq!(p.packets_in_message(), 1);
    }
}
