//! In-network combining for remote atomics — the NYU-Ultracomputer trick
//! generalized to the torus path.
//!
//! Without combining, N nodes hammering one remote counter produce N
//! packets at the root and N serialized memory updates. With the overlay
//! enabled ([`crate::fabric::MuFabricBuilder::combining`]), fetch-add
//! descriptors to the same (window, offset) are intercepted at injection
//! and coalesced at every torus hop on the deterministic route toward the
//! root: each node runs a *combining station*; batches move one hop per
//! link pump, and batches that meet at a station for the same target key
//! merge into one upstream packet. The root applies the combined addend
//! **once** and decombines the prior value by prefix sum — member *i* of a
//! batch observes `prior + Σ operands of members before i`, exactly the
//! value it would have seen under some serial order, so the combined
//! execution stays linearizable.
//!
//! Only fetch-add combines (addition is associative and decombines by
//! prefix sum); compare-swap / min / max descriptors bypass the overlay
//! and execute directly.
//!
//! Reliability: under a fault plan the overlay rolls the same seeded dice
//! the link channels use. A dropped combined packet stays at its station
//! and retransmits on the next pump; an ack-loss duplicate is modeled by a
//! ghost copy that re-arrives and is discarded by the receiving station's
//! seen-set — members are applied exactly once no matter how often the
//! carrier frame crosses the wire.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use bgq_hw::Counter as HwCounter;
use bgq_hw::MemRegion;
use bgq_torus::route::next_hop;
use bgq_torus::TorusShape;
use bgq_upc::{Counter, Upc};
use parking_lot::Mutex;

use crate::descriptor::{RmwOp, RmwReply};
use crate::faults::{link_id, Fate, FaultInjector};

/// `comb.*` telemetry probes for the combining overlay.
pub struct CombCounters {
    /// Fetch-add requests entering the overlay.
    pub requests: Counter,
    /// Requests absorbed into an existing batch (at the source station or
    /// an intermediate hop) instead of travelling as their own packet.
    pub merged: Counter,
    /// Combined packets crossing a torus hop toward the root.
    pub packets_upstream: Counter,
    /// Aggregated reply packets travelling back down (one per root apply;
    /// the per-hop pending-reply tables fan the priors back out).
    pub packets_downstream: Counter,
    /// Atomic applications performed at the root (one per batch, however
    /// many members it carries).
    pub root_applies: Counter,
    /// Combined packets retransmitted after a seeded drop.
    pub retransmits: Counter,
    /// Duplicate combined packets discarded by a station's seen-set.
    pub dupes_dropped: Counter,
    /// Prior values decombined and written back to requesters.
    pub replies: Counter,
}

impl CombCounters {
    pub(crate) fn new(upc: &Upc) -> Self {
        CombCounters {
            requests: upc.counter("comb.requests"),
            merged: upc.counter("comb.merged"),
            packets_upstream: upc.counter("comb.packets_upstream"),
            packets_downstream: upc.counter("comb.packets_downstream"),
            root_applies: upc.counter("comb.root_applies"),
            retransmits: upc.counter("comb.retransmits"),
            dupes_dropped: upc.counter("comb.dupes_dropped"),
            replies: upc.counter("comb.replies"),
        }
    }
}

/// Striped locks serializing atomic read-modify-writes per (window,
/// offset). Keeps concurrent rmws to *different* hot words independent
/// while making each word's update atomic.
pub(crate) struct RmwLocks {
    stripes: Vec<Mutex<()>>,
}

const RMW_STRIPES: usize = 64;

impl RmwLocks {
    pub(crate) fn new() -> Self {
        RmwLocks { stripes: (0..RMW_STRIPES).map(|_| Mutex::new(())).collect() }
    }

    /// Apply `op` atomically to the 8-byte little-endian word at
    /// `region[offset..offset+8]`; returns the prior value.
    pub(crate) fn apply(
        &self,
        win_key: u64,
        region: &MemRegion,
        offset: usize,
        op: RmwOp,
        operand: u64,
        compare: u64,
    ) -> u64 {
        let stripe = (win_key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(offset as u64)) as usize
            % RMW_STRIPES;
        let _g = self.stripes[stripe].lock();
        let mut buf = [0u8; 8];
        region.read(offset, &mut buf);
        let prior = u64::from_le_bytes(buf);
        let new = match op {
            RmwOp::FetchAdd => prior.wrapping_add(operand),
            RmwOp::CompareSwap => {
                if prior == compare {
                    operand
                } else {
                    prior
                }
            }
            RmwOp::Min => prior.min(operand),
            RmwOp::Max => prior.max(operand),
        };
        if new != prior {
            region.write(offset, &new.to_le_bytes());
        }
        prior
    }
}

/// One requester's share of a combined batch: its addend, where its prior
/// value goes, and its completion counter — the decombine ("pending
/// reply") record.
struct Member {
    operand: u64,
    reply: Option<RmwReply>,
    done: Option<HwCounter>,
    credit: u64,
}

/// A combined upstream packet: every fetch-add it has absorbed for one
/// (root, window, offset) target, in arrival order (the serialization
/// order the decombined priors present).
struct Batch {
    /// Globally unique id — the receiving station's dedup key.
    id: u64,
    root: u32,
    win_key: u64,
    offset: usize,
    region: MemRegion,
    total: u64,
    members: Vec<Member>,
    /// Retransmission attempt of the *next* hop (dice input).
    attempt: u32,
    /// Freshly arrived: held at the station for one pump round so batches
    /// travelling different branches can meet and merge.
    hold: bool,
    /// Duplicate carrier (the "data arrived, ack lost" replay). Applies
    /// nothing; exists to be discarded by the receiver's seen-set.
    ghost: bool,
}

/// Per-node combining station.
#[derive(Default)]
struct Station {
    batches: Vec<Batch>,
    /// Ids of batches this station has already accepted — duplicate
    /// carriers of the same id are discarded (exactly-once).
    seen: HashSet<u64>,
}

/// The whole overlay: one station per node plus the global bookkeeping
/// the pump needs.
pub(crate) struct CombState {
    shape: TorusShape,
    stations: Vec<Mutex<Station>>,
    /// Outstanding member requests (submitted, not yet root-applied) —
    /// folded into `links_idle` so quiescence waits for the overlay.
    pending: AtomicU64,
    next_batch: AtomicU64,
    /// One pump at a time; contexts race to it with `try_lock`.
    pump_gate: Mutex<()>,
    pub(crate) counters: CombCounters,
}

impl CombState {
    pub(crate) fn new(shape: TorusShape, upc: &Upc) -> Self {
        CombState {
            shape,
            stations: (0..shape.num_nodes()).map(|_| Mutex::new(Station::default())).collect(),
            pending: AtomicU64::new(0),
            next_batch: AtomicU64::new(0),
            pump_gate: Mutex::new(()),
            counters: CombCounters::new(upc),
        }
    }

    /// Outstanding member requests in the overlay.
    pub(crate) fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// Enter a fetch-add into the source node's station. Merges into a
    /// batch already waiting for the same (root, window, offset) when one
    /// exists — back-to-back hot-key requests from one node coalesce
    /// before ever crossing a link.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn submit(
        &self,
        src_node: u32,
        root: u32,
        win_key: u64,
        offset: usize,
        region: MemRegion,
        operand: u64,
        reply: Option<RmwReply>,
        done: Option<HwCounter>,
        credit: u64,
    ) {
        self.counters.requests.incr();
        self.pending.fetch_add(1, Ordering::AcqRel);
        let member = Member { operand, reply, done, credit };
        let mut st = self.stations[src_node as usize].lock();
        if let Some(b) = st
            .batches
            .iter_mut()
            .find(|b| !b.ghost && b.root == root && b.win_key == win_key && b.offset == offset)
        {
            b.total = b.total.wrapping_add(operand);
            b.members.push(member);
            self.counters.merged.incr();
            return;
        }
        let id = self.next_batch.fetch_add(1, Ordering::Relaxed);
        st.batches.push(Batch {
            id,
            root,
            win_key,
            offset,
            region,
            total: operand,
            members: vec![member],
            attempt: 0,
            hold: true,
            ghost: false,
        });
    }

    /// Move every travel-ready batch one hop toward its root, merging at
    /// intermediate stations and applying + decombining at the root.
    /// Global (all stations), single-flight via `try_lock`; returns events
    /// performed (hops + applies), 0 when another thread holds the pump or
    /// nothing is in flight.
    pub(crate) fn pump(&self, injector: Option<&FaultInjector>, locks: &RmwLocks) -> usize {
        if self.pending() == 0 {
            return 0;
        }
        let Some(_gate) = self.pump_gate.try_lock() else { return 0 };
        // Phase A: lift travel-ready batches out of their stations; held
        // batches become travel-ready for the next round. Two phases so a
        // batch moves at most one hop per pump regardless of node order.
        let mut moving: Vec<(u32, Batch)> = Vec::new();
        for (node, station) in self.stations.iter().enumerate() {
            let mut st = station.lock();
            let mut kept = Vec::with_capacity(st.batches.len());
            for mut b in st.batches.drain(..) {
                if b.hold {
                    b.hold = false;
                    kept.push(b);
                } else {
                    moving.push((node as u32, b));
                }
            }
            st.batches = kept;
        }
        let mut events = 0usize;
        for (at, mut batch) in moving {
            if at == batch.root {
                events += 1;
                if batch.ghost {
                    // A duplicate that chased the batch all the way home
                    // after the original applied; the root station's seen
                    // set absorbed the original id on acceptance, so this
                    // copy was already discarded there. Defensive only.
                    continue;
                }
                self.apply_at_root(batch, locks);
                continue;
            }
            let cur = self.shape.coords_of(at as usize);
            let root = self.shape.coords_of(batch.root as usize);
            let (dir, next_coords) =
                next_hop(self.shape, cur, root).expect("non-root batch has a next hop");
            let next = self.shape.node_index(next_coords) as u32;
            // Seeded link dice: combined packets are subject to the same
            // per-link fates as everything else crossing this hop. Ghosts
            // are the duplicate itself — they always "arrive".
            let mut spawn_ghost = false;
            if let (Some(inj), false) = (injector, batch.ghost) {
                match inj.decide(link_id(at, dir), batch.id, batch.attempt) {
                    Fate::Pass => {}
                    Fate::Delay(_) => {
                        // Held in flight: park at the current station for a
                        // round without burning a retransmission.
                        batch.hold = true;
                        self.stations[at as usize].lock().batches.push(batch);
                        continue;
                    }
                    Fate::Drop => {
                        // Lost outright: retransmit next pump.
                        batch.attempt += 1;
                        self.counters.retransmits.incr();
                        self.stations[at as usize].lock().batches.push(batch);
                        continue;
                    }
                    Fate::Corrupt => {
                        // The data frame made it but its CRC-failed ack did
                        // not: the sender will retransmit a copy the
                        // receiver must recognize and discard — the
                        // exactly-once case combining must get right.
                        spawn_ghost = true;
                    }
                }
            }
            events += 1;
            self.counters.packets_upstream.incr();
            if spawn_ghost {
                self.counters.retransmits.incr();
                self.stations[at as usize].lock().batches.push(Batch {
                    id: batch.id,
                    root: batch.root,
                    win_key: batch.win_key,
                    offset: batch.offset,
                    region: batch.region.clone(),
                    total: batch.total,
                    members: Vec::new(),
                    attempt: batch.attempt + 1,
                    hold: false,
                    ghost: true,
                });
            }
            let mut st = self.stations[next as usize].lock();
            if st.seen.contains(&batch.id) {
                // Duplicate carrier of a batch this station already
                // accepted: discard. Its members ride in the accepted
                // copy, so nothing is lost and nothing double-applies.
                self.counters.dupes_dropped.incr();
                continue;
            }
            st.seen.insert(batch.id);
            if batch.ghost {
                continue;
            }
            if let Some(b) = st.batches.iter_mut().find(|b| {
                !b.ghost
                    && b.root == batch.root
                    && b.win_key == batch.win_key
                    && b.offset == batch.offset
            }) {
                // Hop-level combining: two upstream packets for the same
                // hot word met at this station and continue as one.
                b.total = b.total.wrapping_add(batch.total);
                self.counters.merged.add(batch.members.len() as u64);
                b.members.append(&mut batch.members);
                continue;
            }
            batch.attempt = 0;
            batch.hold = true;
            st.batches.push(batch);
        }
        events
    }

    /// The root memory module: one atomic apply for the whole batch, then
    /// the decombine — member *i*'s prior is the batch prior plus the
    /// operands of the members ahead of it (prefix sum), which is exactly
    /// the serial execution in member order.
    fn apply_at_root(&self, batch: Batch, locks: &RmwLocks) {
        let prior = locks.apply(
            batch.win_key,
            &batch.region,
            batch.offset,
            RmwOp::FetchAdd,
            batch.total,
            0,
        );
        self.counters.root_applies.incr();
        self.counters.packets_downstream.incr();
        let mut running = prior;
        let n = batch.members.len() as u64;
        for m in batch.members {
            if let Some(r) = &m.reply {
                r.region.write(r.offset, &running.to_le_bytes());
            }
            running = running.wrapping_add(m.operand);
            if let Some(c) = &m.done {
                c.delivered(m.credit);
            }
            self.counters.replies.incr();
        }
        self.pending.fetch_sub(n, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::Coords;

    fn shape() -> TorusShape {
        TorusShape::new([4, 2, 2, 1, 1])
    }

    #[test]
    fn rmw_locks_apply_all_ops() {
        let locks = RmwLocks::new();
        let region = MemRegion::zeroed(8);
        assert_eq!(locks.apply(1, &region, 0, RmwOp::FetchAdd, 5, 0), 0);
        assert_eq!(locks.apply(1, &region, 0, RmwOp::FetchAdd, 3, 0), 5);
        assert_eq!(locks.apply(1, &region, 0, RmwOp::Max, 100, 0), 8);
        assert_eq!(locks.apply(1, &region, 0, RmwOp::Min, 7, 0), 100);
        // CAS success then failure.
        assert_eq!(locks.apply(1, &region, 0, RmwOp::CompareSwap, 42, 7), 7);
        assert_eq!(locks.apply(1, &region, 0, RmwOp::CompareSwap, 9, 7), 42);
        let mut buf = [0u8; 8];
        region.read(0, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 42);
    }

    #[test]
    fn combined_fetch_adds_apply_once_and_decombine_priors() {
        let upc = Upc::new();
        let comb = CombState::new(shape(), &upc);
        let locks = RmwLocks::new();
        let region = MemRegion::zeroed(8);
        let n_nodes = shape().num_nodes() as u32;
        // Every non-root node submits two fetch-adds of 1 to node 0.
        let mut replies = Vec::new();
        for node in 1..n_nodes {
            for _ in 0..2 {
                let slot = MemRegion::zeroed(8);
                comb.submit(
                    node,
                    0,
                    7,
                    0,
                    region.clone(),
                    1,
                    Some(RmwReply { region: slot.clone(), offset: 0 }),
                    None,
                    1,
                );
                replies.push(slot);
            }
        }
        let total = replies.len() as u64;
        let mut guard = 0;
        while comb.pending() > 0 {
            comb.pump(None, &locks);
            guard += 1;
            assert!(guard < 10_000, "combining overlay failed to drain");
        }
        let mut buf = [0u8; 8];
        region.read(0, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), total, "every member applied exactly once");
        // Linearizability: the returned priors are a permutation of 0..total.
        let mut priors: Vec<u64> = replies
            .iter()
            .map(|r| {
                let mut b = [0u8; 8];
                r.read(0, &mut b);
                u64::from_le_bytes(b)
            })
            .collect();
        priors.sort_unstable();
        assert_eq!(priors, (0..total).collect::<Vec<_>>());
        // Merging actually happened: fewer root applies than requests.
        #[cfg(feature = "telemetry")]
        {
            assert!(comb.counters.root_applies.value() < total);
            assert_eq!(comb.counters.requests.value(), total);
        }
    }

    #[test]
    fn next_hop_walks_to_root() {
        let s = shape();
        let mut at = Coords([3, 1, 1, 0, 0]);
        let root = Coords([0; 5]);
        let mut hops = 0;
        while let Some((_, next)) = next_hop(s, at, root) {
            at = next;
            hops += 1;
            assert!(hops <= 10);
        }
        assert_eq!(at, root);
    }
}
