//! The fabric/transport seam: who moves packets into reception FIFOs.
//!
//! The default fabric delivers memory-FIFO packets *synchronously* — the
//! sending thread deposits straight into the destination's [`RecFifo`] —
//! which is the right model for wall-clock benchmarks (software cost is
//! what the paper measures; the lossless torus adds nothing observable).
//! Co-simulation wants the opposite: packet delivery scheduled as
//! discrete-event-simulation events on a *virtual* clock, with `bgq-netsim`
//! supplying per-hop link timing, so that a million virtual endpoints can
//! share a few OS threads without wall-clock delivery order leaking into
//! the experiment.
//!
//! [`Transport`] is that seam. A fabric built without one
//! (`transport: None`) keeps today's synchronous path bit for bit — the
//! hot-path cost of the seam is a single branch on an `Option` that is
//! `None` in every benchmark gate. A fabric built with
//! [`crate::fabric::MuFabricBuilder::transport`] hands every reception-FIFO
//! deposit (fair-weather short envelopes, lossless fragment loops, and
//! reliable-channel frame arrivals alike) to the transport, which may
//! deposit immediately, or buffer and schedule — whatever its clock says.
//!
//! Direct puts and remote-get bounces stay synchronous: they model DMA into
//! registered memory, observable only through reception counters, and the
//! co-simulation's virtual timing applies to the message path.

use std::sync::Arc;

use crate::fifo::{RecFifo, RecFifoId};
use crate::packet::MuPacket;

/// A packet transport: receives every reception-FIFO deposit the fabric
/// would have performed synchronously.
///
/// Implementations must be thread-safe — sends come from every advancing
/// context. The `make` closure builds the `i`-th packet of one fragmented
/// message (packets are intentionally not `Clone`; building on demand keeps
/// the zero-copy Region windows refcounted, not duplicated). A transport
/// that buffers packets MUST eventually deposit every one of them into
/// `fifo` (via [`RecFifo::deliver`] / [`RecFifo::deliver_batch`]) exactly
/// once and in `i` order — the in-order contract MPI matching relies on.
pub trait Transport: Send + Sync {
    /// Accept one fragmented message: `npackets` packets from `src_node`
    /// bound for `rec_fifo` (= `fifo`) on `dst_node`.
    fn deliver(
        &self,
        src_node: u32,
        dst_node: u32,
        rec_fifo: RecFifoId,
        fifo: &Arc<RecFifo>,
        npackets: u64,
        make: &mut dyn FnMut(u64) -> MuPacket,
    );

    /// Deposit whatever is due at the transport's current (virtual) time.
    /// Called from the engine pump loops ([`crate::engine`]) and from
    /// [`crate::fabric::MuFabric::pump_transport`]; returns deposits
    /// performed. The synchronous default has nothing pending.
    fn pump(&self) -> usize {
        0
    }

    /// Account one link-layer control frame (a selective-repeat ack/SACK of
    /// `bytes` on the wire) crossing from `src_node` to `dst_node`. Control
    /// frames carry no packets — nothing is deposited — but a scheduling
    /// transport should charge their wire time on its clock so
    /// co-simulated chaos runs see the protocol's reverse-path cost.
    /// Default: free, matching the synchronous fabric's in-process acks.
    fn deliver_control(&self, src_node: u32, dst_node: u32, bytes: u64) {
        let _ = (src_node, dst_node, bytes);
    }
}
