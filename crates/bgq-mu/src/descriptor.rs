//! Injection descriptors — the 64-byte structures software writes to start
//! a transfer.

use bgq_hw::Counter;
use bgq_hw::MemRegion;
use bgq_torus::Routing;
use bytes::Bytes;

use crate::fifo::RecFifoId;

/// Where a descriptor's payload bytes come from.
#[derive(Debug, Clone)]
pub enum PayloadSource {
    /// Payload already copied into the descriptor — the
    /// `PAMI_Send_immediate` path ("copies application payload into an
    /// internal buffer"), bounded by one packet.
    Immediate(Bytes),
    /// Payload read out of a registered region, like the real MU DMA-ing
    /// from physical memory.
    Region {
        /// Source region.
        region: MemRegion,
        /// Byte offset of the payload within `region`.
        offset: usize,
        /// Payload length.
        len: usize,
    },
}

impl PayloadSource {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            PayloadSource::Immediate(b) => b.len(),
            PayloadSource::Region { len, .. } => *len,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the payload as contiguous bytes (one copy for the region
    /// path — the DMA read; zero for immediate).
    pub fn to_bytes(&self) -> Bytes {
        match self {
            PayloadSource::Immediate(b) => b.clone(),
            PayloadSource::Region { region, offset, len } => {
                let mut buf = vec![0u8; *len];
                region.read(*offset, &mut buf);
                Bytes::from(buf)
            }
        }
    }
}

/// Atomic read-modify-write operation carried by an [`XferKind::Rmw`]
/// descriptor. All operations act on a 64-bit little-endian word in the
/// target window and return the prior value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `*target += operand`; returns the pre-add value. The only op the
    /// fabric combines at intermediate hops (addition is associative and
    /// priors decombine by prefix sum).
    FetchAdd,
    /// `if *target == compare { *target = operand }`; returns the prior
    /// value (success iff prior == compare).
    CompareSwap,
    /// `*target = min(*target, operand)`; returns the prior value.
    Min,
    /// `*target = max(*target, operand)`; returns the prior value.
    Max,
}

/// Where the prior value of an rmw is written back (8 bytes, little
/// endian) — the caller-supplied result slot.
#[derive(Debug, Clone)]
pub struct RmwReply {
    /// Local region the prior value lands in.
    pub region: MemRegion,
    /// Byte offset of the 8-byte slot within `region`.
    pub offset: usize,
}

/// The transfer type a descriptor requests.
#[derive(Debug, Clone)]
pub enum XferKind {
    /// Memory-FIFO message: payload lands as packets in the destination's
    /// reception FIFO for software to dispatch.
    MemoryFifo {
        /// Reception FIFO on the destination node.
        rec_fifo: RecFifoId,
        /// Active-message dispatch identifier.
        dispatch: u16,
        /// Protocol metadata delivered with the message.
        metadata: Bytes,
        /// Short-tier flag: the message is one inline packet envelope; the
        /// receive side dispatches straight from the packet. Survives the
        /// reliable (fault-plan) path so chaos runs exercise the same tier.
        short: bool,
    },
    /// RDMA write: payload lands directly in destination memory; the
    /// destination reception counter (if any) is decremented by the byte
    /// count. No reception-FIFO traffic, no destination CPU involvement.
    DirectPut {
        /// Destination region (a handle the initiator obtained through the
        /// protocol's memory-region exchange).
        dst_region: MemRegion,
        /// Byte offset within the destination region.
        dst_offset: usize,
        /// Reception counter armed by the destination.
        rec_counter: Option<Counter>,
    },
    /// RDMA read: carries a payload descriptor that the destination MU
    /// injects into its own system FIFO — usually a [`XferKind::DirectPut`]
    /// aimed back at the requester (the rendezvous "remote get").
    RemoteGet {
        /// Descriptor for the destination to execute.
        payload: Box<Descriptor>,
    },
    /// Remote atomic: executes `op` atomically against an 8-byte word in
    /// a registered window on the target node and writes the prior value
    /// to the caller's reply slot. Fetch-adds may be coalesced at
    /// intermediate torus hops when the fabric's combining overlay is
    /// enabled — the (window key, offset) pair is the combining identity.
    Rmw {
        /// Key of the target window (combining identity; the resolved
        /// region rides in `dst_region`).
        win_key: u64,
        /// Target region backing the window.
        dst_region: MemRegion,
        /// Byte offset of the 8-byte word within the region.
        dst_offset: usize,
        /// The atomic operation.
        op: RmwOp,
        /// Operand (addend / swap value / min-max candidate).
        operand: u64,
        /// Comparand for [`RmwOp::CompareSwap`]; ignored otherwise.
        compare: u64,
        /// Optional slot the prior value is written to.
        reply: Option<RmwReply>,
    },
}

/// A complete injection descriptor.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// Destination node index within the partition.
    pub dst_node: u32,
    /// Routing mode: deterministic (dimension-ordered, delivery in
    /// injection order — required for memory-FIFO traffic that feeds MPI
    /// matching) or dynamic (any minimal path, used by RDMA payload for
    /// bandwidth; completion observed only through counters).
    pub routing: Routing,
    /// Destination context offset (reception-FIFO and addressing hint).
    pub dst_context: u16,
    /// Source context offset stamped into packets.
    pub src_context: u16,
    /// Payload to move.
    pub payload: PayloadSource,
    /// Transfer type.
    pub kind: XferKind,
    /// Injection counter decremented (by payload length) once this
    /// descriptor has been fully executed — the sender-side completion
    /// signal. Zero-length transfers decrement by [`Descriptor::ZERO_LEN_CREDIT`].
    pub inj_counter: Option<Counter>,
}

impl Descriptor {
    /// Completion credit charged for zero-byte transfers so counters still
    /// move (the hardware equivalent counts descriptors, not bytes, for
    /// empty messages).
    pub const ZERO_LEN_CREDIT: u64 = 1;

    /// The routing mode PAMI uses for this transfer kind: deterministic
    /// for memory-FIFO and remote-get control traffic (ordering), dynamic
    /// for direct-put payload (bandwidth).
    pub fn default_routing(kind: &XferKind) -> Routing {
        match kind {
            XferKind::MemoryFifo { .. } | XferKind::RemoteGet { .. } | XferKind::Rmw { .. } => {
                Routing::Deterministic
            }
            XferKind::DirectPut { .. } => Routing::Dynamic,
        }
    }

    /// Completion credit for this descriptor's payload.
    pub fn completion_credit(&self) -> u64 {
        let len = self.payload.len() as u64;
        if len == 0 {
            Self::ZERO_LEN_CREDIT
        } else {
            len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_payload_round_trips() {
        let p = PayloadSource::Immediate(Bytes::from_static(b"hello"));
        assert_eq!(p.len(), 5);
        assert_eq!(&p.to_bytes()[..], b"hello");
    }

    #[test]
    fn region_payload_reads_registered_memory() {
        let region = MemRegion::from_vec((0..64).collect());
        let p = PayloadSource::Region { region, offset: 8, len: 4 };
        assert_eq!(&p.to_bytes()[..], &[8, 9, 10, 11]);
    }

    #[test]
    fn zero_len_descriptor_still_credits_completion() {
        let kind = XferKind::MemoryFifo {
            rec_fifo: RecFifoId(0),
            dispatch: 0,
            metadata: Bytes::new(),
            short: false,
        };
        let d = Descriptor {
            dst_node: 0,
            dst_context: 0,
            src_context: 0,
            routing: Descriptor::default_routing(&kind),
            payload: PayloadSource::Immediate(Bytes::new()),
            kind,
            inj_counter: None,
        };
        assert_eq!(d.completion_credit(), Descriptor::ZERO_LEN_CREDIT);
        assert_eq!(d.routing, Routing::Deterministic);
    }

    #[test]
    fn rdma_payload_routes_dynamically() {
        let put = XferKind::DirectPut {
            dst_region: MemRegion::zeroed(8),
            dst_offset: 0,
            rec_counter: None,
        };
        assert_eq!(Descriptor::default_routing(&put), Routing::Dynamic);
    }
}
