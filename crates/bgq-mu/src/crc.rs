//! CRC-32C (Castagnoli) — the per-packet integrity check of the link layer.
//!
//! BG/Q's network hardware protects every torus packet with link-level CRCs
//! and retransmits on mismatch. The simulation stamps a CRC-32C over each
//! packet's header fields, metadata, and staged payload bytes; the receive
//! side (and tests) can re-verify with [`crate::packet::MuPacket::verify_crc`].
//! Corruption *events* are modeled by the fault injector rather than by
//! flipping bits, so the CRC's job here is (a) to make the fault-free cost
//! of integrity checking measurable, and (b) to catch simulation bugs that
//! mangle packets in flight.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[j][b]` advances byte `b` through `j` additional zero
/// bytes, letting [`Crc32c::update`] fold eight input bytes per iteration
/// with eight independent loads instead of an eight-deep serial chain.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        j += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Incremental CRC-32C over multiple slices.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Start a fresh checksum.
    #[inline]
    pub fn new() -> Self {
        Crc32c(0xFFFF_FFFF)
    }

    /// Fold `data` into the checksum (slicing-by-8: eight bytes per
    /// iteration, one table load each, no intra-iteration dependency
    /// chain).
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        let mut chunks = data.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            c = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Fold a little-endian `u64` into the checksum.
    #[inline]
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finish and return the CRC value.
    #[inline]
    pub fn finish(self) -> u32 {
        !self.0
    }
}

/// One-shot CRC-32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 7143 appendix: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut inc = Crc32c::new();
        inc.update(&data[..100]);
        inc.update(&data[100..]);
        assert_eq!(inc.finish(), crc32c(&data));
    }

    #[test]
    fn sensitive_to_any_bit() {
        let base = crc32c(b"payload");
        assert_ne!(base, crc32c(b"paqload"));
        assert_ne!(base, crc32c(b"payloae"));
    }
}
