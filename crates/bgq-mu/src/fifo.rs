//! Injection and reception FIFOs, with BG/Q's per-node resource limits.
//!
//! "BG/Q architecture provides an extensive array of 544 MU injection FIFOs
//! (32 per core) and 272 MU reception FIFOs (16 per core)" — enough that
//! PAMI can give every context *exclusive* FIFOs, "thereby eliminating any
//! need for locking and critical section protection" (paper section III.E).
//! [`FifoAllocator`] hands out those exclusive partitions and enforces the
//! limits; the FIFOs themselves are the lockless [`WorkQueue`] from
//! `bgq-hw` (injection FIFOs see one producer — the owning context — and
//! one consumer — the pumping engine; reception FIFOs see many remote
//! producers and the one owning context as consumer).


use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_hw::{WakeupRegion, WorkQueue};
use parking_lot::Mutex;

use crate::descriptor::Descriptor;
use crate::packet::MuPacket;

/// MU injection FIFOs per node (17 cores × 32).
pub const INJ_FIFOS_PER_NODE: usize = 544;

/// MU reception FIFOs per node (17 cores × 16).
pub const REC_FIFOS_PER_NODE: usize = 272;

/// Bits of a message id that hold the per-lane sequence number. The id
/// layout is `node << 40 | lane << 30 | seq`, where `lane` identifies the
/// message-id source (an injection FIFO, the system FIFO, or the node
/// fallback) — so every lane mints ids from its *own* atomic and two lanes
/// can never collide, which is what lets contexts send without touching a
/// shared per-node sequence counter.
pub const LANE_SHIFT: u32 = 30;

/// Mask for the per-lane sequence bits (ids recycle after 2^30 messages per
/// lane, by which point no packet of the old message can still be in
/// flight).
pub const LANE_SEQ_MASK: u64 = (1u64 << LANE_SHIFT) - 1;

/// Reserved lane id for the per-node *system* injection FIFO.
pub const SYS_LANE: u16 = 1022;

/// Reserved lane id for the per-node fallback (descriptors executed without
/// going through an injection FIFO — the `execute_now` path).
pub const NODE_LANE: u16 = 1023;

/// A message-id mint: composes `node | lane` high bits (fixed at creation)
/// with a private sequence counter. Each injection FIFO owns one, so the
/// send hot path touches only state owned by the injecting context — no
/// cross-context cache-line bouncing on a shared per-node counter.
pub struct MsgIdLane {
    /// `node << 40 | lane << 30`, precomputed.
    base: u64,
    /// Next sequence number. Public so tests can force near-wrap values.
    pub msg_seq: AtomicU64,
}

impl MsgIdLane {
    /// A lane for `node`. `lane` must fit in 10 bits (hardware FIFO ids are
    /// 0..544; 1022/1023 are the reserved software lanes).
    pub fn new(node: u32, lane: u16) -> Self {
        debug_assert!(lane < 1024, "lane must fit in 10 bits");
        MsgIdLane {
            base: ((node as u64) << 40) | ((lane as u64) << LANE_SHIFT),
            msg_seq: AtomicU64::new(0),
        }
    }

    /// Mint the next message id on this lane.
    #[inline]
    pub fn next(&self) -> u64 {
        self.base | (self.msg_seq.fetch_add(1, Ordering::Relaxed) & LANE_SEQ_MASK)
    }
}

/// Identifier of an injection FIFO within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InjFifoId(pub u16);

/// Identifier of a reception FIFO within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecFifoId(pub u16);

/// An injection FIFO: descriptors queued by the owning context, drained by
/// an engine (inline or threaded).
///
/// Beyond the descriptor queue, the FIFO owns every sequence counter the
/// send fast path needs — its message-id lane and its fault-free link
/// sequence — so draining it touches no per-node shared state: two contexts
/// pumping their own FIFOs share zero cache lines here.
pub struct InjFifo {
    /// Queued descriptors.
    pub queue: WorkQueue<Descriptor>,
    /// Message-id mint for messages sent through this FIFO.
    pub(crate) lane: MsgIdLane,
    /// Link sequence source for the fault-free fast path (reliable channels
    /// stamp their own under a fault plan, preserving per-channel
    /// continuity).
    pub(crate) link_seq: AtomicU64,
    /// Descriptors popped from `queue` but not yet fully delivered by the
    /// pumping engine. The short-tier bypass consults this together with
    /// queue emptiness ([`InjFifo::is_quiescent`]) before injecting a
    /// message around the FIFO, so bypassing never reorders against a
    /// descriptor the engine is mid-delivery on.
    pub(crate) inflight: AtomicU64,
}

impl InjFifo {
    pub(crate) fn new(capacity: usize, node: u32, lane: u16) -> Self {
        InjFifo {
            queue: WorkQueue::with_capacity(capacity),
            lane: MsgIdLane::new(node, lane),
            link_seq: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        }
    }

    /// `true` when nothing is queued in this FIFO *and* no engine is
    /// mid-delivery on a descriptor popped from it — the condition under
    /// which a single-packet send may bypass the FIFO without overtaking
    /// earlier traffic to the same destination.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.inflight.load(Ordering::Acquire) == 0
    }
}

/// A reception FIFO plus its optional wakeup region (commthreads park on it
/// while the FIFO is empty).
pub struct RecFifo {
    /// Delivered packets.
    pub queue: WorkQueue<MuPacket>,
    /// Set at most once, when the owning context attaches itself; read
    /// lock-free on every delivery.
    wakeup: OnceLock<WakeupRegion>,
}

impl RecFifo {
    /// A standalone FIFO of the given capacity. Public so out-of-crate
    /// [`crate::transport::Transport`] implementations can be exercised
    /// against a bare FIFO without building a whole fabric.
    pub fn new(capacity: usize) -> Self {
        RecFifo {
            queue: WorkQueue::with_capacity(capacity),
            wakeup: OnceLock::new(),
        }
    }

    /// Attach a wakeup region; subsequent deliveries touch it. A FIFO is
    /// owned by exactly one context, so the region is set at most once —
    /// later calls are ignored, keeping the delivery-side read lock-free.
    pub fn set_wakeup(&self, region: WakeupRegion) {
        let _ = self.wakeup.set(region);
    }

    /// Deliver a packet (fabric side): enqueue and wake any watcher. The
    /// touch is skipped — one atomic load — while no waiter is subscribed,
    /// so a polling-mode receiver never pays the epoch RMW per packet.
    pub fn deliver(&self, packet: MuPacket) {
        self.queue.push(packet);
        if let Some(w) = self.wakeup.get() {
            if w.has_watchers() {
                w.touch();
            }
        }
    }

    /// Deliver `n` packets produced by `make` in one ring claim
    /// ([`WorkQueue::push_batch_with`]) with a single wakeup touch — the
    /// whole-message delivery path: an N-packet message costs one atomic
    /// claim and one wakeup, not N of each. Public so out-of-crate
    /// [`crate::transport::Transport`] implementations can deposit buffered
    /// messages with the same single-claim cost.
    pub fn deliver_batch<F>(&self, n: u64, make: F)
    where
        F: FnMut(u64) -> MuPacket,
    {
        self.queue.push_batch_with(n, make);
        if let Some(w) = self.wakeup.get() {
            if w.has_watchers() {
                w.touch();
            }
        }
    }

    /// Pull the next packet (owning context only).
    pub fn poll(&self) -> Option<MuPacket> {
        self.queue.pop()
    }

    /// Pull up to `max` packets into `out` in one consumer transaction
    /// ([`WorkQueue::pop_batch`]): all ready packets are claimed with a
    /// single head publish and a single bound advance, so the drain side
    /// touches the producer-shared cachelines once per batch instead of
    /// once per packet — the receive mirror of [`RecFifo::deliver_batch`].
    pub fn poll_batch(&self, max: usize, out: &mut Vec<MuPacket>) -> usize {
        self.queue.pop_batch(max, out)
    }

    /// Whether the FIFO currently holds no packets.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Fixed-size, lock-free table of a node's FIFOs.
///
/// The MU's FIFO count is a hardware constant (544 injection / 272
/// reception per node), so the table is a fixed array of slots published
/// with [`OnceLock`]: allocation writes a slot exactly once (slot indices
/// come from the mutex-guarded [`FifoAllocator`], which is not on the hot
/// path), after which every lookup — packet delivery, `poll_rec`, handle
/// caching, engine pumps — is a plain atomic load with no lock and no
/// refcount traffic.
pub struct FifoTable<T> {
    slots: Box<[OnceLock<Arc<T>>]>,
    /// High-water mark of published slots; engines iterate `0..allocated()`.
    allocated: AtomicU16,
}

impl<T> FifoTable<T> {
    /// A table with `capacity` (hardware-limit) slots, all unallocated.
    pub fn new(capacity: usize) -> Self {
        FifoTable {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            allocated: AtomicU16::new(0),
        }
    }

    /// Shared handle to an allocated FIFO.
    ///
    /// # Panics
    /// If `id` was never allocated (software addressing a FIFO it does not
    /// own — the hardware would raise a fatal interrupt).
    #[inline]
    pub fn get(&self, id: u16) -> &Arc<T> {
        self.slots[id as usize]
            .get()
            .expect("FIFO id addressed before allocation")
    }

    /// Like [`FifoTable::get`] but `None` for unallocated ids.
    #[inline]
    pub fn try_get(&self, id: u16) -> Option<&Arc<T>> {
        self.slots.get(id as usize).and_then(|s| s.get())
    }

    /// Publish a freshly allocated FIFO at `id`. Caller must own `id` via
    /// the allocator; each slot is written exactly once.
    pub(crate) fn publish(&self, id: u16, fifo: Arc<T>) {
        if self.slots[id as usize].set(fifo).is_err() {
            panic!("FIFO slot {id} allocated twice");
        }
        // Release-publish the high-water mark after the slot itself so a
        // reader that observes `allocated > id` also observes the slot.
        self.allocated.fetch_max(id + 1, Ordering::AcqRel);
    }

    /// Number of slots published so far (a high-water mark; slots below it
    /// are all allocated because the allocator hands out dense ranges).
    #[inline]
    pub fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Acquire) as usize
    }

    /// Hardware slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Tracks per-node FIFO allocation against the hardware limits.
pub struct FifoAllocator {
    inj_next: Mutex<u16>,
    rec_next: Mutex<u16>,
    inj_limit: u16,
    rec_limit: u16,
}

impl Default for FifoAllocator {
    fn default() -> Self {
        Self::new(INJ_FIFOS_PER_NODE as u16, REC_FIFOS_PER_NODE as u16)
    }
}

impl FifoAllocator {
    /// An allocator with explicit limits (tests shrink them).
    pub fn new(inj_limit: u16, rec_limit: u16) -> Self {
        FifoAllocator {
            inj_next: Mutex::new(0),
            rec_next: Mutex::new(0),
            inj_limit,
            rec_limit,
        }
    }

    /// Claim `count` consecutive injection FIFOs; `None` once the node's
    /// 544 are exhausted.
    pub fn alloc_inj(&self, count: u16) -> Option<std::ops::Range<u16>> {
        let mut next = self.inj_next.lock();
        let end = next.checked_add(count)?;
        if end > self.inj_limit {
            return None;
        }
        let start = *next;
        *next = end;
        Some(start..end)
    }

    /// Claim `count` consecutive reception FIFOs; `None` once the node's
    /// 272 are exhausted.
    pub fn alloc_rec(&self, count: u16) -> Option<std::ops::Range<u16>> {
        let mut next = self.rec_next.lock();
        let end = next.checked_add(count)?;
        if end > self.rec_limit {
            return None;
        }
        let start = *next;
        *next = end;
        Some(start..end)
    }

    /// Injection FIFOs still unclaimed.
    pub fn inj_remaining(&self) -> u16 {
        self.inj_limit - *self.inj_next.lock()
    }

    /// Reception FIFOs still unclaimed.
    pub fn rec_remaining(&self) -> u16 {
        self.rec_limit - *self.rec_next.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn allocator_enforces_limits() {
        let a = FifoAllocator::new(8, 4);
        assert_eq!(a.alloc_inj(5), Some(0..5));
        assert_eq!(a.alloc_inj(3), Some(5..8));
        assert_eq!(a.alloc_inj(1), None);
        assert_eq!(a.alloc_rec(4), Some(0..4));
        assert_eq!(a.alloc_rec(1), None);
        assert_eq!(a.inj_remaining(), 0);
        assert_eq!(a.rec_remaining(), 0);
    }

    #[test]
    fn msg_id_lanes_never_collide_across_lanes() {
        // Two lanes on the same node, same sequence numbers: ids differ.
        let a = MsgIdLane::new(3, 0);
        let b = MsgIdLane::new(3, 1);
        let ids: Vec<u64> = (0..4).map(|_| a.next()).chain((0..4).map(|_| b.next())).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "no collisions across lanes");
        for id in &ids {
            assert_eq!(id >> 40, 3, "node bits intact");
        }
        // Sequence wrap stays inside the lane bits.
        let c = MsgIdLane::new(5, NODE_LANE);
        c.msg_seq.store(LANE_SEQ_MASK, Ordering::Relaxed);
        let x = c.next();
        let y = c.next();
        assert_eq!(x >> 40, 5);
        assert_eq!(y >> 40, 5, "wrap must not leak into node bits");
        assert_ne!(x, y);
        assert_eq!((x >> LANE_SHIFT) & 0x3ff, NODE_LANE as u64);
    }

    #[test]
    fn default_allocator_matches_hardware_counts() {
        let a = FifoAllocator::default();
        assert_eq!(a.inj_remaining(), 544);
        assert_eq!(a.rec_remaining(), 272);
    }

    #[test]
    fn rec_fifo_delivery_touches_wakeup() {
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        // A subscribed waiter is what makes delivery touch the region —
        // with nobody watching, delivery skips the wakeup entirely.
        let mut waiter = bgq_hw::Waiter::new();
        waiter.subscribe(&region);
        let fifo = RecFifo::new(16);
        fifo.set_wakeup(region.clone());
        assert!(fifo.is_empty());
        fifo.deliver(MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 1,
            metadata: Bytes::new(),
            msg_id: 1,
            msg_len: 0,
            offset: 0,
            link_seq: 0,
            crc: 0,
            short: false,
            payload: crate::packet::PacketPayload::Inline(Bytes::new()),
        });
        assert_eq!(region.epoch(), 1);
        assert!(fifo.poll().is_some());
        assert!(fifo.poll().is_none());
    }

    #[test]
    fn unwatched_delivery_skips_the_wakeup() {
        // Polling-mode receivers (no parked waiter) must not pay the epoch
        // RMW per packet: delivery without a subscriber leaves the region
        // untouched.
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        let fifo = RecFifo::new(16);
        fifo.set_wakeup(region.clone());
        fifo.deliver_batch(2, |i| MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 1,
            metadata: Bytes::new(),
            msg_id: 4,
            msg_len: 8,
            offset: i as u32 * 8,
            link_seq: i,
            crc: 0,
            short: false,
            payload: crate::packet::PacketPayload::Inline(Bytes::new()),
        });
        assert_eq!(region.epoch(), 0, "no watcher, no touch");
        assert!(fifo.poll().is_some());
    }

    #[test]
    fn batch_delivery_touches_wakeup_once() {
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        let mut waiter = bgq_hw::Waiter::new();
        waiter.subscribe(&region);
        let fifo = RecFifo::new(16);
        fifo.set_wakeup(region.clone());
        fifo.deliver_batch(3, |i| MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 1,
            metadata: Bytes::new(),
            msg_id: 9,
            msg_len: 1300,
            offset: i as u32 * 512,
            link_seq: i,
            crc: 0,
            short: false,
            payload: crate::packet::PacketPayload::Inline(Bytes::new()),
        });
        assert_eq!(region.epoch(), 1, "one wakeup for the whole message");
        for _ in 0..3 {
            assert!(fifo.poll().is_some());
        }
        assert!(fifo.poll().is_none());
    }

    #[test]
    fn fifo_table_publishes_lock_free() {
        let t: FifoTable<u32> = FifoTable::new(8);
        assert_eq!(t.allocated(), 0);
        assert_eq!(t.capacity(), 8);
        assert!(t.try_get(0).is_none());
        t.publish(0, Arc::new(10));
        t.publish(1, Arc::new(11));
        assert_eq!(t.allocated(), 2);
        assert_eq!(**t.get(1), 11);
        assert!(t.try_get(2).is_none());
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn fifo_table_rejects_double_publish() {
        let t: FifoTable<u32> = FifoTable::new(2);
        t.publish(0, Arc::new(1));
        t.publish(0, Arc::new(2));
    }

    #[test]
    #[should_panic(expected = "before allocation")]
    fn fifo_table_rejects_unallocated_lookup() {
        let t: FifoTable<u32> = FifoTable::new(2);
        let _ = t.get(1);
    }
}
