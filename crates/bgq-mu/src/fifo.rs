//! Injection and reception FIFOs, with BG/Q's per-node resource limits.
//!
//! "BG/Q architecture provides an extensive array of 544 MU injection FIFOs
//! (32 per core) and 272 MU reception FIFOs (16 per core)" — enough that
//! PAMI can give every context *exclusive* FIFOs, "thereby eliminating any
//! need for locking and critical section protection" (paper section III.E).
//! [`FifoAllocator`] hands out those exclusive partitions and enforces the
//! limits; the FIFOs themselves are the lockless [`WorkQueue`] from
//! `bgq-hw` (injection FIFOs see one producer — the owning context — and
//! one consumer — the pumping engine; reception FIFOs see many remote
//! producers and the one owning context as consumer).


use bgq_hw::{WakeupRegion, WorkQueue};
use parking_lot::Mutex;

use crate::descriptor::Descriptor;
use crate::packet::MuPacket;

/// MU injection FIFOs per node (17 cores × 32).
pub const INJ_FIFOS_PER_NODE: usize = 544;

/// MU reception FIFOs per node (17 cores × 16).
pub const REC_FIFOS_PER_NODE: usize = 272;

/// Identifier of an injection FIFO within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InjFifoId(pub u16);

/// Identifier of a reception FIFO within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecFifoId(pub u16);

/// An injection FIFO: descriptors queued by the owning context, drained by
/// an engine (inline or threaded).
pub struct InjFifo {
    /// Queued descriptors.
    pub queue: WorkQueue<Descriptor>,
}

impl InjFifo {
    pub(crate) fn new(capacity: usize) -> Self {
        InjFifo { queue: WorkQueue::with_capacity(capacity) }
    }
}

/// A reception FIFO plus its optional wakeup region (commthreads park on it
/// while the FIFO is empty).
pub struct RecFifo {
    /// Delivered packets.
    pub queue: WorkQueue<MuPacket>,
    wakeup: Mutex<Option<WakeupRegion>>,
}

impl RecFifo {
    pub(crate) fn new(capacity: usize) -> Self {
        RecFifo {
            queue: WorkQueue::with_capacity(capacity),
            wakeup: Mutex::new(None),
        }
    }

    /// Attach a wakeup region; subsequent deliveries touch it.
    pub fn set_wakeup(&self, region: WakeupRegion) {
        *self.wakeup.lock() = Some(region);
    }

    /// Deliver a packet (fabric side): enqueue and wake any watcher.
    pub(crate) fn deliver(&self, packet: MuPacket) {
        self.queue.push(packet);
        if let Some(w) = self.wakeup.lock().as_ref() {
            w.touch();
        }
    }

    /// Pull the next packet (owning context only).
    pub fn poll(&self) -> Option<MuPacket> {
        self.queue.pop()
    }

    /// Whether the FIFO currently holds no packets.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Tracks per-node FIFO allocation against the hardware limits.
pub struct FifoAllocator {
    inj_next: Mutex<u16>,
    rec_next: Mutex<u16>,
    inj_limit: u16,
    rec_limit: u16,
}

impl Default for FifoAllocator {
    fn default() -> Self {
        Self::new(INJ_FIFOS_PER_NODE as u16, REC_FIFOS_PER_NODE as u16)
    }
}

impl FifoAllocator {
    /// An allocator with explicit limits (tests shrink them).
    pub fn new(inj_limit: u16, rec_limit: u16) -> Self {
        FifoAllocator {
            inj_next: Mutex::new(0),
            rec_next: Mutex::new(0),
            inj_limit,
            rec_limit,
        }
    }

    /// Claim `count` consecutive injection FIFOs; `None` once the node's
    /// 544 are exhausted.
    pub fn alloc_inj(&self, count: u16) -> Option<std::ops::Range<u16>> {
        let mut next = self.inj_next.lock();
        let end = next.checked_add(count)?;
        if end > self.inj_limit {
            return None;
        }
        let start = *next;
        *next = end;
        Some(start..end)
    }

    /// Claim `count` consecutive reception FIFOs; `None` once the node's
    /// 272 are exhausted.
    pub fn alloc_rec(&self, count: u16) -> Option<std::ops::Range<u16>> {
        let mut next = self.rec_next.lock();
        let end = next.checked_add(count)?;
        if end > self.rec_limit {
            return None;
        }
        let start = *next;
        *next = end;
        Some(start..end)
    }

    /// Injection FIFOs still unclaimed.
    pub fn inj_remaining(&self) -> u16 {
        self.inj_limit - *self.inj_next.lock()
    }

    /// Reception FIFOs still unclaimed.
    pub fn rec_remaining(&self) -> u16 {
        self.rec_limit - *self.rec_next.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn allocator_enforces_limits() {
        let a = FifoAllocator::new(8, 4);
        assert_eq!(a.alloc_inj(5), Some(0..5));
        assert_eq!(a.alloc_inj(3), Some(5..8));
        assert_eq!(a.alloc_inj(1), None);
        assert_eq!(a.alloc_rec(4), Some(0..4));
        assert_eq!(a.alloc_rec(1), None);
        assert_eq!(a.inj_remaining(), 0);
        assert_eq!(a.rec_remaining(), 0);
    }

    #[test]
    fn default_allocator_matches_hardware_counts() {
        let a = FifoAllocator::default();
        assert_eq!(a.inj_remaining(), 544);
        assert_eq!(a.rec_remaining(), 272);
    }

    #[test]
    fn rec_fifo_delivery_touches_wakeup() {
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        let fifo = RecFifo::new(16);
        fifo.set_wakeup(region.clone());
        assert!(fifo.is_empty());
        fifo.deliver(MuPacket {
            src_node: 0,
            src_context: 0,
            dispatch: 1,
            metadata: Bytes::new(),
            msg_id: 1,
            msg_len: 0,
            offset: 0,
            payload: Bytes::new(),
        });
        assert_eq!(region.epoch(), 1);
        assert!(fifo.poll().is_some());
        assert!(fifo.poll().is_none());
    }
}
