//! MU message engines — who executes injected descriptors.
//!
//! The hardware MU has multiple message engines operating in parallel
//! ("compared to only two on BG/P"), asynchronously with respect to the
//! cores. The simulation offers two faithful stand-ins:
//!
//! * [`EngineMode::Inline`]: descriptors execute when the owning context
//!   pumps its FIFOs from `advance` — fully deterministic, the default for
//!   tests and for latency measurements (where injection software cost is
//!   part of what the paper measures).
//! * [`EngineMode::Threaded`]: `n` engine threads per node drain the node's
//!   injection and system FIFOs in the background, parking on the node's
//!   engine wakeup region when idle — true asynchrony, used to demonstrate
//!   communication/computation overlap.
//!
//! Each injection FIFO is statically owned by one engine thread
//! (`fifo_index % n`), preserving per-FIFO execution order and with it the
//! deterministic-routing delivery order MPI depends on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use bgq_hw::Waiter;

use crate::fabric::{FabricInner, MuFabric};
use crate::fifo::InjFifoId;

/// Who pumps injected descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Contexts execute their own descriptors when they advance.
    Inline,
    /// `n` background engine threads per node.
    Threaded(usize),
}

/// How long an idle engine parks before re-checking for shutdown.
const ENGINE_PARK: Duration = Duration::from_millis(2);

/// Per-engine pump: drain this engine's share of `node`'s FIFOs once.
/// Returns descriptors executed.
fn pump_share(fabric: &MuFabric, node: u32, engine_idx: usize, engines: usize) -> usize {
    let mut done = 0;
    // Engine 0 services the system FIFO (remote gets) and, under a fault
    // plan, the node's link channels (retransmit timers, delayed frames).
    if engine_idx == 0 {
        done += fabric.pump_sys(node, 64);
        done += fabric.pump_links(node, 64);
        done += fabric.pump_transport();
    }
    // Lock-free high-water-mark read of the node's allocated FIFO count.
    let fifo_count = fabric.inner.nodes[node as usize].inj.allocated();
    for f in (engine_idx..fifo_count).step_by(engines) {
        done += fabric.pump_inj(node, InjFifoId(f as u16), 64);
    }
    done
}

/// Spawn `engines_per_node` engine threads for every node of `fabric`.
/// Threads hold only a weak fabric handle: they exit when the last strong
/// handle drops (or when the shutdown flag rises), so dropping the fabric
/// never blocks.
pub(crate) fn spawn_engines(fabric: &MuFabric, engines_per_node: usize) {
    assert!(engines_per_node > 0, "Threaded(0) engines make no progress");
    for node in 0..fabric.num_nodes() as u32 {
        for engine_idx in 0..engines_per_node {
            let weak: Weak<FabricInner> = Arc::downgrade(&fabric.inner);
            let shutdown: Arc<AtomicBool> = Arc::clone(&fabric.inner.shutdown);
            let region = fabric.inner.nodes[node as usize].engine_wakeup.clone();
            std::thread::Builder::new()
                .name(format!("mu-engine-{node}.{engine_idx}"))
                .spawn(move || {
                    let mut waiter = Waiter::new();
                    waiter.subscribe(&region);
                    loop {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Some(inner) = weak.upgrade() else { break };
                        let fabric = MuFabric { inner };
                        let mut worked = 0;
                        // Drain until momentarily idle so bursts complete
                        // without re-parking.
                        loop {
                            let n = pump_share(&fabric, node, engine_idx, engines_per_node);
                            worked += n;
                            if n == 0 {
                                break;
                            }
                        }
                        drop(fabric);
                        if worked == 0 {
                            waiter.wait_timeout(ENGINE_PARK);
                        }
                    }
                })
                .expect("spawn MU engine thread");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_hw::Counter;
    use crate::descriptor::{Descriptor, PayloadSource, XferKind};
    use bgq_hw::MemRegion;
    use bgq_torus::TorusShape;
    use bytes::Bytes;
    use std::time::Instant;

    fn wait_for(cond: impl Fn() -> bool, what: &str) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < Duration::from_secs(10), "timeout: {what}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn threaded_engines_execute_without_pumping() {
        let fabric = MuFabric::builder(TorusShape::new([2, 1, 1, 1, 1]))
            .engine_mode(EngineMode::Threaded(2))
            .build();
        let inj = fabric.alloc_inj_fifos(0, 4).unwrap();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for (i, f) in inj.iter().enumerate() {
            fabric.inject(
                0,
                *f,
                Descriptor {
                    dst_node: 1,
                    dst_context: 0,
                    src_context: 0,
                    routing: bgq_torus::Routing::Deterministic,
                    payload: PayloadSource::Immediate(Bytes::from(vec![i as u8])),
                    kind: XferKind::MemoryFifo {
                        rec_fifo: rec,
                        dispatch: 0,
                        metadata: Bytes::new(),
                        short: false,
                    },
                    inj_counter: None,
                },
            );
        }
        // No explicit pump anywhere: engines must deliver all four. Count
        // arrivals by draining the reception FIFO (telemetry-independent).
        let start = Instant::now();
        let mut received = 0;
        while received < 4 {
            if fabric.poll_rec(1, rec).is_some() {
                received += 1;
            } else {
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "timeout: engine delivery"
                );
                std::thread::yield_now();
            }
        }
        if cfg!(feature = "telemetry") {
            // One sampled message per lane, each accounting for a whole
            // sample window.
            assert_eq!(
                fabric.counters(1).packets_received.value(),
                4 * crate::fabric::MU_PACKET_COUNTER_SAMPLE
            );
        }
    }

    #[test]
    fn threaded_engines_service_remote_gets() {
        let fabric = MuFabric::builder(TorusShape::new([2, 1, 1, 1, 1]))
            .engine_mode(EngineMode::Threaded(1))
            .build();
        let remote = MemRegion::from_vec(vec![9u8; 32]);
        let local = MemRegion::zeroed(32);
        let done = Counter::new();
        done.add_expected(32);
        let inj = fabric.alloc_inj_fifos(0, 1).unwrap()[0];
        fabric.inject(
            0,
            inj,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(Bytes::new()),
                kind: XferKind::RemoteGet {
                    payload: Box::new(Descriptor {
                        dst_node: 0,
                        dst_context: 0,
                        src_context: 0,
                        routing: bgq_torus::Routing::Dynamic,
                        payload: PayloadSource::Region { region: remote, offset: 0, len: 32 },
                        kind: XferKind::DirectPut {
                            dst_region: local.clone(),
                            dst_offset: 0,
                            rec_counter: Some(done.clone()),
                        },
                        inj_counter: None,
                    }),
                },
                inj_counter: None,
            },
        );
        wait_for(|| done.is_complete(), "remote get serviced by engines");
        assert_eq!(local.to_vec(), vec![9u8; 32]);
    }

    #[test]
    fn dropping_fabric_with_engines_does_not_hang() {
        let fabric = MuFabric::builder(TorusShape::new([2, 1, 1, 1, 1]))
            .engine_mode(EngineMode::Threaded(2))
            .build();
        drop(fabric);
        // Nothing to assert: the test passes by not deadlocking.
    }
}
