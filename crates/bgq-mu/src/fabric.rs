//! The MU fabric: every node's MU plus packet delivery between them.
//!
//! A [`MuFabric`] owns one simulated MU per node. Software (a PAMI context)
//! allocates exclusive FIFOs, injects [`Descriptor`]s, and pumps progress;
//! the fabric executes descriptors — fragmenting payload into ≤512-byte
//! packets for memory-FIFO traffic, copying directly into destination
//! regions for puts, and bouncing remote-gets to the destination's system
//! FIFO. Without a fault plan, delivery is immediate and reliable (the
//! torus is lossless); *who* executes a descriptor and in what order is
//! exactly what the engine modes control, because that is what the paper's
//! concurrency story is about.
//!
//! With a [`FaultPlan`] installed ([`MuFabricBuilder::fault_plan`]), inter-
//! node traffic instead moves as link-level frames through per-(src, dst)
//! reliable channels (see [`crate::link`]): the fault injector drops,
//! corrupts, delays, or kills links; lost frames retransmit with
//! exponential backoff under [`MuFabric::pump_links`]; killed links force
//! torus reroutes; and exhausted retry budgets fail completion counters
//! with a typed [`bgq_hw::DeliveryFault`] instead of hanging pollers.
//! Every packet additionally carries a link sequence number and a CRC-32C
//! stamp (on by default even fault-free — the measurable cost of integrity
//! checking; [`MuFabricBuilder::crc`]`(false)` turns the stamp off).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_hw::{DeliveryFault, WakeupRegion, WakeupUnit};
use bgq_torus::packet::MAX_PAYLOAD_BYTES;
use bgq_torus::{healthy_route, Coords, Dir, LinkHealth, TorusShape};
use bgq_upc::{Counter, Upc};
use parking_lot::MutexGuard;

use crate::comb::{CombCounters, CombState, RmwLocks};
use crate::descriptor::{Descriptor, PayloadSource, RmwOp, XferKind};
use crate::engine::{self, EngineMode};
use crate::faults::{link_id, Fate, FaultInjector, FaultPlan, LinkProtocol};
use crate::fifo::{
    FifoAllocator, FifoTable, InjFifo, InjFifoId, MsgIdLane, RecFifo, RecFifoId,
    INJ_FIFOS_PER_NODE, REC_FIFOS_PER_NODE,
};
use crate::link::{
    fail_body, Channel, Frame, FrameBody, FramePayload, FrameState, RasCounters, RasEvent,
    RasEventKind, RasRing, Reliability, RoutePlan, RxVerdict, TxState,
};

/// How a selective-repeat arrival leaves the sender's scan: move to the
/// next frame, restart from the (new) queue front after a cumulative ack
/// retired a prefix, or rescan because a SACK re-queued earlier frames for
/// immediate retransmission.
enum Arrival {
    Advance,
    Restart,
    FastRetransmit,
}
use crate::packet::{packet_crc, MuPacket, PacketPayload};
use crate::transport::Transport;

// Message ids are minted by per-lane [`MsgIdLane`]s: `node << 40 | lane <<
// 30 | seq`, where the lane is the injection FIFO the message went through
// (or a reserved software lane — see [`crate::fifo::SYS_LANE`] /
// [`crate::fifo::NODE_LANE`]). Each lane owns its sequence counter, so the
// send hot path never touches a shared per-node atomic and ids from
// different lanes can never collide.

/// Sampling period of the per-message `mu.fifo_messages` /
/// `mu.packets_injected` / `mu.packets_received` probe updates on the
/// synchronous delivery path: one message in every
/// `MU_PACKET_COUNTER_SAMPLE` (deterministically, by the low bits of its
/// lane-local sequence number) accounts for the whole sample window, so the
/// counters stay rate-exact while the hot path pays the probe cost only
/// once per window. `mu.packets_dropped` and `mu.payload_copies` stay
/// per-event exact — drops are rare and copies are a correctness assertion
/// in tests. Must be a power of two.
pub const MU_PACKET_COUNTER_SAMPLE: u64 = 16;

/// Deterministic sample gate: lane-local message sequence numbers increment
/// by one, so masking the low bits of the message id hits exactly one
/// message per [`MU_PACKET_COUNTER_SAMPLE`] window on every lane.
#[inline]
fn counter_sample_hit(msg_id: u64) -> bool {
    msg_id & (MU_PACKET_COUNTER_SAMPLE - 1) == 0
}

/// Per-node MU telemetry probes (`mu.*` layer), registered on the fabric's
/// [`Upc`] registry. These replaced the old bespoke `NodeStats` snapshot
/// struct: each field is a live `bgq-upc` counter handle — read one with
/// `.value()`, or aggregate all nodes through `Upc::snapshot()`. With the
/// `telemetry` feature off every field is a zero-sized no-op.
pub struct MuCounters {
    /// Memory-FIFO messages sent from this node.
    pub fifo_messages: Counter,
    /// Memory-FIFO packets created at injection on this node.
    pub packets_injected: Counter,
    /// Memory-FIFO packets delivered *to* this node.
    pub packets_received: Counter,
    /// Packets (frames) dropped in the fabric. Zero on a lossless run;
    /// incremented by the fault injector's `Drop` fate under a
    /// [`FaultPlan`] — the first thing to check on real MU hardware, and
    /// now the first thing to check in a chaos run.
    pub packets_dropped: Counter,
    /// Direct-put bytes written into this node's memory.
    pub put_bytes_in: Counter,
    /// Remote-get requests serviced by this node.
    pub remote_gets_serviced: Counter,
    /// Descriptors executed by this node's engines.
    pub descriptors_executed: Counter,
    /// Payload copies performed on this node: receive-side deposits out of
    /// the reception FIFO, plus source-side per-packet DMA staging when an
    /// injection counter demands it. The zero-copy eager path does exactly
    /// one per packet.
    pub payload_copies: Counter,
}

impl MuCounters {
    fn new(upc: &Upc) -> Self {
        MuCounters {
            fifo_messages: upc.counter("mu.fifo_messages"),
            packets_injected: upc.counter("mu.packets_injected"),
            packets_received: upc.counter("mu.packets_received"),
            packets_dropped: upc.counter("mu.packets_dropped"),
            put_bytes_in: upc.counter("mu.put_bytes_in"),
            remote_gets_serviced: upc.counter("mu.remote_gets_serviced"),
            descriptors_executed: upc.counter("mu.descriptors_executed"),
            payload_copies: upc.counter("mu.payload_copies"),
        }
    }
}

pub(crate) struct NodeMu {
    /// Lock-free FIFO tables sized to the hardware limits (544/272):
    /// delivery, polling, and handle lookup are plain atomic loads.
    pub inj: FifoTable<InjFifo>,
    pub rec: FifoTable<RecFifo>,
    pub allocator: FifoAllocator,
    /// System injection FIFO: remote-get payload descriptors land here for
    /// this node to execute.
    pub sys_inj: Arc<InjFifo>,
    pub sys_wakeup: OnceLock<WakeupRegion>,
    /// Wakes this node's engine threads (threaded mode).
    pub engine_wakeup: WakeupRegion,
    /// Fallback message-id lane ([`crate::fifo::NODE_LANE`]) for
    /// descriptors executed without an injection FIFO (`execute_now`).
    /// FIFO-routed messages mint from their own FIFO's lane instead.
    pub msg_lane: MsgIdLane,
    /// Fallback link sequence counter for the same `execute_now` path —
    /// FIFO-routed fault-free packets stamp from their FIFO's counter, and
    /// reliable channels stamp their own under a fault plan.
    pub link_seq: AtomicU64,
    /// `mu.*` telemetry probes for this node.
    pub counters: MuCounters,
}

pub(crate) struct FabricInner {
    pub shape: TorusShape,
    pub nodes: Vec<NodeMu>,
    pub inj_fifo_capacity: usize,
    pub rec_fifo_capacity: usize,
    pub mode: EngineMode,
    pub shutdown: Arc<AtomicBool>,
    /// Whether packets carry a computed CRC-32C stamp.
    pub crc: bool,
    /// `ras.*` probes — registered even without a fault plan so the report
    /// schema is stable (they just stay zero).
    pub ras: Arc<RasCounters>,
    /// RAS event ring.
    pub ring: Arc<RasRing>,
    /// The reliability layer; present iff a fault plan was installed.
    pub reliability: Option<Reliability>,
    /// The packet transport seam ([`crate::transport`]): `None` keeps the
    /// synchronous deposit path (one branch of overhead); `Some` routes
    /// every reception-FIFO deposit through the installed transport (the
    /// co-simulation's DES-scheduled delivery).
    pub transport: Option<Arc<dyn Transport>>,
    /// Striped per-(window, offset) locks making rmw descriptors atomic.
    pub rmw_locks: RmwLocks,
    /// In-network combining overlay for hot-key fetch-adds; present iff
    /// [`MuFabricBuilder::combining`] enabled it.
    pub comb: Option<CombState>,
}

/// Configures and builds a [`MuFabric`].
pub struct MuFabricBuilder {
    shape: TorusShape,
    inj_fifo_capacity: usize,
    rec_fifo_capacity: usize,
    mode: EngineMode,
    telemetry: Upc,
    crc: bool,
    fault_plan: Option<FaultPlan>,
    ras_ring_capacity: usize,
    transport: Option<Arc<dyn Transport>>,
    combining: bool,
}

impl MuFabricBuilder {
    /// Ring capacity of each injection FIFO before overflow (default 128).
    pub fn inj_fifo_capacity(mut self, cap: usize) -> Self {
        self.inj_fifo_capacity = cap;
        self
    }

    /// Ring capacity of each reception FIFO before overflow (default 512).
    pub fn rec_fifo_capacity(mut self, cap: usize) -> Self {
        self.rec_fifo_capacity = cap;
        self
    }

    /// Select who pumps injection FIFOs (default [`EngineMode::Inline`]).
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Register the fabric's `mu.*` probes on a shared telemetry registry
    /// (PAMI's `Machine` passes its own so one snapshot covers every
    /// layer). Defaults to a private registry.
    pub fn telemetry(mut self, upc: Upc) -> Self {
        self.telemetry = upc;
        self
    }

    /// Whether packets carry a computed CRC-32C stamp (default `true`; the
    /// chaos bench turns it off to isolate the integrity-check cost).
    pub fn crc(mut self, on: bool) -> Self {
        self.crc = on;
        self
    }

    /// Install a fault plan: inter-node traffic moves through reliable
    /// link-level channels and the plan's drops/corruption/kills apply.
    /// Panics on an invalid plan ([`FaultPlan::validate`]) — builder
    /// misuse, not a runtime condition.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Capacity of the RAS event ring (default 1024; oldest events drop).
    pub fn ras_ring_capacity(mut self, cap: usize) -> Self {
        self.ras_ring_capacity = cap;
        self
    }

    /// Install a packet transport ([`crate::transport::Transport`]): every
    /// reception-FIFO deposit is handed to it instead of being performed
    /// synchronously. The co-simulation harness installs a DES-scheduled
    /// transport here; without one the fabric behaves exactly as before.
    pub fn transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Enable the in-network combining overlay (default off): fetch-add
    /// descriptors to the same (window, offset) coalesce at every torus
    /// hop on the way to the root, which applies the combined addend once
    /// and decombines the priors by prefix sum. See [`crate::comb`].
    pub fn combining(mut self, on: bool) -> Self {
        self.combining = on;
        self
    }

    /// Build the fabric (and spawn engine threads in threaded mode).
    pub fn build(self) -> MuFabric {
        let wakeups = WakeupUnit::new();
        let nodes: Vec<NodeMu> = (0..self.shape.num_nodes())
            .map(|node| NodeMu {
                inj: FifoTable::new(INJ_FIFOS_PER_NODE),
                rec: FifoTable::new(REC_FIFOS_PER_NODE),
                allocator: FifoAllocator::default(),
                sys_inj: Arc::new(InjFifo::new(
                    self.inj_fifo_capacity,
                    node as u32,
                    crate::fifo::SYS_LANE,
                )),
                sys_wakeup: OnceLock::new(),
                engine_wakeup: wakeups.region(),
                msg_lane: MsgIdLane::new(node as u32, crate::fifo::NODE_LANE),
                link_seq: AtomicU64::new(0),
                counters: MuCounters::new(&self.telemetry),
            })
            .collect();
        let ras = Arc::new(RasCounters::new(&self.telemetry));
        let ring = Arc::new(RasRing::new(self.ras_ring_capacity));
        let reliability = self.fault_plan.map(|plan| {
            plan.validate().expect("invalid fault plan");
            Reliability::new(
                FaultInjector::new(plan, self.shape),
                LinkHealth::new(self.shape),
                Arc::clone(&ras),
                Arc::clone(&ring),
                nodes.len(),
            )
        });
        let comb = self.combining.then(|| CombState::new(self.shape, &self.telemetry));
        let inner = Arc::new(FabricInner {
            shape: self.shape,
            nodes,
            inj_fifo_capacity: self.inj_fifo_capacity,
            rec_fifo_capacity: self.rec_fifo_capacity,
            mode: self.mode,
            shutdown: Arc::new(AtomicBool::new(false)),
            crc: self.crc,
            ras,
            ring,
            reliability,
            transport: self.transport,
            rmw_locks: RmwLocks::new(),
            comb,
        });
        let fabric = MuFabric { inner };
        if let EngineMode::Threaded(n) = self.mode {
            engine::spawn_engines(&fabric, n);
        }
        fabric
    }
}

/// Handle to the MU fabric; clones share the fabric.
#[derive(Clone)]
pub struct MuFabric {
    pub(crate) inner: Arc<FabricInner>,
}

impl MuFabric {
    /// Start building a fabric over `shape`.
    pub fn builder(shape: TorusShape) -> MuFabricBuilder {
        MuFabricBuilder {
            shape,
            inj_fifo_capacity: 128,
            rec_fifo_capacity: 512,
            mode: EngineMode::Inline,
            telemetry: Upc::new(),
            crc: true,
            fault_plan: None,
            ras_ring_capacity: 1024,
            transport: None,
            combining: false,
        }
    }

    /// Whether the in-network combining overlay is enabled.
    pub fn combining_enabled(&self) -> bool {
        self.inner.comb.is_some()
    }

    /// Live `comb.*` telemetry probes of the combining overlay, when
    /// enabled.
    pub fn comb_counters(&self) -> Option<&CombCounters> {
        self.inner.comb.as_ref().map(|c| &c.counters)
    }

    /// The torus shape.
    pub fn shape(&self) -> TorusShape {
        self.inner.shape
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The engine mode the fabric was built with.
    pub fn engine_mode(&self) -> EngineMode {
        self.inner.mode
    }

    fn node(&self, id: u32) -> &NodeMu {
        &self.inner.nodes[id as usize]
    }

    /// Every reception-FIFO deposit funnels through here: synchronous batch
    /// delivery on the default fabric, or the installed
    /// [`Transport`] (which may schedule the deposit on its own clock).
    #[inline]
    fn deposit(
        &self,
        src_node: u32,
        dst_node: u32,
        rec_fifo: RecFifoId,
        fifo: &Arc<RecFifo>,
        npackets: u64,
        make: &mut dyn FnMut(u64) -> MuPacket,
    ) {
        match &self.inner.transport {
            None => fifo.deliver_batch(npackets, make),
            Some(t) => t.deliver(src_node, dst_node, rec_fifo, fifo, npackets, make),
        }
    }

    /// Deposit whatever the installed transport has due at its current
    /// (virtual) time; returns deposits performed. A no-op — zero, no
    /// locks — on the default synchronous fabric. Pumped alongside the
    /// system FIFO by the engine loops so threaded-mode fabrics drain a
    /// scheduling transport without help from the harness.
    pub fn pump_transport(&self) -> usize {
        match &self.inner.transport {
            None => 0,
            Some(t) => t.pump(),
        }
    }

    /// Whether a transport seam is installed (diagnostics).
    pub fn has_transport(&self) -> bool {
        self.inner.transport.is_some()
    }

    /// Install an observer invoked on every RAS event recorded by the
    /// reliability layer (retransmits, link kills, delivery failures, …) —
    /// the RAS→software feedback hook. Set at most once, before traffic
    /// flows; later calls are ignored. The callback runs on the thread that
    /// detected the event, possibly while link-channel locks are held: it
    /// must be cheap and must not call back into the fabric.
    pub fn set_ras_observer(&self, observer: crate::link::RasObserver) {
        self.inner.ring.set_observer(observer);
    }

    /// Allocate `count` exclusive injection FIFOs on `node`; `None` when the
    /// node's 544 are exhausted.
    ///
    /// The allocator mutex serializes the id claim (allocation is not a hot
    /// path); the claimed slots are then published into the lock-free table,
    /// race-free because ranges are disjoint.
    pub fn alloc_inj_fifos(&self, node: u32, count: u16) -> Option<Vec<InjFifoId>> {
        let n = self.node(node);
        let range = n.allocator.alloc_inj(count)?;
        for id in range.clone() {
            // The FIFO id doubles as its message-id lane, so everything the
            // owning context needs to send — queue, msg-id mint, link-seq
            // counter — lives in this one exclusively-owned structure.
            n.inj.publish(id, Arc::new(InjFifo::new(self.inner.inj_fifo_capacity, node, id)));
        }
        Some(range.map(InjFifoId).collect())
    }

    /// Allocate `count` exclusive reception FIFOs on `node`.
    pub fn alloc_rec_fifos(&self, node: u32, count: u16) -> Option<Vec<RecFifoId>> {
        let n = self.node(node);
        let range = n.allocator.alloc_rec(count)?;
        for id in range.clone() {
            n.rec.publish(id, Arc::new(RecFifo::new(self.inner.rec_fifo_capacity)));
        }
        Some(range.map(RecFifoId).collect())
    }

    /// Direct handle to a reception FIFO (contexts cache this).
    pub fn rec_fifo(&self, node: u32, id: RecFifoId) -> Arc<RecFifo> {
        Arc::clone(self.node(node).rec.get(id.0))
    }

    /// Direct handle to an injection FIFO.
    pub fn inj_fifo(&self, node: u32, id: InjFifoId) -> Arc<InjFifo> {
        Arc::clone(self.node(node).inj.get(id.0))
    }

    /// Handle to a node's *system* injection FIFO (contexts cache it to
    /// observe remote-get backlog without going through the fabric).
    pub fn sys_fifo(&self, node: u32) -> Arc<InjFifo> {
        Arc::clone(&self.node(node).sys_inj)
    }

    /// Attach a wakeup region to a node's system FIFO (remote-get arrivals
    /// touch it). Set at most once per node; later calls are ignored.
    pub fn set_sys_wakeup(&self, node: u32, region: WakeupRegion) {
        let _ = self.node(node).sys_wakeup.set(region);
    }

    /// Queue a descriptor on one of `src_node`'s injection FIFOs.
    pub fn inject(&self, src_node: u32, fifo: InjFifoId, desc: Descriptor) {
        let fifo = Arc::clone(self.node(src_node).inj.get(fifo.0));
        self.inject_handle(src_node, &fifo, desc);
    }

    /// Queue a descriptor on an injection FIFO the caller already holds a
    /// handle to — the context hot path, which caches its exclusive FIFO
    /// handles and skips the table lookup entirely.
    pub fn inject_handle(&self, src_node: u32, fifo: &InjFifo, desc: Descriptor) {
        fifo.queue.push(desc);
        if matches!(self.inner.mode, EngineMode::Threaded(_)) {
            self.node(src_node).engine_wakeup.touch();
        }
    }

    /// Execute a descriptor immediately in the calling thread — the
    /// `PAMI_Send_immediate` path, which bypasses the injection queue when
    /// FIFO space is available.
    pub fn execute_now(&self, src_node: u32, desc: Descriptor) {
        self.execute(src_node, desc);
    }

    /// Short-tier send on a caller-owned injection FIFO: the whole message
    /// — metadata and payload — is one inline packet envelope, built and
    /// delivered right here. No descriptor, no fragment loop, no region
    /// registration, no staging: one message id, one sequence number, one
    /// CRC stamp, one reception-FIFO deposit. The caller must have
    /// established ordering first ([`InjFifo::is_quiescent`]) — bypassing
    /// a non-empty queue would overtake earlier eager traffic.
    ///
    /// `local_done` (if any) is credited synchronously with the payload
    /// length ([`Descriptor::ZERO_LEN_CREDIT`] for empty payloads) on the
    /// lossless fabric; under a fault plan the envelope rides the reliable
    /// channel as a single frame instead, so the counter keeps its
    /// ack-or-typed-fault semantics and chaos runs exercise the same tier.
    #[allow(clippy::too_many_arguments)]
    pub fn send_short(
        &self,
        src_node: u32,
        fifo: &InjFifo,
        dst_node: u32,
        rec_fifo: RecFifoId,
        src_context: u16,
        dispatch: u16,
        metadata: bytes::Bytes,
        payload: bytes::Bytes,
        local_done: Option<bgq_hw::Counter>,
    ) {
        self.send_short_from(
            src_node,
            &fifo.lane,
            &fifo.link_seq,
            dst_node,
            rec_fifo,
            src_context,
            dispatch,
            metadata,
            payload,
            local_done,
        );
    }

    /// [`MuFabric::send_short`] without an injection FIFO — the
    /// `PAMI_Send_immediate` analogue of [`MuFabric::execute_now`], minting
    /// ids from the node's fallback lane. Same single-envelope semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn send_short_now(
        &self,
        src_node: u32,
        dst_node: u32,
        rec_fifo: RecFifoId,
        src_context: u16,
        dispatch: u16,
        metadata: bytes::Bytes,
        payload: bytes::Bytes,
        local_done: Option<bgq_hw::Counter>,
    ) {
        let src = self.node(src_node);
        self.send_short_from(
            src_node,
            &src.msg_lane,
            &src.link_seq,
            dst_node,
            rec_fifo,
            src_context,
            dispatch,
            metadata,
            payload,
            local_done,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn send_short_from(
        &self,
        src_node: u32,
        lane: &MsgIdLane,
        seq_src: &AtomicU64,
        dst_node: u32,
        rec_fifo: RecFifoId,
        src_context: u16,
        dispatch: u16,
        metadata: bytes::Bytes,
        payload: bytes::Bytes,
        local_done: Option<bgq_hw::Counter>,
    ) {
        debug_assert!(payload.len() <= MAX_PAYLOAD_BYTES, "short tier is one packet");
        let len = payload.len();
        if let Some(rel) = &self.inner.reliability {
            if dst_node != src_node {
                let ch = rel.channel(src_node, dst_node);
                if rel.clean && !rel.health.any_down() && ch.seems_alive() && !ch.has_backlog()
                {
                    // Fair-weather short fast path: same single-packet
                    // synchronous deliver as the lossless tail below, but
                    // the sequence number comes from the channel's atomic
                    // (so a run that later installs faults continues the
                    // same sequence space) and the packet carries the
                    // reliable path's CRC stamp. This mirrors the generic
                    // fair-weather bypass in `execute_reliable` minus the
                    // descriptor round-trip the short tier exists to skip.
                    let msg_id = lane.next();
                    let pin = src_context as usize;
                    let src = self.node(src_node);
                    let dst = self.node(dst_node);
                    if counter_sample_hit(msg_id) {
                        src.counters
                            .fifo_messages
                            .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
                        src.counters
                            .packets_injected
                            .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
                        dst.counters
                            .packets_received
                            .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
                    }
                    let seq = ch.next_seq.fetch_add(1, Ordering::Relaxed);
                    let crc = if self.inner.crc {
                        packet_crc(
                            src_node,
                            src_context,
                            dispatch,
                            msg_id,
                            len as u32,
                            0,
                            seq,
                            &metadata,
                            &payload,
                        )
                    } else {
                        0
                    };
                    let mut pkt = Some(MuPacket {
                        src_node,
                        src_context,
                        dispatch,
                        metadata,
                        msg_id,
                        msg_len: len as u32,
                        offset: 0,
                        link_seq: seq,
                        crc,
                        short: true,
                        payload: PacketPayload::Inline(payload),
                    });
                    self.deposit(src_node, dst_node, rec_fifo, dst.rec.get(rec_fifo.0), 1, &mut |_| {
                        pkt.take().expect("short tier is one packet")
                    });
                    if let Some(c) = local_done {
                        c.delivered(if len == 0 {
                            Descriptor::ZERO_LEN_CREDIT
                        } else {
                            len as u64
                        });
                    }
                    return;
                }
                // Chaos path: one frame on the reliable channel; the `short`
                // flag survives in the frame body so the receive side still
                // sees a short envelope, and drops/kills keep their
                // exactly-once / typed-fault semantics.
                let kind =
                    XferKind::MemoryFifo { rec_fifo, dispatch, metadata, short: true };
                let desc = Descriptor {
                    dst_node,
                    dst_context: 0,
                    src_context,
                    routing: Descriptor::default_routing(&kind),
                    payload: PayloadSource::Immediate(payload),
                    kind,
                    inj_counter: local_done,
                };
                self.execute_from(src_node, desc, lane, seq_src);
                return;
            }
        }
        let dst = self.node(dst_node);
        let msg_id = lane.next();
        let pin = src_context as usize;
        if counter_sample_hit(msg_id) {
            // Source-node lookup only on the sampled window: the unsampled
            // short send never touches the source slot table at all.
            let src = self.node(src_node);
            src.counters
                .fifo_messages
                .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
            src.counters
                .packets_injected
                .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
            dst.counters
                .packets_received
                .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
        }
        let seq = seq_src.fetch_add(1, Ordering::Relaxed);
        // No CRC stamp on the lossless short path: the fabric cannot touch
        // the packet in flight (faulty fabrics take the reliable branch
        // above, whose frames carry their own CRC), and nothing on the
        // lossless receive side consumes the stamp — it would be pure dead
        // computation on the tier whose whole point is the minimum
        // per-message cost. A zero stamp reads as "CRC disabled" to
        // `MuPacket::verify_crc`.
        let pkt = MuPacket {
            src_node,
            src_context,
            dispatch,
            metadata,
            msg_id,
            msg_len: len as u32,
            offset: 0,
            link_seq: seq,
            crc: 0,
            short: true,
            payload: PacketPayload::Inline(payload),
        };
        // Single-packet deposit: on the default synchronous fabric this is
        // a direct `deliver`, with no packet-maker indirection.
        match &self.inner.transport {
            None => dst.rec.get(rec_fifo.0).deliver(pkt),
            Some(t) => {
                let mut pkt = Some(pkt);
                t.deliver(src_node, dst_node, rec_fifo, dst.rec.get(rec_fifo.0), 1, &mut |_| {
                    pkt.take().expect("short tier is one packet")
                });
            }
        }
        if let Some(c) = local_done {
            c.delivered(if len == 0 {
                Descriptor::ZERO_LEN_CREDIT
            } else {
                len as u64
            });
        }
    }

    /// Drain up to `budget` descriptors from one injection FIFO (inline
    /// engine mode: contexts call this from `advance`). Returns descriptors
    /// executed.
    pub fn pump_inj(&self, node: u32, fifo: InjFifoId, budget: usize) -> usize {
        let fifo = Arc::clone(self.node(node).inj.get(fifo.0));
        self.pump_inj_handle(node, &fifo, budget)
    }

    /// Like [`MuFabric::pump_inj`] but on a cached FIFO handle, skipping
    /// the table lookup (context hot path). Message ids and fault-free link
    /// sequences come from the FIFO's own lane, and the per-node
    /// `descriptors_executed` counter is updated once for the whole pump
    /// rather than per descriptor.
    pub fn pump_inj_handle(&self, node: u32, fifo: &InjFifo, budget: usize) -> usize {
        let mut done = 0;
        while done < budget {
            // Empty pre-check before the `inflight` bracket: an advance
            // loop sweeps every FIFO the context owns, and on an idle FIFO
            // the sweep must cost emptiness loads, not a SeqCst RMW. Racing
            // a producer here is benign — we skip the round exactly as a
            // bracketed pop returning `None` would.
            if fifo.queue.is_empty() {
                break;
            }
            // Bracket the pop-execute window in `inflight` so the short
            // tier's queue-bypass stays ordered: the bypasser only skips
            // the queue when `is_quiescent()` — and if it observes the
            // queue empty after our pop (release store, acquired by its
            // emptiness check), this increment is already visible, so it
            // falls back to the queued path instead of overtaking a
            // descriptor that is mid-execution.
            fifo.inflight.fetch_add(1, Ordering::SeqCst);
            match fifo.queue.pop() {
                Some(desc) => {
                    self.execute_from(node, desc, &fifo.lane, &fifo.link_seq);
                    fifo.inflight.fetch_sub(1, Ordering::Release);
                    done += 1;
                }
                None => {
                    fifo.inflight.fetch_sub(1, Ordering::Release);
                    break;
                }
            }
        }
        if done > 0 {
            self.node(node).counters.descriptors_executed.add(done as u64);
        }
        done
    }

    /// Execute up to `budget` system-FIFO descriptors (remote-get service).
    /// Counters are batched per call, not per descriptor.
    pub fn pump_sys(&self, node: u32, budget: usize) -> usize {
        let sys = Arc::clone(&self.node(node).sys_inj);
        let mut done = 0;
        while done < budget {
            match sys.queue.pop() {
                Some(desc) => {
                    self.execute_from(node, desc, &sys.lane, &sys.link_seq);
                    done += 1;
                }
                None => break,
            }
        }
        if done > 0 {
            let c = &self.node(node).counters;
            c.remote_gets_serviced.add(done as u64);
            c.descriptors_executed.add(done as u64);
        }
        done
    }

    /// Pull the next packet from a reception FIFO (owning context only).
    pub fn poll_rec(&self, node: u32, fifo: RecFifoId) -> Option<MuPacket> {
        self.node(node).rec.get(fifo.0).poll()
    }

    /// Record `n` receive-side payload copies on `node` (contexts deposit
    /// packet payloads into destination memory and flush the count once per
    /// `advance` call). `pin` stripes the counter by the caller's context
    /// id so concurrent contexts never share a counter cell.
    pub fn note_payload_copies(&self, node: u32, pin: usize, n: u64) {
        self.node(node).counters.payload_copies.add_pinned(pin, n);
    }

    /// Live `mu.*` telemetry probes for `node`. Read a single probe with
    /// `.value()`; aggregate across nodes via the registry passed to
    /// [`MuFabricBuilder::telemetry`]. All zeros when the `telemetry`
    /// feature is off.
    pub fn counters(&self, node: u32) -> &MuCounters {
        &self.node(node).counters
    }

    /// Execute one descriptor on behalf of `src_node`. This is "the MU
    /// hardware": it performs the data movement the descriptor asks for.
    /// With a fault plan installed, inter-node descriptors are decomposed
    /// into link-level frames on the reliable channel instead (self-sends
    /// cross no torus link and keep the direct path).
    pub(crate) fn execute(&self, src_node: u32, desc: Descriptor) {
        self.node(src_node).counters.descriptors_executed.incr();
        let src = self.node(src_node);
        self.execute_from(src_node, desc, &src.msg_lane, &src.link_seq);
    }

    /// Execute with an explicit message-id lane and link-sequence source —
    /// the FIFO pump paths pass their FIFO's own, keeping the hot path free
    /// of shared per-node sequence state. Does *not* bump
    /// `descriptors_executed` (pump callers batch it; `execute` bumps it
    /// for the immediate path).
    pub(crate) fn execute_from(
        &self,
        src_node: u32,
        desc: Descriptor,
        lane: &MsgIdLane,
        link_seq: &AtomicU64,
    ) {
        // Combinable fetch-adds divert into the combining overlay before
        // either delivery path: the overlay carries them hop by hop (with
        // its own seeded dice under a fault plan), so they never enter the
        // per-(src, dst) link channels.
        if let Some(comb) = &self.inner.comb {
            if desc.dst_node != src_node {
                if let XferKind::Rmw { op: RmwOp::FetchAdd, .. } = &desc.kind {
                    let Descriptor { dst_node, kind, inj_counter, .. } = desc;
                    let XferKind::Rmw {
                        win_key, dst_region, dst_offset, operand, reply, ..
                    } = kind
                    else {
                        unreachable!("matched Rmw above");
                    };
                    comb.submit(
                        src_node,
                        dst_node,
                        win_key,
                        dst_offset,
                        dst_region,
                        operand,
                        reply,
                        inj_counter,
                        Descriptor::ZERO_LEN_CREDIT,
                    );
                    return;
                }
            }
        }
        if let Some(rel) = &self.inner.reliability {
            if desc.dst_node != src_node {
                self.execute_reliable(rel, src_node, desc, lane);
                return;
            }
        }
        self.execute_direct(src_node, desc, lane, link_seq);
    }

    /// The lossless path: immediate, synchronous delivery.
    fn execute_direct(
        &self,
        src_node: u32,
        desc: Descriptor,
        lane: &MsgIdLane,
        link_seq: &AtomicU64,
    ) {
        let credit = desc.completion_credit();
        let Descriptor {
            dst_node,
            dst_context,
            src_context,
            routing,
            payload,
            kind,
            inj_counter,
        } = desc;
        // Functional delivery is identical for both routing modes (the
        // fabric is lossless and in-process); the mode matters to the
        // timing models and to the ordering contract asserted in tests.
        let _ = routing;
        match kind {
            XferKind::MemoryFifo { rec_fifo, dispatch, metadata, short } => {
                self.deliver_fifo_sync(
                    src_node,
                    dst_node,
                    src_context,
                    rec_fifo,
                    dispatch,
                    metadata,
                    payload,
                    lane,
                    link_seq,
                    None,
                    inj_counter.is_some(),
                    short,
                );
                let _ = dst_context;
            }
            XferKind::DirectPut { dst_region, dst_offset, rec_counter } => {
                match &payload {
                    PayloadSource::Immediate(bytes) => {
                        dst_region.write(dst_offset, bytes);
                    }
                    PayloadSource::Region { region, offset, len } => {
                        dst_region.copy_from(dst_offset, region, *offset, *len);
                    }
                }
                self.node(dst_node).counters.put_bytes_in.add(payload.len() as u64);
                if let Some(c) = rec_counter {
                    c.delivered(credit);
                }
            }
            XferKind::RemoteGet { payload: get_desc } => {
                let dst = self.node(dst_node);
                dst.sys_inj.queue.push(*get_desc);
                if let Some(w) = dst.sys_wakeup.get() {
                    w.touch();
                }
                if matches!(self.inner.mode, EngineMode::Threaded(_)) {
                    dst.engine_wakeup.touch();
                }
            }
            XferKind::Rmw { win_key, dst_region, dst_offset, op, operand, compare, reply } => {
                let prior = self.inner.rmw_locks.apply(
                    win_key,
                    &dst_region,
                    dst_offset,
                    op,
                    operand,
                    compare,
                );
                if let Some(r) = reply {
                    r.region.write(r.offset, &prior.to_le_bytes());
                }
            }
        }
        if let Some(c) = inj_counter {
            c.delivered(credit);
        }
    }

    /// Fragment a MemoryFifo message into packets and deliver them
    /// synchronously. Shared by the lossless path and the reliable
    /// fair-weather fast path — the two differ only in where the message-id
    /// lane and link-sequence counter live (the injecting FIFO's own on the
    /// lossless fabric, per-channel under a fault plan) and in who fires
    /// the injection counter, so both pay an identical per-packet cost:
    /// CRC stamp + sequence number + fifo deposit. Telemetry updates are
    /// pinned to the sending context's stripe, so contexts flooding from
    /// different threads never bounce a counter cache line.
    #[allow(clippy::too_many_arguments)]
    fn deliver_fifo_sync(
        &self,
        src_node: u32,
        dst_node: u32,
        src_context: u16,
        rec_fifo: RecFifoId,
        dispatch: u16,
        metadata: bytes::Bytes,
        payload: PayloadSource,
        lane: &MsgIdLane,
        seq_src: &AtomicU64,
        preseq: Option<u64>,
        stage: bool,
        short: bool,
    ) {
        let msg_len = payload.len();
        let src = self.node(src_node);
        let msg_id = lane.next();
        let pin = src_context as usize;
        let dst = self.node(dst_node);
        let fifo = dst.rec.get(rec_fifo.0);
        let npackets = bgq_torus::packet::packets_for(msg_len) as u64;
        // Per-message probes are sampled: one message per window accounts
        // for the whole window (scaled add), so the synchronous hot path
        // touches the telemetry stripes once every
        // MU_PACKET_COUNTER_SAMPLE messages instead of per message.
        if counter_sample_hit(msg_id) {
            src.counters
                .fifo_messages
                .add_pinned(pin, MU_PACKET_COUNTER_SAMPLE);
            src.counters
                .packets_injected
                .add_pinned(pin, npackets * MU_PACKET_COUNTER_SAMPLE);
            dst.counters
                .packets_received
                .add_pinned(pin, npackets * MU_PACKET_COUNTER_SAMPLE);
        }
        // The fate-peeked cut-through draws its sequence numbers before
        // rolling the dice; everyone else draws here.
        let base_seq =
            preseq.unwrap_or_else(|| seq_src.fetch_add(npackets, Ordering::Relaxed));
        let crc_on = self.inner.crc;
        let header = |i: u64| {
            let off = i as usize * MAX_PAYLOAD_BYTES;
            let chunk = (msg_len - off).min(MAX_PAYLOAD_BYTES);
            (off, chunk)
        };
        let stamp = |off: usize, link_seq: u64, staged: &[u8]| {
            if crc_on {
                packet_crc(
                    src_node,
                    src_context,
                    dispatch,
                    msg_id,
                    msg_len as u32,
                    off as u32,
                    link_seq,
                    &metadata,
                    staged,
                )
            } else {
                0
            }
        };
        match payload {
            PayloadSource::Immediate(data) => {
                // Send-immediate already staged the payload in the
                // descriptor; packets carry refcounted slices of it
                // and the injection counter fires now — the source
                // buffer is no longer referenced.
                self.deposit(src_node, dst_node, rec_fifo, fifo, npackets, &mut |i| {
                    let (off, chunk) = header(i);
                    let seq = base_seq + i;
                    MuPacket {
                        src_node,
                        src_context,
                        dispatch,
                        metadata: bytes::Bytes::clone(&metadata),
                        msg_id,
                        msg_len: msg_len as u32,
                        offset: off as u32,
                        link_seq: seq,
                        crc: stamp(off, seq, &data[off..off + chunk]),
                        short,
                        payload: PacketPayload::Inline(data.slice(off..off + chunk)),
                    }
                });
            }
            PayloadSource::Region { region, offset: base, len } => {
                // No whole-message staging buffer in either case:
                // the message fragments directly from the source
                // region into per-packet payloads.
                debug_assert_eq!(len, msg_len);
                if stage {
                    // The sender asked for a completion signal, and
                    // the MU's contract is that the counter hits
                    // zero only once the source buffer has been
                    // read — so model the DMA read now, one packet
                    // slice at a time (counted as per-packet copies
                    // on the *source* node). The counter fires at
                    // the tail of this function and the buffer is
                    // genuinely reusable.
                    src.counters.payload_copies.add_pinned(pin, npackets);
                    self.deposit(src_node, dst_node, rec_fifo, fifo, npackets, &mut |i| {
                        let (off, chunk) = header(i);
                        let mut staged = vec![0u8; chunk];
                        region.read(base + off, &mut staged);
                        let seq = base_seq + i;
                        MuPacket {
                            src_node,
                            src_context,
                            dispatch,
                            metadata: bytes::Bytes::clone(&metadata),
                            msg_id,
                            msg_len: msg_len as u32,
                            offset: off as u32,
                            link_seq: seq,
                            crc: stamp(off, seq, &staged),
                            short,
                            payload: PacketPayload::Inline(bytes::Bytes::from(staged)),
                        }
                    });
                } else {
                    // No completion counter exists, so no correct
                    // program can observe *when* the MU reads the
                    // buffer (there is no synchronization edge to
                    // race with): defer the read all the way to the
                    // receiver's deposit. Packets carry zero-copy
                    // windows into the source region; the one
                    // payload copy happens on the destination node.
                    self.deposit(src_node, dst_node, rec_fifo, fifo, npackets, &mut |i| {
                        let (off, chunk) = header(i);
                        let seq = base_seq + i;
                        MuPacket {
                            src_node,
                            src_context,
                            dispatch,
                            metadata: bytes::Bytes::clone(&metadata),
                            msg_id,
                            msg_len: msg_len as u32,
                            offset: off as u32,
                            link_seq: seq,
                            crc: stamp(off, seq, &[]),
                            short,
                            payload: PacketPayload::Region {
                                region: region.clone(),
                                offset: base + off,
                                len: chunk,
                            },
                        }
                    });
                }
            }
        }
    }

    // ---- reliability layer (active iff a fault plan is installed) ------

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inner.reliability.as_ref().map(|r| r.injector.plan())
    }

    /// Whether the reliability layer is active.
    pub fn reliable(&self) -> bool {
        self.inner.reliability.is_some()
    }

    /// The link-health table (present iff a fault plan is installed).
    pub fn link_health(&self) -> Option<&LinkHealth> {
        self.inner.reliability.as_ref().map(|r| &r.health)
    }

    /// The `ras.*` probes. Always present so the report schema is stable;
    /// all zero without a fault plan.
    pub fn ras_counters(&self) -> &RasCounters {
        &self.inner.ras
    }

    /// Snapshot of the RAS event ring (oldest first) and how many events
    /// overflowed out of it.
    pub fn ras_events(&self) -> (Vec<RasEvent>, u64) {
        self.inner.ring.snapshot()
    }

    /// Administratively kill the physical link out of `node` in direction
    /// `dir` (both directions go down) — the RAS analogue of pulling an
    /// optical module. Requires a fault plan (programmer contract: the
    /// lossless fabric has no health table). Returns `false` if the link
    /// was already down.
    pub fn kill_link(&self, node: u32, dir: Dir) -> bool {
        let rel = self
            .inner
            .reliability
            .as_ref()
            .expect("kill_link requires a fault plan (MuFabricBuilder::fault_plan)");
        let at = self.inner.shape.coords_of(node as usize);
        let peer = self.inner.shape.node_index(self.inner.shape.neighbor(at, dir)) as u32;
        let newly = rel.health.kill(at, dir);
        if newly {
            rel.ras.link_down.add(2);
            rel.ring.record(RasEvent {
                tick: rel.tick(node),
                kind: RasEventKind::LinkDown,
                src_node: node,
                dst_node: peer,
                detail: link_id(node, dir),
            });
        }
        newly
    }

    /// Administratively revive the physical link out of `node` in direction
    /// `dir` (both directions come back up) — the RAS analogue of reseating
    /// the optical module [`MuFabric::kill_link`] pulled. Requires a fault
    /// plan. Returns `false` if the link was not down. `ras.link_down`
    /// stays monotonic (it counts down *events*); recovery is visible
    /// through the `LinkRevived` RAS event, `LinkHealth::down_count`, and
    /// the health epoch bump that invalidates cached routes.
    pub fn revive_link(&self, node: u32, dir: Dir) -> bool {
        let rel = self
            .inner
            .reliability
            .as_ref()
            .expect("revive_link requires a fault plan (MuFabricBuilder::fault_plan)");
        let at = self.inner.shape.coords_of(node as usize);
        let peer = self.inner.shape.node_index(self.inner.shape.neighbor(at, dir)) as u32;
        let newly = rel.health.revive(at, dir);
        if newly {
            rel.ring.record(RasEvent {
                tick: rel.tick(node),
                kind: RasEventKind::LinkRevived,
                src_node: node,
                dst_node: peer,
                detail: link_id(node, dir),
            });
        }
        newly
    }

    /// Clear a dead (src, dst) reliable channel so traffic can flow again
    /// after the underlying failure was repaired — the persistent-channel
    /// renegotiation hook. Resets the retransmit state (fresh RTO, zero
    /// retries, route recomputed at the current health epoch on next use)
    /// and republishes the channel alive. Returns `false` without a fault
    /// plan, for self-sends, or if the channel was not dead. Frames failed
    /// by the kill stay failed — revival is forward-looking only.
    pub fn revive_channel(&self, src_node: u32, dst_node: u32) -> bool {
        let Some(rel) = &self.inner.reliability else { return false };
        if src_node == dst_node {
            return false;
        }
        let ch = rel.channel(src_node, dst_node);
        let mut tx = ch.tx.lock();
        let Some(fault) = tx.dead.take() else { return false };
        tx.route = None;
        // The kill cleared the receiver's reorder buffer; the cursor
        // re-syncs to the next queued frame on the first pump visit.
        debug_assert!(ch.rx.lock().buffer.is_empty());
        ch.publish_alive();
        rel.ring.record(RasEvent {
            tick: rel.tick(src_node),
            kind: RasEventKind::ChannelRevived,
            src_node,
            dst_node,
            detail: fault as u64,
        });
        true
    }

    /// Whether `node` has no frames queued or awaiting retry in its
    /// reliable channels, and no requests in flight in the combining
    /// overlay (lock-free; contexts use it in their idle check). The
    /// overlay's pending count is global — any node with combined atomics
    /// outstanding keeps pumping until the whole overlay drains, which is
    /// what lets a lone context make progress for everyone.
    pub fn links_idle(&self, node: u32) -> bool {
        if self.inner.comb.as_ref().is_some_and(|c| c.pending() > 0) {
            return false;
        }
        self.inner.reliability.as_ref().is_none_or(|r| r.idle(node))
    }

    /// Pump `node`'s reliable channels: transmit queued frames, fire RTO
    /// retransmissions, release delayed frames. Each call advances the
    /// node's link-pump tick (the retry protocol's clock). Returns frames
    /// delivered. No-op without a fault plan.
    ///
    /// Also drives the combining overlay one round (batches move one hop
    /// toward their root) — combining works with or without a fault plan,
    /// so this runs before the reliability early-outs.
    pub fn pump_links(&self, node: u32, budget: usize) -> usize {
        let mut comb_events = 0;
        if let Some(comb) = &self.inner.comb {
            comb_events = comb.pump(
                self.inner.reliability.as_ref().map(|r| &r.injector),
                &self.inner.rmw_locks,
            );
        }
        let Some(rel) = &self.inner.reliability else { return comb_events };
        if rel.idle(node) {
            return comb_events;
        }
        let now = rel.bump_tick(node);
        let mut done = 0;
        for ch in rel.channels_of(node) {
            if done >= budget {
                break;
            }
            let mut guard = ch.tx.lock();
            done += self.pump_channel_locked(rel, ch, &mut guard, now, budget - done);
        }
        done + comb_events
    }

    /// Decompose a descriptor into link-level frames, queue them on the
    /// (src, dst) channel, and attempt immediate transmission (fault-free
    /// frames deliver synchronously, matching the lossless path's
    /// observable behavior; lost frames wait for [`MuFabric::pump_links`]).
    fn execute_reliable(
        &self,
        rel: &Reliability,
        src_node: u32,
        desc: Descriptor,
        lane: &MsgIdLane,
    ) {
        let total_credit = desc.completion_credit();
        let Descriptor {
            dst_node,
            dst_context: _,
            src_context,
            routing: _,
            payload,
            kind,
            inj_counter,
        } = desc;
        let ch = rel.channel(src_node, dst_node);
        // Fair-weather fast path: with a clean plan and every link up a
        // frame cannot be touched in flight, so it is delivered (and
        // thereby acked) synchronously without taking the channel lock or
        // entering the queue — the reliable path's cost at 0% faults is
        // CRC + sequence numbers + ack bookkeeping, not locks and queue
        // churn. Sequence numbers come from the channel's atomic, so the
        // lock exists only for the retransmit queue.
        let fast =
            rel.clean && !rel.health.any_down() && ch.seems_alive() && !ch.has_backlog();
        let kind = match kind {
            XferKind::MemoryFifo { rec_fifo, dispatch, metadata, short } if fast => {
                // Specialized fair-weather fifo path: fragment straight
                // into `MuPacket`s (no link-frame intermediate) exactly as
                // the lossless fabric does, drawing sequence numbers from
                // the channel's atomic so a later fault or kill continues
                // the same sequence space. Synchronous delivery doubles as
                // the ack, so the injection counter fires here.
                self.deliver_fifo_sync(
                    src_node,
                    dst_node,
                    src_context,
                    rec_fifo,
                    dispatch,
                    metadata,
                    payload,
                    lane,
                    &ch.next_seq,
                    None,
                    inj_counter.is_some(),
                    short,
                );
                if let Some(c) = inj_counter {
                    c.delivered(total_credit);
                }
                return;
            }
            // Fate-peeked cut-through, the selective-repeat analog of the
            // fair-weather bypass: the fault dice are pure functions of
            // (link, seq, attempt), so under a hostile plan the sender
            // draws the message's sequence numbers up front and rolls
            // every packet's forward fate and reverse ack fate before
            // committing to the queue. If they all pass — the
            // overwhelmingly common case at percent-level loss — the
            // message delivers synchronously exactly as the clean path
            // does, lock-free; any unlucky die sends the message to the
            // retransmit queue *under the already-drawn seqs*, so the
            // pump re-rolls these same dice and records the loss exactly
            // as if the peek never happened. Either way each seq's dice
            // are consumed exactly once and the fault plan's statistics
            // are untouched. Guards: selective repeat only (go-back-N
            // keeps its committed behavior bit for bit), no kill
            // schedules (crossing counts must stay exact), every link up
            // (then the route is the deterministic one, precomputed per
            // channel), channel alive with an empty queue. The liveness
            // and backlog hints race a concurrent fault episode by at
            // most one in-flight message — the same window the clean
            // bypass already accepts.
            XferKind::MemoryFifo { rec_fifo, dispatch, metadata, short }
                if !rel.clean
                    && rel.injector.protocol() == LinkProtocol::SelectiveRepeat
                    && !rel.injector.has_kills()
                    && rel.injector.uniform_thresholds().is_some()
                    && !rel.health.any_down()
                    && ch.seems_alive()
                    && !ch.has_backlog() =>
            {
                let npackets = bgq_torus::packet::packets_for(payload.len()) as u64;
                let base = ch.next_seq.fetch_add(npackets, Ordering::Relaxed);
                let (pass_thr, ack_thr) = rel
                    .injector
                    .uniform_thresholds()
                    .expect("guard requires a uniform-rate plan");
                let plan = self.fair_plan(rel, ch);
                // One finalizer per die: each forward hop must come up
                // `Pass`, each reverse (ack) hop `Pass` or `Delay` — the
                // threshold forms of exactly the `decide` calls the pump
                // would make for these frames.
                let all_pass = (0..npackets).all(|i| {
                    let ss = FaultInjector::seq_salt(base + i, 0);
                    plan.fwd_salts
                        .iter()
                        .all(|&ls| FaultInjector::draw(ls, ss) >= pass_thr)
                        && plan
                            .rev_salts
                            .iter()
                            .all(|&ls| FaultInjector::draw(ls, ss) >= ack_thr)
                });
                if all_pass {
                    self.deliver_fifo_sync(
                        src_node,
                        dst_node,
                        src_context,
                        rec_fifo,
                        dispatch,
                        metadata,
                        payload,
                        lane,
                        &ch.next_seq,
                        Some(base),
                        inj_counter.is_some(),
                        short,
                    );
                    if let Some(t) = &self.inner.transport {
                        for _ in 0..npackets {
                            t.deliver_control(dst_node, src_node, Self::ACK_WIRE_BYTES);
                        }
                    }
                    if let Some(c) = inj_counter {
                        c.delivered(total_credit);
                    }
                    return;
                }
                self.enqueue_fifo_frames(
                    rel,
                    ch,
                    base,
                    src_node,
                    dst_node,
                    src_context,
                    rec_fifo,
                    dispatch,
                    metadata,
                    payload,
                    lane,
                    inj_counter,
                    total_credit,
                    short,
                );
                return;
            }
            // Put/Get on a clean fabric still use the generic lock-free
            // frame emit below (not message-rate critical).
            other => other,
        };
        let mut guard = if fast { None } else { Some(ch.tx.lock()) };
        let dead = guard.as_ref().and_then(|g| g.dead);
        let rto_init = rel.injector.retry().rto_ticks;
        let mut queued = 0usize;
        let mut failed = 0u64;
        {
        let guard_ref = &mut guard;
        let mut emit = |credit: u64, body: FrameBody| {
            if let Some(fault) = dead {
                // The channel already failed: surface the same fault to
                // this transfer's counters instead of queueing into a
                // black hole.
                failed += fail_body(&body, fault);
                return;
            }
            let seq = ch.next_seq.fetch_add(1, Ordering::Relaxed);
            let frame = Frame {
                seq,
                attempt: 0,
                state: FrameState::Queued,
                retries: 0,
                rto: rto_init,
                credit,
                inj_counter: inj_counter.clone(),
                body,
            };
            match guard_ref.as_mut() {
                None => self.deliver_frame(rel, ch, frame),
                Some(tx) => {
                    tx.queue.push_back(frame);
                    queued += 1;
                }
            }
        };
        match kind {
            XferKind::MemoryFifo { rec_fifo, dispatch, metadata, short } => {
                let msg_len = payload.len();
                let src = self.node(src_node);
                let msg_id = lane.next();
                src.counters.fifo_messages.incr();
                let npackets = bgq_torus::packet::packets_for(msg_len) as u64;
                src.counters.packets_injected.add(npackets);
                // With a completion counter the DMA read is modeled at
                // frame creation (as on the direct path) — but the counter
                // itself fires on link-level ack, so a dead channel can
                // fail it instead of completing a lost message.
                let stage = inj_counter.is_some()
                    && matches!(payload, PayloadSource::Region { .. });
                if stage {
                    src.counters.payload_copies.add(npackets);
                }
                for i in 0..npackets {
                    let off = i as usize * MAX_PAYLOAD_BYTES;
                    let chunk = (msg_len - off).min(MAX_PAYLOAD_BYTES);
                    let fp = match &payload {
                        PayloadSource::Immediate(data) => {
                            FramePayload::Inline(data.slice(off..off + chunk))
                        }
                        PayloadSource::Region { region, offset: base, len } => {
                            debug_assert_eq!(*len, msg_len);
                            if stage {
                                let mut staged = vec![0u8; chunk];
                                region.read(base + off, &mut staged);
                                FramePayload::Inline(bytes::Bytes::from(staged))
                            } else {
                                FramePayload::Region {
                                    region: region.clone(),
                                    offset: base + off,
                                    len: chunk,
                                }
                            }
                        }
                    };
                    let credit = if msg_len == 0 { total_credit } else { chunk as u64 };
                    emit(
                        credit,
                        FrameBody::Packet {
                            rec_fifo,
                            src_context,
                            dispatch,
                            metadata: bytes::Bytes::clone(&metadata),
                            msg_id,
                            msg_len: msg_len as u32,
                            offset: off as u32,
                            short,
                            payload: fp,
                        },
                    );
                }
            }
            XferKind::DirectPut { dst_region, dst_offset, rec_counter } => {
                let len = payload.len();
                if len == 0 {
                    emit(
                        total_credit,
                        FrameBody::Put {
                            dst_region,
                            dst_offset,
                            payload: FramePayload::Inline(bytes::Bytes::new()),
                            rec_counter,
                        },
                    );
                } else {
                    let nchunks = bgq_torus::packet::packets_for(len) as u64;
                    for i in 0..nchunks {
                        let off = i as usize * MAX_PAYLOAD_BYTES;
                        let chunk = (len - off).min(MAX_PAYLOAD_BYTES);
                        let fp = match &payload {
                            PayloadSource::Immediate(data) => {
                                FramePayload::Inline(data.slice(off..off + chunk))
                            }
                            PayloadSource::Region { region, offset: base, .. } => {
                                FramePayload::Region {
                                    region: region.clone(),
                                    offset: base + off,
                                    len: chunk,
                                }
                            }
                        };
                        emit(
                            chunk as u64,
                            FrameBody::Put {
                                dst_region: dst_region.clone(),
                                dst_offset: dst_offset + off,
                                payload: fp,
                                rec_counter: rec_counter.clone(),
                            },
                        );
                    }
                }
            }
            XferKind::RemoteGet { payload: get_desc } => {
                emit(total_credit, FrameBody::Get { desc: get_desc });
            }
            XferKind::Rmw { win_key, dst_region, dst_offset, op, operand, compare, reply } => {
                // One frame per rmw: the channel's sequence dedup gives the
                // retransmitted atomic exactly-once application for free.
                emit(
                    total_credit,
                    FrameBody::Rmw { win_key, dst_region, dst_offset, op, operand, compare, reply },
                );
            }
        }
        }
        if let Some(fault) = dead {
            if let Some(c) = &inj_counter {
                failed += c.fail(fault) as u64;
            }
            rel.ras.delivery_failures.add(failed);
            rel.ring.record(RasEvent {
                tick: rel.tick(src_node),
                kind: RasEventKind::DeliveryFailure,
                src_node,
                dst_node,
                detail: fault as u64,
            });
            return;
        }
        if queued > 0 {
            rel.add_pending(src_node, queued);
            ch.publish_backlog(true);
            let now = rel.tick(src_node);
            let guard = guard.as_mut().expect("slow path holds the channel lock");
            self.pump_channel_locked(rel, ch, guard, now, usize::MAX);
        }
    }

    /// The channel state machine. `now` is the node's link-pump tick;
    /// `budget` caps deliveries. Dispatches on the plan's
    /// [`LinkProtocol`]: selective repeat works a window of frames with
    /// lossy acks, go-back-N reproduces the original front-frame protocol
    /// for A/B runs. Holding the channel lock across delivery is safe —
    /// delivery never takes another channel's lock.
    fn pump_channel_locked(
        &self,
        rel: &Reliability,
        ch: &Channel,
        guard: &mut MutexGuard<'_, TxState>,
        now: u64,
        budget: usize,
    ) -> usize {
        let tx: &mut TxState = guard;
        if tx.dead.is_some() {
            return 0;
        }
        let done = match rel.injector.protocol() {
            LinkProtocol::SelectiveRepeat => {
                self.pump_selective_repeat(rel, ch, tx, now, budget)
            }
            LinkProtocol::GoBackN => self.pump_go_back_n(rel, ch, tx, now, budget),
        };
        if tx.dead.is_none() {
            ch.publish_backlog(!tx.queue.is_empty());
        }
        done
    }

    /// The channel's deterministic route in hot-path form, built once and
    /// read lock-free. Only meaningful while every link is up — exactly
    /// when `healthy_route` returns the deterministic route, so this is
    /// the same plan `ensure_route` would cache under the lock.
    fn fair_plan<'a>(&self, rel: &Reliability, ch: &'a Channel) -> &'a Arc<RoutePlan> {
        ch.fair_plan.get_or_init(|| {
            let shape = self.inner.shape;
            let src_c = shape.coords_of(ch.src as usize);
            let dst_c = shape.coords_of(ch.dst as usize);
            let route = bgq_torus::det_route(shape, src_c, dst_c);
            Arc::new(Self::build_route_plan(rel, shape, src_c, dst_c, &route))
        })
    }

    /// Resolve a route's coordinate arithmetic and dice keys once, into
    /// exactly what the per-frame hot path needs.
    fn build_route_plan(
        rel: &Reliability,
        shape: TorusShape,
        src_c: Coords,
        dst_c: Coords,
        route: &[Dir],
    ) -> RoutePlan {
        let mut hops = Vec::with_capacity(route.len());
        let mut fwd_salts = Vec::with_capacity(route.len());
        let mut at = src_c;
        for &dir in route {
            let lid = link_id(shape.node_index(at) as u32, dir);
            hops.push((lid, at, dir));
            fwd_salts.push(rel.injector.link_salt(lid));
            at = shape.neighbor(at, dir);
        }
        let mut rev_lids = Vec::with_capacity(route.len());
        let mut rev_salts = Vec::with_capacity(route.len());
        let mut rat = dst_c;
        for &dir in route.iter().rev() {
            let back = dir.reverse();
            let lid = link_id(shape.node_index(rat) as u32, back);
            rev_lids.push(lid);
            rev_salts.push(rel.injector.link_salt(lid));
            rat = shape.neighbor(rat, back);
        }
        RoutePlan { hops, rev_lids, fwd_salts, rev_salts }
    }

    /// Queue a MemoryFifo message whose sequence numbers were already
    /// drawn by the fate-peeked cut-through: one frame per packet,
    /// carrying the pre-drawn seqs so the pump's dice rolls match the
    /// peek, then pump the channel inline exactly as the generic slow
    /// path does after an emit.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_fifo_frames(
        &self,
        rel: &Reliability,
        ch: &Channel,
        base_seq: u64,
        src_node: u32,
        dst_node: u32,
        src_context: u16,
        rec_fifo: RecFifoId,
        dispatch: u16,
        metadata: bytes::Bytes,
        payload: PayloadSource,
        lane: &MsgIdLane,
        inj_counter: Option<bgq_hw::Counter>,
        total_credit: u64,
        short: bool,
    ) {
        let msg_len = payload.len();
        let src = self.node(src_node);
        let msg_id = lane.next();
        src.counters.fifo_messages.incr();
        let npackets = bgq_torus::packet::packets_for(msg_len) as u64;
        src.counters.packets_injected.add(npackets);
        let stage = inj_counter.is_some() && matches!(payload, PayloadSource::Region { .. });
        if stage {
            src.counters.payload_copies.add(npackets);
        }
        let rto_init = rel.injector.retry().rto_ticks;
        let mut guard = ch.tx.lock();
        let dead = guard.dead;
        let mut failed = 0u64;
        let mut queued = 0usize;
        for i in 0..npackets {
            let off = i as usize * MAX_PAYLOAD_BYTES;
            let chunk = (msg_len - off).min(MAX_PAYLOAD_BYTES);
            let fp = match &payload {
                PayloadSource::Immediate(data) => {
                    FramePayload::Inline(data.slice(off..off + chunk))
                }
                PayloadSource::Region { region, offset: base, len } => {
                    debug_assert_eq!(*len, msg_len);
                    if stage {
                        let mut staged = vec![0u8; chunk];
                        region.read(base + off, &mut staged);
                        FramePayload::Inline(bytes::Bytes::from(staged))
                    } else {
                        FramePayload::Region {
                            region: region.clone(),
                            offset: base + off,
                            len: chunk,
                        }
                    }
                }
            };
            let credit = if msg_len == 0 { total_credit } else { chunk as u64 };
            let body = FrameBody::Packet {
                rec_fifo,
                src_context,
                dispatch,
                metadata: bytes::Bytes::clone(&metadata),
                msg_id,
                msg_len: msg_len as u32,
                offset: off as u32,
                short,
                payload: fp,
            };
            if let Some(fault) = dead {
                // The liveness hint raced a concurrent kill: surface the
                // fault to this transfer's counters, as the emit path does.
                failed += fail_body(&body, fault);
                continue;
            }
            let seq = base_seq + i;
            // A concurrent sender's draw may have reached the queue
            // first: insert in sequence order, which the pump relies on.
            let pos = guard.queue.partition_point(|f| f.seq < seq);
            guard.queue.insert(
                pos,
                Frame {
                    seq,
                    attempt: 0,
                    state: FrameState::Queued,
                    retries: 0,
                    rto: rto_init,
                    credit,
                    inj_counter: inj_counter.clone(),
                    body,
                },
            );
            queued += 1;
        }
        if let Some(fault) = dead {
            drop(guard);
            if let Some(c) = &inj_counter {
                failed += c.fail(fault) as u64;
            }
            rel.ras.delivery_failures.add(failed);
            rel.ring.record(RasEvent {
                tick: rel.tick(src_node),
                kind: RasEventKind::DeliveryFailure,
                src_node,
                dst_node,
                detail: fault as u64,
            });
            return;
        }
        rel.add_pending(src_node, queued);
        ch.publish_backlog(true);
        let now = rel.tick(src_node);
        self.pump_channel_locked(rel, ch, &mut guard, now, usize::MAX);
    }

    /// Make sure `tx` holds a route computed at the current health epoch.
    /// Kills the channel (`Unreachable`) and returns `None` when no
    /// healthy route exists.
    fn ensure_route(
        &self,
        rel: &Reliability,
        ch: &Channel,
        tx: &mut TxState,
        now: u64,
    ) -> Option<Arc<RoutePlan>> {
        let epoch = rel.health.epoch();
        if tx.route.is_none() || tx.route_epoch != epoch {
            let shape = self.inner.shape;
            let src_c = shape.coords_of(ch.src as usize);
            let dst_c = shape.coords_of(ch.dst as usize);
            match healthy_route(shape, src_c, dst_c, &rel.health) {
                Some(route) => {
                    if rel.health.any_down()
                        && route != bgq_torus::det_route(shape, src_c, dst_c)
                    {
                        rel.ras.reroutes.incr();
                        rel.ring.record(RasEvent {
                            tick: now,
                            kind: RasEventKind::Reroute,
                            src_node: ch.src,
                            dst_node: ch.dst,
                            detail: route.len() as u64,
                        });
                    }
                    // Resolve the coordinate arithmetic once: the hot
                    // path crosses frames (and their acks) against the
                    // precomputed link ids and dice salts only.
                    tx.route = Some(Arc::new(Self::build_route_plan(
                        rel, shape, src_c, dst_c, &route,
                    )));
                    tx.route_epoch = epoch;
                }
                None => {
                    self.kill_channel(rel, ch, tx, DeliveryFault::Unreachable, now);
                    return None;
                }
            }
        }
        tx.route.clone()
    }

    /// Walk the route's links with one data frame; kill schedules and
    /// per-link fates apply, first bad link wins. Returns the frame's fate
    /// and whether a kill schedule fired (cached route invalidated by the
    /// caller).
    fn cross_links(
        &self,
        rel: &Reliability,
        ch: &Channel,
        route: &RoutePlan,
        seq: u64,
        attempt: u32,
        now: u64,
    ) -> (Fate, bool) {
        // Kill schedules are rare; hoist the probe so schedule-free plans
        // pay one branch per frame instead of a map lookup per hop.
        let check_kills = rel.injector.has_kills();
        for &(lid, at, dir) in &route.hops {
            if check_kills && rel.injector.note_crossing(lid) {
                if rel.health.kill(at, dir) {
                    rel.ras.link_down.add(2);
                    rel.ring.record(RasEvent {
                        tick: now,
                        kind: RasEventKind::LinkDown,
                        src_node: ch.src,
                        dst_node: ch.dst,
                        detail: lid,
                    });
                }
                return (Fate::Drop, true);
            }
            match rel.injector.decide(lid, seq, attempt) {
                Fate::Pass => {}
                f => return (f, false),
            }
        }
        (Fate::Pass, false)
    }

    /// Ack wire cost charged to the transport seam when an ack crosses the
    /// reverse route: sequence number + SACK bitmap + CRC, no payload.
    const ACK_WIRE_BYTES: u64 = 32;

    /// Roll the per-link fate dice for an ack crossing the reverse route
    /// (destination back to source). Ack crossings never advance kill
    /// schedules — kill-at-Nth-frame plans count data frames only — but
    /// they reuse the same deterministic dice keyed by the reverse link
    /// ids, so replay stays bit-for-bit per seed. A passing ack is charged
    /// to the transport seam as a control frame.
    fn ack_crosses(
        &self,
        rel: &Reliability,
        ch: &Channel,
        route: &RoutePlan,
        seq: u64,
        attempt: u32,
    ) -> bool {
        if !rel.clean {
            for &lid in &route.rev_lids {
                match rel.injector.decide(lid, seq, attempt) {
                    // A delayed ack still arrives — only loss (drop or
                    // corruption) forces the sender to probe. Modeled as
                    // on-time because the in-process protocol has no
                    // reverse-path event queue to defer it on.
                    Fate::Pass | Fate::Delay(_) => {}
                    Fate::Drop | Fate::Corrupt => return false,
                }
            }
        }
        if let Some(t) = &self.inner.transport {
            t.deliver_control(ch.dst, ch.src, Self::ACK_WIRE_BYTES);
        }
        true
    }

    /// Retire every frame the cumulative ack through `cum` covers: pop the
    /// queue prefix and credit the source completion counters. All popped
    /// frames have already been deposited at the destination.
    fn retire_through(&self, rel: &Reliability, ch: &Channel, tx: &mut TxState, cum: u64) {
        let mut n = 0;
        while let Some(front) = tx.queue.front() {
            if cum.wrapping_sub(front.seq) >= 1 << 63 {
                break;
            }
            let frame = tx.queue.pop_front().expect("front exists");
            // The frame's data was delivered (its seq is behind the
            // receive cursor) even if a probe left it Lost/Delayed/Queued;
            // only SackHeld bodies are still undelivered, and those sit
            // above the cursor by construction.
            debug_assert!(
                !matches!(frame.state, FrameState::SackHeld),
                "cumulative ack never covers a reorder-buffered frame"
            );
            if let Some(c) = &frame.inj_counter {
                c.delivered(frame.credit);
            }
            n += 1;
        }
        if n > 0 {
            rel.sub_pending(ch.src, n);
        }
    }

    /// Process one data-frame arrival at the receiver under selective
    /// repeat: classify it against the reorder state, deposit what became
    /// deliverable, and apply the (possibly lost) ack to the sender's
    /// queue. Returns how the caller's scan should continue.
    #[allow(clippy::too_many_arguments)]
    fn sr_arrival(
        &self,
        rel: &Reliability,
        ch: &Channel,
        tx: &mut TxState,
        idx: usize,
        seq: u64,
        now: u64,
        ack: bool,
        done: &mut usize,
    ) -> Arrival {
        let verdict = ch.rx.lock().accept(seq);
        match verdict {
            RxVerdict::Deliver => {
                // The data crossed in order: deposit it now, then drain
                // the consecutive run of buffered successors it unblocked.
                {
                    let f = &mut tx.queue[idx];
                    let (fseq, credit) = (f.seq, f.credit);
                    self.deliver_body(ch, fseq, credit, &f.body);
                    f.state = FrameState::AckWait { since: now };
                }
                *done += 1;
                let mut cum = seq;
                let mut j = idx + 1;
                while let Some(f) = tx.queue.get(j) {
                    if f.state != FrameState::SackHeld {
                        break;
                    }
                    let fseq = f.seq;
                    if !ch.rx.lock().drain_next(fseq) {
                        break;
                    }
                    let f = &mut tx.queue[j];
                    let credit = f.credit;
                    self.deliver_body(ch, fseq, credit, &f.body);
                    f.state = FrameState::AckWait { since: now };
                    *done += 1;
                    cum = fseq;
                    j += 1;
                }
                if ack {
                    self.retire_through(rel, ch, tx, cum);
                    Arrival::Restart
                } else {
                    // Ack lost: the delivered frames stay queued in
                    // AckWait until an RTO probe re-elicits the
                    // cumulative ack.
                    Arrival::Advance
                }
            }
            RxVerdict::Sacked => {
                rel.ras.reorder_depth.incr();
                if !ack {
                    // The selective ack was lost: the sender cannot know
                    // the receiver holds the data, so the frame must be
                    // retried (the receiver will answer the duplicate).
                    tx.queue[idx].state = FrameState::Lost { since: now };
                    return Arrival::Advance;
                }
                tx.queue[idx].state = FrameState::SackHeld;
                // SACK fast retransmit: the selective ack proves later
                // data crossed, so earlier lost frames needn't wait out
                // their RTO. These retransmits are free — they do not
                // count against the retry budget.
                let mut any = false;
                for j in 0..idx {
                    let f = &mut tx.queue[j];
                    if matches!(f.state, FrameState::Lost { .. }) {
                        f.state = FrameState::Queued;
                        f.attempt += 1;
                        let fseq = f.seq;
                        any = true;
                        rel.ras.retransmits.incr();
                        rel.ras.sack_retransmits.incr();
                        rel.ring.record(RasEvent {
                            tick: now,
                            kind: RasEventKind::SackRetransmit,
                            src_node: ch.src,
                            dst_node: ch.dst,
                            detail: fseq,
                        });
                    }
                }
                if any {
                    Arrival::FastRetransmit
                } else {
                    Arrival::Advance
                }
            }
            RxVerdict::DupSacked => {
                // Receiver already holds it; the re-sent selective ack
                // settles the frame (or is lost again).
                tx.queue[idx].state = if ack {
                    FrameState::SackHeld
                } else {
                    FrameState::Lost { since: now }
                };
                Arrival::Advance
            }
            RxVerdict::Duplicate => {
                // The receiver delivered this data earlier (the ack was
                // lost); the probe re-elicits the cumulative ack.
                tx.queue[idx].state = FrameState::AckWait { since: now };
                if ack {
                    let cum = ch.rx.lock().next_expected.wrapping_sub(1);
                    self.retire_through(rel, ch, tx, cum);
                    Arrival::Restart
                } else {
                    Arrival::Advance
                }
            }
            RxVerdict::Refused => {
                // Reorder buffer at its high-water mark: drop-newest. Not
                // a wire fault, so no retry-budget charge.
                rel.ring.record(RasEvent {
                    tick: now,
                    kind: RasEventKind::ReorderEvict,
                    src_node: ch.src,
                    dst_node: ch.dst,
                    detail: seq,
                });
                tx.queue[idx].state = FrameState::Lost { since: now };
                Arrival::Advance
            }
        }
    }

    /// Selective repeat: work up to a window of frames per visit. Each
    /// transmission rolls per-link fates on the forward route; each
    /// arrival gets a verdict from the receiver's reorder state and an ack
    /// that rolls the reverse route's dice (see `crate::link` docs for the
    /// modeling choices). Blocked frames are skipped, so a lost frame at
    /// the front never head-of-line-blocks the rest of the window.
    fn pump_selective_repeat(
        &self,
        rel: &Reliability,
        ch: &Channel,
        tx: &mut TxState,
        now: u64,
        budget: usize,
    ) -> usize {
        let retry = rel.injector.retry();
        let mut done = 0usize;
        // `sent` counts transmissions this visit; the retry window bounds
        // it (acks are immediate in-process, so the window is a per-tick
        // transmission bound rather than an in-flight bound — see
        // `crate::link` docs).
        let mut sent = 0usize;
        // Catch the reorder cursor up past anything the fair-weather path
        // delivered without touching it.
        if let Some(front) = tx.queue.front() {
            ch.rx.lock().sync_to(front.seq);
        }
        let mut rescan = true;
        while rescan && done < budget && sent < retry.window {
            rescan = false;
            let mut idx = 0usize;
            while idx < tx.queue.len()
                && idx < retry.window
                && done < budget
                && sent < retry.window
            {
                let (state, seq, attempt) = {
                    let f = &tx.queue[idx];
                    (f.state, f.seq, f.attempt)
                };
                match state {
                    FrameState::SackHeld => {
                        // Parked at the receiver; retires via cumulative
                        // ack when the gap ahead of it fills.
                        idx += 1;
                    }
                    FrameState::Delayed { until } => {
                        if now < until {
                            idx += 1;
                            continue;
                        }
                        // The delayed frame arrives now.
                        let Some(route) = self.ensure_route(rel, ch, tx, now) else {
                            return done;
                        };
                        let ack = self.ack_crosses(rel, ch, &route, seq, attempt);
                        match self.sr_arrival(rel, ch, tx, idx, seq, now, ack, &mut done) {
                            Arrival::Advance => idx += 1,
                            Arrival::Restart => idx = 0,
                            Arrival::FastRetransmit => {
                                rescan = true;
                                idx += 1;
                            }
                        }
                    }
                    FrameState::Lost { since } | FrameState::AckWait { since } => {
                        let (rto, retries) = {
                            let f = &tx.queue[idx];
                            (f.rto, f.retries)
                        };
                        if now.saturating_sub(since) < rto {
                            idx += 1;
                            continue;
                        }
                        if retries + 1 > retry.retry_budget {
                            self.kill_channel(rel, ch, tx, DeliveryFault::Timeout, now);
                            return done;
                        }
                        rel.ras.retransmits.incr();
                        rel.ring.record(RasEvent {
                            tick: now,
                            kind: RasEventKind::Retransmit,
                            src_node: ch.src,
                            dst_node: ch.dst,
                            detail: seq,
                        });
                        let f = &mut tx.queue[idx];
                        f.retries += 1;
                        f.rto = rto.saturating_mul(2).min(retry.rto_max_ticks);
                        f.attempt += 1;
                        f.state = FrameState::Queued;
                        // Same index re-examined: the frame transmits now.
                    }
                    FrameState::Queued => {
                        sent += 1;
                        // Fair-weather: a clean plan with all links up
                        // cannot touch the frame or its ack.
                        if rel.clean && !rel.health.any_down() {
                            if let Some(t) = &self.inner.transport {
                                t.deliver_control(ch.dst, ch.src, Self::ACK_WIRE_BYTES);
                            }
                            match self.sr_arrival(rel, ch, tx, idx, seq, now, true, &mut done)
                            {
                                Arrival::Advance => idx += 1,
                                Arrival::Restart => idx = 0,
                                Arrival::FastRetransmit => {
                                    rescan = true;
                                    idx += 1;
                                }
                            }
                            continue;
                        }
                        let Some(route) = self.ensure_route(rel, ch, tx, now) else {
                            return done;
                        };
                        let (fate, link_died) =
                            self.cross_links(rel, ch, &route, seq, attempt, now);
                        match fate {
                            Fate::Pass => {
                                let ack = self.ack_crosses(rel, ch, &route, seq, attempt);
                                match self
                                    .sr_arrival(rel, ch, tx, idx, seq, now, ack, &mut done)
                                {
                                    Arrival::Advance => idx += 1,
                                    Arrival::Restart => idx = 0,
                                    Arrival::FastRetransmit => {
                                        rescan = true;
                                        idx += 1;
                                    }
                                }
                            }
                            Fate::Drop => {
                                self.node(ch.src).counters.packets_dropped.incr();
                                rel.ring.record(RasEvent {
                                    tick: now,
                                    kind: RasEventKind::PacketDropped,
                                    src_node: ch.src,
                                    dst_node: ch.dst,
                                    detail: seq,
                                });
                                if link_died {
                                    tx.route = None;
                                }
                                tx.queue[idx].state = FrameState::Lost { since: now };
                                idx += 1;
                            }
                            Fate::Corrupt => {
                                rel.ras.crc_errors.incr();
                                rel.ring.record(RasEvent {
                                    tick: now,
                                    kind: RasEventKind::CrcError,
                                    src_node: ch.src,
                                    dst_node: ch.dst,
                                    detail: seq,
                                });
                                tx.queue[idx].state = FrameState::Lost { since: now };
                                idx += 1;
                            }
                            Fate::Delay(n) => {
                                tx.queue[idx].state =
                                    FrameState::Delayed { until: now + n as u64 };
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
        done
    }

    /// Go-back-N over the front frame: the original protocol, acks modeled
    /// lossless, kept selectable through [`LinkProtocol::GoBackN`] for A/B
    /// runs against selective repeat.
    fn pump_go_back_n(
        &self,
        rel: &Reliability,
        ch: &Channel,
        tx: &mut TxState,
        now: u64,
        budget: usize,
    ) -> usize {
        let retry = rel.injector.retry();
        let mut done = 0;
        let mut sent = 0usize;
        while done < budget && sent < retry.window {
            let Some(front) = tx.queue.front() else { break };
            let (state, seq, attempt) = (front.state, front.seq, front.attempt);
            match state {
                FrameState::Delayed { until } => {
                    if now < until {
                        break;
                    }
                    let frame = tx.queue.pop_front().expect("front exists");
                    self.deliver_frame(rel, ch, frame);
                    rel.sub_pending(ch.src, 1);
                    done += 1;
                }
                FrameState::Lost { since } => {
                    let (rto, retries) = {
                        let f = tx.queue.front().expect("front exists");
                        (f.rto, f.retries)
                    };
                    if now.saturating_sub(since) < rto {
                        break;
                    }
                    if retries + 1 > retry.retry_budget {
                        self.kill_channel(rel, ch, tx, DeliveryFault::Timeout, now);
                        return done;
                    }
                    rel.ras.retransmits.incr();
                    rel.ring.record(RasEvent {
                        tick: now,
                        kind: RasEventKind::Retransmit,
                        src_node: ch.src,
                        dst_node: ch.dst,
                        detail: seq,
                    });
                    let front = tx.queue.front_mut().expect("front exists");
                    front.retries += 1;
                    front.rto = rto.saturating_mul(2).min(retry.rto_max_ticks);
                    front.attempt += 1;
                    front.state = FrameState::Queued;
                    sent += 1;
                }
                FrameState::Queued => {
                    // Fast path: a clean plan with all links up cannot
                    // touch this frame.
                    if rel.clean && !rel.health.any_down() {
                        let frame = tx.queue.pop_front().expect("front exists");
                        self.deliver_frame(rel, ch, frame);
                        rel.sub_pending(ch.src, 1);
                        done += 1;
                        sent += 1;
                        continue;
                    }
                    let Some(route) = self.ensure_route(rel, ch, tx, now) else {
                        return done;
                    };
                    // Transmit: walk the route's links; kill schedules and
                    // per-link fates apply, first bad link wins.
                    let (fate, link_died) =
                        self.cross_links(rel, ch, &route, seq, attempt, now);
                    match fate {
                        Fate::Pass => {
                            let frame = tx.queue.pop_front().expect("front exists");
                            self.deliver_frame(rel, ch, frame);
                            rel.sub_pending(ch.src, 1);
                            done += 1;
                            sent += 1;
                        }
                        Fate::Drop => {
                            self.node(ch.src).counters.packets_dropped.incr();
                            rel.ring.record(RasEvent {
                                tick: now,
                                kind: RasEventKind::PacketDropped,
                                src_node: ch.src,
                                dst_node: ch.dst,
                                detail: seq,
                            });
                            if link_died {
                                tx.route = None;
                            }
                            tx.queue.front_mut().expect("front exists").state =
                                FrameState::Lost { since: now };
                            break;
                        }
                        Fate::Corrupt => {
                            rel.ras.crc_errors.incr();
                            rel.ring.record(RasEvent {
                                tick: now,
                                kind: RasEventKind::CrcError,
                                src_node: ch.src,
                                dst_node: ch.dst,
                                detail: seq,
                            });
                            tx.queue.front_mut().expect("front exists").state =
                                FrameState::Lost { since: now };
                            break;
                        }
                        Fate::Delay(n) => {
                            tx.queue.front_mut().expect("front exists").state =
                                FrameState::Delayed { until: now + n as u64 };
                            break;
                        }
                    }
                }
                FrameState::AckWait { .. } | FrameState::SackHeld => {
                    unreachable!("go-back-N never parks frames in selective-repeat states")
                }
            }
        }
        done
    }

    /// Permanently fail a channel: mark it dead, fail every queued frame's
    /// completion counters with `fault`, and record the RAS event. Pollers
    /// of those counters observe completion-with-fault, never a hang.
    fn kill_channel(
        &self,
        rel: &Reliability,
        ch: &Channel,
        tx: &mut TxState,
        fault: DeliveryFault,
        now: u64,
    ) {
        tx.dead = Some(fault);
        ch.publish_dead();
        ch.publish_backlog(false);
        let n = tx.queue.len();
        let mut failed = 0;
        for f in &tx.queue {
            failed += f.fail(fault);
        }
        tx.queue.clear();
        // Frames parked in the receiver's reorder buffer died with the
        // channel (their bodies were still in the queue above).
        ch.rx.lock().buffer.clear();
        if n > 0 {
            rel.sub_pending(ch.src, n);
        }
        rel.ras.delivery_failures.add(failed);
        rel.ring.record(RasEvent {
            tick: now,
            kind: RasEventKind::DeliveryFailure,
            src_node: ch.src,
            dst_node: ch.dst,
            detail: fault as u64,
        });
    }

    /// Deliver one frame to its destination (the frame "crossed the wire"
    /// intact) and acknowledge it: credit the source completion counter.
    /// Go-back-N and fair-weather path: delivery doubles as the ack.
    fn deliver_frame(&self, rel: &Reliability, ch: &Channel, frame: Frame) {
        let _ = rel;
        let Frame { seq, credit, inj_counter, body, .. } = frame;
        self.deliver_body(ch, seq, credit, &body);
        if let Some(c) = inj_counter {
            c.delivered(credit);
        }
    }

    /// Deposit one frame body at the destination — the data crossed the
    /// wire — without crediting the source completion counter (under
    /// selective repeat that happens when the cumulative ack arrives; see
    /// [`MuFabric::retire_through`]). Borrows the body because the frame
    /// stays queued until acked; the clones below are refcount bumps.
    fn deliver_body(&self, ch: &Channel, seq: u64, credit: u64, body: &FrameBody) {
        match body {
            FrameBody::Packet {
                rec_fifo,
                src_context,
                dispatch,
                metadata,
                msg_id,
                msg_len,
                offset,
                short,
                payload,
            } => {
                let staged: &[u8] = match payload {
                    FramePayload::Inline(b) => b,
                    FramePayload::Region { .. } => &[],
                };
                let crc = if self.inner.crc {
                    packet_crc(
                        ch.src,
                        *src_context,
                        *dispatch,
                        *msg_id,
                        *msg_len,
                        *offset,
                        seq,
                        metadata,
                        staged,
                    )
                } else {
                    0
                };
                let pkt_payload = match payload {
                    FramePayload::Inline(b) => PacketPayload::Inline(b.clone()),
                    FramePayload::Region { region, offset, len } => {
                        PacketPayload::Region { region: region.clone(), offset: *offset, len: *len }
                    }
                };
                let dst = self.node(ch.dst);
                let mut pkt = Some(MuPacket {
                    src_node: ch.src,
                    src_context: *src_context,
                    dispatch: *dispatch,
                    metadata: metadata.clone(),
                    msg_id: *msg_id,
                    msg_len: *msg_len,
                    offset: *offset,
                    link_seq: seq,
                    crc,
                    short: *short,
                    payload: pkt_payload,
                });
                self.deposit(ch.src, ch.dst, *rec_fifo, dst.rec.get(rec_fifo.0), 1, &mut |_| {
                    pkt.take().expect("one frame, one packet")
                });
                dst.counters.packets_received.incr();
            }
            FrameBody::Put { dst_region, dst_offset, payload, rec_counter } => {
                match payload {
                    FramePayload::Inline(b) => dst_region.write(*dst_offset, b),
                    FramePayload::Region { region, offset, len } => {
                        dst_region.copy_from(*dst_offset, region, *offset, *len);
                    }
                }
                self.node(ch.dst).counters.put_bytes_in.add(payload.len() as u64);
                if let Some(c) = rec_counter {
                    c.delivered(credit);
                }
            }
            FrameBody::Get { desc } => {
                let dst = self.node(ch.dst);
                dst.sys_inj.queue.push((**desc).clone());
                if let Some(w) = dst.sys_wakeup.get() {
                    w.touch();
                }
                if matches!(self.inner.mode, EngineMode::Threaded(_)) {
                    dst.engine_wakeup.touch();
                }
            }
            FrameBody::Rmw { win_key, dst_region, dst_offset, op, operand, compare, reply } => {
                // Exactly-once under retransmission: the channel's receive
                // verdict discards duplicate sequence numbers before this
                // runs, so a frame body applies at most once.
                let prior = self.inner.rmw_locks.apply(
                    *win_key,
                    dst_region,
                    *dst_offset,
                    *op,
                    *operand,
                    *compare,
                );
                if let Some(r) = reply {
                    r.region.write(r.offset, &prior.to_le_bytes());
                }
            }
        }
    }
}

impl Drop for FabricInner {
    fn drop(&mut self) {
        // Engine threads hold only a Weak fabric handle plus clones of the
        // shutdown flag and wakeup regions, so they can never keep the
        // fabric alive; raising the flag and touching the regions lets them
        // exit promptly (they also exit on their park timeout).
        self.shutdown.store(true, Ordering::SeqCst);
        for n in &self.nodes {
            n.engine_wakeup.touch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_hw::Counter;
    use bgq_hw::MemRegion;
    use bytes::Bytes;

    fn small_fabric() -> MuFabric {
        MuFabric::builder(TorusShape::new([2, 2, 1, 1, 1])).build()
    }

    fn memfifo_desc(dst: u32, fifo: RecFifoId, payload: PayloadSource) -> Descriptor {
        Descriptor {
            dst_node: dst,
            dst_context: 0,
            src_context: 0,
            routing: bgq_torus::Routing::Deterministic,
            payload,
            kind: XferKind::MemoryFifo {
                rec_fifo: fifo,
                dispatch: 7,
                metadata: Bytes::new(),
                short: false,
            },
            inj_counter: None,
        }
    }

    #[test]
    fn memory_fifo_message_fragments_and_reassembles() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let data: Vec<u8> = (0..1300).map(|i| (i % 251) as u8).collect();
        let region = MemRegion::from_vec(data.clone());
        fabric.execute_now(
            0,
            memfifo_desc(1, rec, PayloadSource::Region { region, offset: 0, len: 1300 }),
        );
        // 1300 bytes → 3 packets (512+512+276).
        let out = MemRegion::zeroed(1300);
        let mut count = 0;
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(
                p.payload.view().is_empty(),
                "region payload stays in source memory until deposited"
            );
            assert_eq!(p.msg_len, 1300);
            assert_eq!(p.dispatch, 7);
            let off = p.offset as usize;
            p.payload.deposit(&out, off);
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(out.to_vec(), data);
        if cfg!(feature = "telemetry") {
            // Per-message probes are sampled: the first message on a lane
            // (sequence 0) accounts for a whole MU_PACKET_COUNTER_SAMPLE
            // window.
            assert_eq!(
                fabric.counters(1).packets_received.value(),
                3 * MU_PACKET_COUNTER_SAMPLE
            );
            assert_eq!(
                fabric.counters(0).packets_injected.value(),
                3 * MU_PACKET_COUNTER_SAMPLE
            );
            assert_eq!(fabric.counters(0).fifo_messages.value(), MU_PACKET_COUNTER_SAMPLE);
        }
    }

    #[test]
    fn region_eager_with_counter_stages_and_completes_at_injection() {
        // With a completion counter the MU reads the source buffer at
        // injection: local completion never depends on receiver progress,
        // and the buffer is genuinely reusable once the counter fires.
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let region = MemRegion::from_vec(vec![7u8; 1000]);
        let local_done = Counter::new();
        local_done.add_expected(1000);
        let mut desc = memfifo_desc(
            1,
            rec,
            PayloadSource::Region { region: region.clone(), offset: 0, len: 1000 },
        );
        desc.inj_counter = Some(local_done.clone());
        fabric.execute_now(0, desc);
        assert!(
            local_done.is_complete(),
            "sender completion must not wait for receiver deposits"
        );
        // The buffer-reuse contract: overwriting the source after the
        // counter fires must not corrupt the in-flight message.
        region.fill(0, 1000, 0xEE);
        let dst = MemRegion::zeroed(1000);
        let mut count = 0;
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(!p.payload.view().is_empty(), "DMA staged the bytes at injection");
            let off = p.offset as usize;
            p.payload.deposit(&dst, off);
            count += 1;
        }
        assert_eq!(count, 2);
        assert_eq!(dst.to_vec(), vec![7u8; 1000]);
        // The per-packet DMA reads are counted on the source node.
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(0).payload_copies.value(), 2);
        }
    }

    #[test]
    fn region_eager_without_counter_is_zero_copy_until_deposit() {
        // With no completion counter there is no synchronization edge, so
        // the read of the source buffer is deferred to the receiver's
        // deposit: packets carry windows, not bytes — zero source-side
        // copies.
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let data: Vec<u8> = (0..1000).map(|i| (i % 201) as u8).collect();
        let region = MemRegion::from_vec(data.clone());
        fabric.execute_now(
            0,
            memfifo_desc(1, rec, PayloadSource::Region { region, offset: 0, len: 1000 }),
        );
        assert_eq!(
            fabric.counters(0).payload_copies.value(),
            0,
            "no staging on the source node"
        );
        let dst = MemRegion::zeroed(1000);
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(p.payload.view().is_empty(), "bytes still live in source memory");
            let off = p.offset as usize;
            p.payload.deposit(&dst, off);
        }
        assert_eq!(dst.to_vec(), data);
    }

    #[test]
    fn msg_ids_keep_node_bits_clean_of_sequence_overflow() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        // Force the fallback lane's sequence counter near the wrap boundary.
        fabric.inner.nodes[0]
            .msg_lane
            .msg_seq
            .store(crate::fifo::LANE_SEQ_MASK, Ordering::Relaxed);
        for _ in 0..2 {
            fabric.execute_now(0, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        }
        let a = fabric.poll_rec(1, rec).unwrap();
        let b = fabric.poll_rec(1, rec).unwrap();
        assert_eq!(a.msg_id >> 40, 0, "node 0 in high bits");
        assert_eq!(b.msg_id >> 40, 0, "sequence wrap must not leak into node bits");
        assert_ne!(a.msg_id, b.msg_id);
        // Both ids sit on the NODE fallback lane (execute_now bypasses
        // injection FIFOs).
        let lane_of = |id: u64| (id >> crate::fifo::LANE_SHIFT) & 0x3ff;
        assert_eq!(lane_of(a.msg_id), crate::fifo::NODE_LANE as u64);
        assert_eq!(lane_of(b.msg_id), crate::fifo::NODE_LANE as u64);
    }

    #[test]
    fn fifo_routed_messages_mint_ids_on_their_own_lane() {
        let fabric = small_fabric();
        let inj = fabric.alloc_inj_fifos(0, 2).unwrap();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for &f in &inj {
            fabric.inject(0, f, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
            assert_eq!(fabric.pump_inj(0, f, usize::MAX), 1);
        }
        let a = fabric.poll_rec(1, rec).unwrap();
        let b = fabric.poll_rec(1, rec).unwrap();
        let lane_of = |id: u64| (id >> crate::fifo::LANE_SHIFT) & 0x3ff;
        assert_eq!(lane_of(a.msg_id), inj[0].0 as u64, "first message on FIFO 0's lane");
        assert_eq!(lane_of(b.msg_id), inj[1].0 as u64, "second message on FIFO 1's lane");
        assert_ne!(a.msg_id, b.msg_id, "same per-lane seq (0), distinct lanes");
    }

    #[test]
    fn zero_byte_message_delivers_one_packet() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        fabric.execute_now(0, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        let p = fabric.poll_rec(1, rec).expect("one packet");
        assert_eq!(p.msg_len, 0);
        assert!(p.is_first() && p.is_last());
        assert!(fabric.poll_rec(1, rec).is_none());
    }

    #[test]
    fn direct_put_writes_destination_and_counters() {
        let fabric = small_fabric();
        let src = MemRegion::from_vec((0..100).collect());
        let dst = MemRegion::zeroed(100);
        let inj = Counter::new();
        let rec = Counter::new();
        inj.add_expected(50);
        rec.add_expected(50);
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Dynamic,
                payload: PayloadSource::Region { region: src, offset: 10, len: 50 },
                kind: XferKind::DirectPut {
                    dst_region: dst.clone(),
                    dst_offset: 25,
                    rec_counter: Some(rec.clone()),
                },
                inj_counter: Some(inj.clone()),
            },
        );
        assert!(inj.is_complete());
        assert!(rec.is_complete());
        assert_eq!(&dst.to_vec()[25..75], &(10..60).collect::<Vec<u8>>()[..]);
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(1).put_bytes_in.value(), 50);
        }
    }

    #[test]
    fn remote_get_round_trip_pulls_data_back() {
        let fabric = small_fabric();
        // Node 0 wants 64 bytes out of node 1's memory.
        let remote = MemRegion::from_vec((100..164).collect());
        let local = MemRegion::zeroed(64);
        let done = Counter::new();
        done.add_expected(64);
        let put_back = Descriptor {
            dst_node: 0,
            dst_context: 0,
            src_context: 0,
            routing: bgq_torus::Routing::Dynamic,
            payload: PayloadSource::Region { region: remote, offset: 0, len: 64 },
            kind: XferKind::DirectPut {
                dst_region: local.clone(),
                dst_offset: 0,
                rec_counter: Some(done.clone()),
            },
            inj_counter: None,
        };
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(Bytes::new()),
                kind: XferKind::RemoteGet { payload: Box::new(put_back) },
                inj_counter: None,
            },
        );
        assert!(!done.is_complete(), "no data until node 1 services the get");
        assert_eq!(fabric.pump_sys(1, 16), 1);
        assert!(done.is_complete());
        assert_eq!(local.to_vec(), (100..164).collect::<Vec<u8>>());
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(1).remote_gets_serviced.value(), 1);
        }
    }

    #[test]
    fn inject_then_pump_preserves_order() {
        let fabric = small_fabric();
        let inj = fabric.alloc_inj_fifos(0, 1).unwrap()[0];
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for i in 0..20u8 {
            fabric.inject(
                0,
                inj,
                memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![i]))),
            );
        }
        assert!(fabric.poll_rec(1, rec).is_none(), "nothing moves until pumped");
        assert_eq!(fabric.pump_inj(0, inj, usize::MAX), 20);
        for i in 0..20u8 {
            let p = fabric.poll_rec(1, rec).expect("packet");
            assert_eq!(p.payload.view()[0], i, "in-order delivery");
        }
    }

    #[test]
    fn pump_budget_limits_descriptors() {
        let fabric = small_fabric();
        let inj = fabric.alloc_inj_fifos(0, 1).unwrap()[0];
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for _ in 0..10 {
            fabric.inject(0, inj, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        }
        assert_eq!(fabric.pump_inj(0, inj, 3), 3);
        assert_eq!(fabric.pump_inj(0, inj, 100), 7);
    }

    #[test]
    fn fifo_allocation_is_per_node_and_bounded() {
        let fabric = small_fabric();
        assert!(fabric.alloc_inj_fifos(0, 544).is_some());
        assert!(fabric.alloc_inj_fifos(0, 1).is_none(), "node 0 exhausted");
        assert!(fabric.alloc_inj_fifos(1, 32).is_some(), "node 1 unaffected");
        assert!(fabric.alloc_rec_fifos(0, 272).is_some());
        assert!(fabric.alloc_rec_fifos(0, 1).is_none());
    }

    #[test]
    fn self_send_loops_back() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(0, 1).unwrap()[0];
        fabric.execute_now(
            0,
            memfifo_desc(0, rec, PayloadSource::Immediate(Bytes::from_static(b"self"))),
        );
        let p = fabric.poll_rec(0, rec).unwrap();
        assert_eq!(p.payload.view(), b"self");
        assert_eq!(p.src_node, 0);
    }

    // ---- reliability-layer tests ---------------------------------------

    use crate::faults::RetryConfig;
    use bgq_hw::DeliveryFault;

    fn reliable_fabric(plan: FaultPlan) -> MuFabric {
        MuFabric::builder(TorusShape::new([2, 2, 1, 1, 1])).fault_plan(plan).build()
    }

    /// Pump node 0's links until `done` completes (success or fault).
    fn pump_until_complete(fabric: &MuFabric, done: &Counter) {
        for _ in 0..10_000 {
            if done.is_complete() {
                return;
            }
            fabric.pump_links(0, usize::MAX);
        }
        panic!("counter never completed: retry protocol stalled");
    }

    #[test]
    fn clean_fault_plan_stays_synchronous_and_stamps_crc() {
        let fabric = reliable_fabric(FaultPlan::new().seed(7));
        assert!(fabric.reliable());
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        fabric.execute_now(
            0,
            memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from_static(b"hello"))),
        );
        // No pump_links needed: a fault-free frame delivers synchronously,
        // exactly like the lossless path.
        let p = fabric.poll_rec(1, rec).expect("synchronous delivery");
        assert_eq!(p.payload.view(), b"hello");
        assert_ne!(p.crc, 0, "CRC stamped");
        assert!(p.verify_crc());
        assert!(fabric.links_idle(0));
        let ras = fabric.ras_counters();
        assert_eq!(ras.retransmits.value(), 0);
        assert_eq!(ras.crc_errors.value(), 0);
    }

    #[test]
    fn drops_recover_via_retransmit_exactly_once() {
        let fabric = reliable_fabric(
            FaultPlan::new()
                .seed(42)
                .drop_rate(0.25)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 }),
        );
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let data: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
        let done = Counter::new();
        done.add_expected(4096);
        let mut desc = memfifo_desc(
            1,
            rec,
            PayloadSource::Region {
                region: MemRegion::from_vec(data.clone()),
                offset: 0,
                len: 4096,
            },
        );
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert!(done.is_ok(), "all frames eventually acked");
        // Exactly-once: every packet arrives once, reassembly is complete.
        let out = MemRegion::zeroed(4096);
        let mut count = 0;
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(p.verify_crc());
            let off = p.offset as usize;
            p.payload.deposit(&out, off);
            count += 1;
        }
        assert_eq!(count, 8, "8 packets, no duplicates");
        assert_eq!(out.to_vec(), data);
        if cfg!(feature = "telemetry") {
            let ras = fabric.ras_counters();
            assert!(ras.retransmits.value() > 0, "a 25% drop rate must cost retransmits");
            assert!(
                fabric.counters(0).packets_dropped.value() > 0,
                "mu.packets_dropped is live under an injector"
            );
        }
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::PacketDropped));
        assert!(events.iter().any(|e| e.kind == RasEventKind::Retransmit));
    }

    #[test]
    fn corruption_counts_crc_errors_and_recovers() {
        let fabric = reliable_fabric(
            FaultPlan::new()
                .seed(3)
                .corrupt_rate(0.3)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 }),
        );
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(2048);
        let mut desc =
            memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![5u8; 2048])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert!(done.is_ok());
        let mut count = 0;
        while fabric.poll_rec(1, rec).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
        if cfg!(feature = "telemetry") {
            assert!(fabric.ras_counters().crc_errors.value() > 0);
        }
        // The event ring is functional regardless of the telemetry feature.
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::CrcError));
    }

    #[test]
    fn delayed_frames_release_after_their_ticks() {
        let fabric = reliable_fabric(FaultPlan::new().seed(11).delay_rate(1.0, 2));
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(16);
        let mut desc = memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![1u8; 16])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        assert!(!done.is_complete(), "frame held back by the delay fault");
        assert!(!fabric.links_idle(0));
        pump_until_complete(&fabric, &done);
        assert!(done.is_ok());
        assert!(fabric.poll_rec(1, rec).is_some());
        assert!(fabric.links_idle(0));
    }

    #[test]
    fn retry_budget_exhaustion_fails_with_timeout_not_a_hang() {
        // Every link drops every frame: the channel must die after the
        // budget, failing the counter with Timeout instead of spinning.
        let fabric = reliable_fabric(
            FaultPlan::new()
                .seed(1)
                .drop_rate(1.0)
                .retry(RetryConfig { window: 4, rto_ticks: 1, rto_max_ticks: 2, retry_budget: 3 }),
        );
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(100);
        let mut desc = memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![9u8; 100])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert_eq!(done.fault(), Some(DeliveryFault::Timeout));
        assert!(done.is_complete(), "failed counters still read complete");
        assert!(fabric.poll_rec(1, rec).is_none(), "nothing was delivered");
        assert!(fabric.links_idle(0), "dead channel holds no pending frames");
        if cfg!(feature = "telemetry") {
            assert!(fabric.ras_counters().delivery_failures.value() > 0);
        }
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::DeliveryFailure));
        // A later transfer on the dead channel fails immediately.
        let late = Counter::new();
        late.add_expected(4);
        let mut desc2 = memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![0u8; 4])));
        desc2.inj_counter = Some(late.clone());
        fabric.execute_now(0, desc2);
        assert_eq!(late.fault(), Some(DeliveryFault::Timeout));
    }

    #[test]
    fn killed_link_reroutes_and_still_delivers() {
        let fabric = reliable_fabric(FaultPlan::new().seed(5));
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        // Kill the link det_route would use for 0 -> 1.
        let shape = TorusShape::new([2, 2, 1, 1, 1]);
        let hops = bgq_torus::det_route(shape, shape.coords_of(0), shape.coords_of(1));
        assert_eq!(hops.len(), 1, "nodes 0 and 1 are torus neighbors");
        assert!(fabric.kill_link(0, hops[0]));
        assert!(!fabric.kill_link(0, hops[0]), "second kill is a no-op");
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.ras_counters().link_down.value(), 2, "both directions down");
        }
        let done = Counter::new();
        done.add_expected(64);
        let mut desc = memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![3u8; 64])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert!(done.is_ok(), "delivered via the detour");
        let p = fabric.poll_rec(1, rec).expect("rerouted packet");
        assert_eq!(p.payload.view(), &[3u8; 64][..]);
        if cfg!(feature = "telemetry") {
            assert!(fabric.ras_counters().reroutes.value() >= 1);
        }
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::Reroute));
    }

    #[test]
    fn kill_schedule_fires_on_nth_crossing() {
        let shape = TorusShape::new([2, 2, 1, 1, 1]);
        let first = bgq_torus::det_route(shape, shape.coords_of(0), shape.coords_of(1))[0];
        // The 2nd frame over the link takes it down; the frame is lost and
        // must be retransmitted over the detour.
        let fabric = reliable_fabric(
            FaultPlan::new()
                .seed(9)
                .kill_link_at(0, first, 2)
                .retry(RetryConfig { window: 4, rto_ticks: 1, rto_max_ticks: 2, retry_budget: 8 }),
        );
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(1024);
        let mut desc =
            memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![8u8; 1024])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert!(done.is_ok());
        let mut count = 0;
        while let Some(p) = fabric.poll_rec(1, rec) {
            assert!(p.verify_crc());
            count += 1;
        }
        assert_eq!(count, 2, "both packets delivered exactly once");
        if cfg!(feature = "telemetry") {
            let ras = fabric.ras_counters();
            assert_eq!(ras.link_down.value(), 2);
            assert!(ras.reroutes.value() >= 1);
        }
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::LinkDown));
        assert!(events.iter().any(|e| e.kind == RasEventKind::Reroute));
    }

    #[test]
    fn unreachable_destination_fails_with_unreachable() {
        let fabric = reliable_fabric(FaultPlan::new().seed(2));
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        // Sever every usable link out of node 0 (dims C/D/E have size 1).
        for dir in bgq_torus::ALL_DIMS.iter().flat_map(|&d| {
            [bgq_torus::Dir { dim: d, plus: true }, bgq_torus::Dir { dim: d, plus: false }]
        }) {
            fabric.kill_link(0, dir);
        }
        let done = Counter::new();
        done.add_expected(8);
        let mut desc = memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![0u8; 8])));
        desc.inj_counter = Some(done.clone());
        fabric.execute_now(0, desc);
        pump_until_complete(&fabric, &done);
        assert_eq!(done.fault(), Some(DeliveryFault::Unreachable));
    }

    #[test]
    fn direct_put_and_remote_get_survive_drops() {
        let fabric = reliable_fabric(
            FaultPlan::new()
                .seed(13)
                .drop_rate(0.3)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 }),
        );
        let src = MemRegion::from_vec((0..200).map(|i| (i % 97) as u8).collect());
        let dst = MemRegion::zeroed(200);
        let recd = Counter::new();
        recd.add_expected(200);
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Dynamic,
                payload: PayloadSource::Region { region: src.clone(), offset: 0, len: 200 },
                kind: XferKind::DirectPut {
                    dst_region: dst.clone(),
                    dst_offset: 0,
                    rec_counter: Some(recd.clone()),
                },
                inj_counter: None,
            },
        );
        pump_until_complete(&fabric, &recd);
        assert!(recd.is_ok());
        assert_eq!(dst.to_vec(), src.to_vec());
        // Remote get: node 0 pulls from node 1 over the same lossy fabric.
        let remote = MemRegion::from_vec(vec![4u8; 64]);
        let local = MemRegion::zeroed(64);
        let got = Counter::new();
        got.add_expected(64);
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(Bytes::new()),
                kind: XferKind::RemoteGet {
                    payload: Box::new(Descriptor {
                        dst_node: 0,
                        dst_context: 0,
                        src_context: 0,
                        routing: bgq_torus::Routing::Dynamic,
                        payload: PayloadSource::Region { region: remote, offset: 0, len: 64 },
                        kind: XferKind::DirectPut {
                            dst_region: local.clone(),
                            dst_offset: 0,
                            rec_counter: Some(got.clone()),
                        },
                        inj_counter: None,
                    }),
                },
                inj_counter: None,
            },
        );
        for _ in 0..10_000 {
            if got.is_complete() {
                break;
            }
            fabric.pump_links(0, usize::MAX);
            fabric.pump_sys(1, 16);
            fabric.pump_links(1, usize::MAX);
        }
        assert!(got.is_ok(), "remote get completed under loss");
        assert_eq!(local.to_vec(), vec![4u8; 64]);
    }

    #[test]
    fn chaos_runs_replay_deterministically_per_seed() {
        type RunSig = ((u64, u64, u64), Vec<(RasEventKind, u32, u32)>);
        let run = |seed: u64| -> RunSig {
            let fabric = reliable_fabric(
                FaultPlan::new().seed(seed).drop_rate(0.2).corrupt_rate(0.1).retry(
                    RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 },
                ),
            );
            let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
            for i in 0..5u8 {
                let done = Counter::new();
                done.add_expected(1024);
                let mut desc = memfifo_desc(
                    1,
                    rec,
                    PayloadSource::Immediate(Bytes::from(vec![i; 1024])),
                );
                desc.inj_counter = Some(done.clone());
                fabric.execute_now(0, desc);
                pump_until_complete(&fabric, &done);
                assert!(done.is_ok());
            }
            let ras = fabric.ras_counters();
            let counters = (
                ras.retransmits.value(),
                ras.crc_errors.value(),
                fabric.counters(0).packets_dropped.value(),
            );
            // The event ring is functional with telemetry compiled out, so
            // the replay assertion stays meaningful in every build mode.
            let (events, _) = fabric.ras_events();
            let sig = events.iter().map(|e| (e.kind, e.src_node, e.dst_node)).collect();
            (counters, sig)
        };
        let a = run(1234);
        let b = run(1234);
        assert_eq!(a, b, "same seed, same fault history");
        assert!(
            a.1.iter().any(|&(k, _, _)| k == RasEventKind::Retransmit),
            "the scenario actually exercised retransmits"
        );
        if cfg!(feature = "telemetry") {
            assert!(a.0 .0 > 0, "retransmit counter moved");
        }
    }

    #[test]
    fn self_sends_bypass_the_reliability_layer() {
        let fabric = reliable_fabric(FaultPlan::new().seed(6).drop_rate(1.0));
        let rec = fabric.alloc_rec_fifos(0, 1).unwrap()[0];
        fabric.execute_now(
            0,
            memfifo_desc(0, rec, PayloadSource::Immediate(Bytes::from_static(b"loop"))),
        );
        let p = fabric.poll_rec(0, rec).expect("self-sends never traverse links");
        assert_eq!(p.payload.view(), b"loop");
        assert!(fabric.links_idle(0));
    }

    #[test]
    fn short_send_is_one_inline_packet_with_synchronous_completion() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(5);
        fabric.send_short_now(
            0,
            1,
            rec,
            3,
            9,
            Bytes::from_static(b"md"),
            Bytes::from_static(b"hello"),
            Some(done.clone()),
        );
        assert!(done.is_complete(), "short-tier completion is synchronous");
        let p = fabric.poll_rec(1, rec).unwrap();
        assert!(p.short, "envelope carries the short-tier flag");
        assert_eq!(p.src_context, 3);
        assert_eq!(p.dispatch, 9);
        assert_eq!(&p.metadata[..], b"md");
        assert_eq!(p.payload.view(), b"hello");
        assert_eq!(p.msg_len, 5);
        assert_eq!(p.offset, 0);
        assert!(fabric.poll_rec(1, rec).is_none(), "exactly one packet");
    }

    #[test]
    fn short_send_keeps_flag_through_reliable_channel() {
        let fabric = reliable_fabric(FaultPlan::new().seed(7));
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let done = Counter::new();
        done.add_expected(4);
        fabric.send_short_now(
            0,
            1,
            rec,
            0,
            5,
            Bytes::new(),
            Bytes::from_static(b"shrt"),
            Some(done.clone()),
        );
        assert!(done.is_complete());
        let p = fabric.poll_rec(1, rec).unwrap();
        assert!(p.short, "flag survives the fair-weather reliable path");
        assert_eq!(p.payload.view(), b"shrt");
    }

    #[test]
    fn revived_link_and_channel_carry_traffic_again() {
        let fabric = MuFabric::builder(TorusShape::new([2, 1, 1, 1, 1]))
            .fault_plan(FaultPlan::new().seed(1))
            .build();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let xp = bgq_torus::Dir { dim: bgq_torus::Dim::A, plus: true };
        let xm = bgq_torus::Dir { dim: bgq_torus::Dim::A, plus: false };
        // Sever every route from node 0 to node 1 (a 2-node torus only has
        // the two A-dimension links).
        assert!(fabric.kill_link(0, xp));
        assert!(fabric.kill_link(0, xm));
        let doomed = Counter::new();
        doomed.add_expected(3);
        let mut desc =
            memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from_static(b"die")));
        desc.inj_counter = Some(doomed.clone());
        fabric.execute_now(0, desc);
        assert_eq!(
            doomed.fault(),
            Some(DeliveryFault::Unreachable),
            "no healthy route must fail the counter, not hang it"
        );
        // Repair: both links back up, then clear the dead channel.
        assert!(fabric.revive_link(0, xp));
        assert!(fabric.revive_link(0, xm));
        assert!(!fabric.revive_link(0, xp), "already up");
        assert!(fabric.revive_channel(0, 1), "channel was dead");
        assert!(!fabric.revive_channel(0, 1), "already alive");
        let ok = Counter::new();
        ok.add_expected(3);
        let mut desc =
            memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from_static(b"yay")));
        desc.inj_counter = Some(ok.clone());
        fabric.execute_now(0, desc);
        assert!(ok.is_ok(), "revived channel delivers again");
        let p = fabric.poll_rec(1, rec).unwrap();
        assert_eq!(p.payload.view(), b"yay");
        let (events, _) = fabric.ras_events();
        assert!(events.iter().any(|e| e.kind == RasEventKind::LinkRevived));
        assert!(events.iter().any(|e| e.kind == RasEventKind::ChannelRevived));
    }
}
