//! The MU fabric: every node's MU plus packet delivery between them.
//!
//! A [`MuFabric`] owns one simulated MU per node. Software (a PAMI context)
//! allocates exclusive FIFOs, injects [`Descriptor`]s, and pumps progress;
//! the fabric executes descriptors — fragmenting payload into ≤512-byte
//! packets for memory-FIFO traffic, copying directly into destination
//! regions for puts, and bouncing remote-gets to the destination's system
//! FIFO. Delivery is immediate and reliable (the torus is lossless); *who*
//! executes a descriptor and in what order is exactly what the engine modes
//! control, because that is what the paper's concurrency story is about.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_hw::{WakeupRegion, WakeupUnit};
use bgq_torus::packet::MAX_PAYLOAD_BYTES;
use bgq_torus::TorusShape;
use bgq_upc::{Counter, Upc};

use crate::descriptor::{Descriptor, PayloadSource, XferKind};
use crate::engine::{self, EngineMode};
use crate::fifo::{
    FifoAllocator, FifoTable, InjFifo, InjFifoId, RecFifo, RecFifoId, INJ_FIFOS_PER_NODE,
    REC_FIFOS_PER_NODE,
};
use crate::packet::{MuPacket, PacketPayload};

/// Message sequence numbers occupy the low 40 bits of a message id; the
/// source node index occupies the bits above. Masking keeps a long-running
/// node's sequence from bleeding into the node bits (ids may then recycle
/// after 2^40 messages, by which point no packet of the old message can
/// still be in flight).
const MSG_SEQ_MASK: u64 = (1 << 40) - 1;

/// Per-node MU telemetry probes (`mu.*` layer), registered on the fabric's
/// [`Upc`] registry. These replaced the old bespoke `NodeStats` snapshot
/// struct: each field is a live `bgq-upc` counter handle — read one with
/// `.value()`, or aggregate all nodes through `Upc::snapshot()`. With the
/// `telemetry` feature off every field is a zero-sized no-op.
pub struct MuCounters {
    /// Memory-FIFO messages sent from this node.
    pub fifo_messages: Counter,
    /// Memory-FIFO packets created at injection on this node.
    pub packets_injected: Counter,
    /// Memory-FIFO packets delivered *to* this node.
    pub packets_received: Counter,
    /// Packets dropped in the fabric. The simulated torus is lossless, so
    /// this stays zero by construction — it exists so the report schema
    /// matches real MU hardware, where it is the first thing to check.
    pub packets_dropped: Counter,
    /// Direct-put bytes written into this node's memory.
    pub put_bytes_in: Counter,
    /// Remote-get requests serviced by this node.
    pub remote_gets_serviced: Counter,
    /// Descriptors executed by this node's engines.
    pub descriptors_executed: Counter,
    /// Payload copies performed on this node: receive-side deposits out of
    /// the reception FIFO, plus source-side per-packet DMA staging when an
    /// injection counter demands it. The zero-copy eager path does exactly
    /// one per packet.
    pub payload_copies: Counter,
}

impl MuCounters {
    fn new(upc: &Upc) -> Self {
        MuCounters {
            fifo_messages: upc.counter("mu.fifo_messages"),
            packets_injected: upc.counter("mu.packets_injected"),
            packets_received: upc.counter("mu.packets_received"),
            packets_dropped: upc.counter("mu.packets_dropped"),
            put_bytes_in: upc.counter("mu.put_bytes_in"),
            remote_gets_serviced: upc.counter("mu.remote_gets_serviced"),
            descriptors_executed: upc.counter("mu.descriptors_executed"),
            payload_copies: upc.counter("mu.payload_copies"),
        }
    }
}

pub(crate) struct NodeMu {
    /// Lock-free FIFO tables sized to the hardware limits (544/272):
    /// delivery, polling, and handle lookup are plain atomic loads.
    pub inj: FifoTable<InjFifo>,
    pub rec: FifoTable<RecFifo>,
    pub allocator: FifoAllocator,
    /// System injection FIFO: remote-get payload descriptors land here for
    /// this node to execute.
    pub sys_inj: Arc<InjFifo>,
    pub sys_wakeup: OnceLock<WakeupRegion>,
    /// Wakes this node's engine threads (threaded mode).
    pub engine_wakeup: WakeupRegion,
    pub msg_seq: AtomicU64,
    /// `mu.*` telemetry probes for this node.
    pub counters: MuCounters,
}

pub(crate) struct FabricInner {
    pub shape: TorusShape,
    pub nodes: Vec<NodeMu>,
    pub inj_fifo_capacity: usize,
    pub rec_fifo_capacity: usize,
    pub mode: EngineMode,
    pub shutdown: Arc<AtomicBool>,
}

/// Configures and builds a [`MuFabric`].
pub struct MuFabricBuilder {
    shape: TorusShape,
    inj_fifo_capacity: usize,
    rec_fifo_capacity: usize,
    mode: EngineMode,
    telemetry: Upc,
}

impl MuFabricBuilder {
    /// Ring capacity of each injection FIFO before overflow (default 128).
    pub fn inj_fifo_capacity(mut self, cap: usize) -> Self {
        self.inj_fifo_capacity = cap;
        self
    }

    /// Ring capacity of each reception FIFO before overflow (default 512).
    pub fn rec_fifo_capacity(mut self, cap: usize) -> Self {
        self.rec_fifo_capacity = cap;
        self
    }

    /// Select who pumps injection FIFOs (default [`EngineMode::Inline`]).
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Register the fabric's `mu.*` probes on a shared telemetry registry
    /// (PAMI's `Machine` passes its own so one snapshot covers every
    /// layer). Defaults to a private registry.
    pub fn telemetry(mut self, upc: Upc) -> Self {
        self.telemetry = upc;
        self
    }

    /// Build the fabric (and spawn engine threads in threaded mode).
    pub fn build(self) -> MuFabric {
        let wakeups = WakeupUnit::new();
        let nodes = (0..self.shape.num_nodes())
            .map(|_| NodeMu {
                inj: FifoTable::new(INJ_FIFOS_PER_NODE),
                rec: FifoTable::new(REC_FIFOS_PER_NODE),
                allocator: FifoAllocator::default(),
                sys_inj: Arc::new(InjFifo::new(self.inj_fifo_capacity)),
                sys_wakeup: OnceLock::new(),
                engine_wakeup: wakeups.region(),
                msg_seq: AtomicU64::new(0),
                counters: MuCounters::new(&self.telemetry),
            })
            .collect();
        let inner = Arc::new(FabricInner {
            shape: self.shape,
            nodes,
            inj_fifo_capacity: self.inj_fifo_capacity,
            rec_fifo_capacity: self.rec_fifo_capacity,
            mode: self.mode,
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        let fabric = MuFabric { inner };
        if let EngineMode::Threaded(n) = self.mode {
            engine::spawn_engines(&fabric, n);
        }
        fabric
    }
}

/// Handle to the MU fabric; clones share the fabric.
#[derive(Clone)]
pub struct MuFabric {
    pub(crate) inner: Arc<FabricInner>,
}

impl MuFabric {
    /// Start building a fabric over `shape`.
    pub fn builder(shape: TorusShape) -> MuFabricBuilder {
        MuFabricBuilder {
            shape,
            inj_fifo_capacity: 128,
            rec_fifo_capacity: 512,
            mode: EngineMode::Inline,
            telemetry: Upc::new(),
        }
    }

    /// The torus shape.
    pub fn shape(&self) -> TorusShape {
        self.inner.shape
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The engine mode the fabric was built with.
    pub fn engine_mode(&self) -> EngineMode {
        self.inner.mode
    }

    fn node(&self, id: u32) -> &NodeMu {
        &self.inner.nodes[id as usize]
    }

    /// Allocate `count` exclusive injection FIFOs on `node`; `None` when the
    /// node's 544 are exhausted.
    ///
    /// The allocator mutex serializes the id claim (allocation is not a hot
    /// path); the claimed slots are then published into the lock-free table,
    /// race-free because ranges are disjoint.
    pub fn alloc_inj_fifos(&self, node: u32, count: u16) -> Option<Vec<InjFifoId>> {
        let n = self.node(node);
        let range = n.allocator.alloc_inj(count)?;
        for id in range.clone() {
            n.inj.publish(id, Arc::new(InjFifo::new(self.inner.inj_fifo_capacity)));
        }
        Some(range.map(InjFifoId).collect())
    }

    /// Allocate `count` exclusive reception FIFOs on `node`.
    pub fn alloc_rec_fifos(&self, node: u32, count: u16) -> Option<Vec<RecFifoId>> {
        let n = self.node(node);
        let range = n.allocator.alloc_rec(count)?;
        for id in range.clone() {
            n.rec.publish(id, Arc::new(RecFifo::new(self.inner.rec_fifo_capacity)));
        }
        Some(range.map(RecFifoId).collect())
    }

    /// Direct handle to a reception FIFO (contexts cache this).
    pub fn rec_fifo(&self, node: u32, id: RecFifoId) -> Arc<RecFifo> {
        Arc::clone(self.node(node).rec.get(id.0))
    }

    /// Direct handle to an injection FIFO.
    pub fn inj_fifo(&self, node: u32, id: InjFifoId) -> Arc<InjFifo> {
        Arc::clone(self.node(node).inj.get(id.0))
    }

    /// Handle to a node's *system* injection FIFO (contexts cache it to
    /// observe remote-get backlog without going through the fabric).
    pub fn sys_fifo(&self, node: u32) -> Arc<InjFifo> {
        Arc::clone(&self.node(node).sys_inj)
    }

    /// Attach a wakeup region to a node's system FIFO (remote-get arrivals
    /// touch it). Set at most once per node; later calls are ignored.
    pub fn set_sys_wakeup(&self, node: u32, region: WakeupRegion) {
        let _ = self.node(node).sys_wakeup.set(region);
    }

    /// Queue a descriptor on one of `src_node`'s injection FIFOs.
    pub fn inject(&self, src_node: u32, fifo: InjFifoId, desc: Descriptor) {
        let fifo = Arc::clone(self.node(src_node).inj.get(fifo.0));
        self.inject_handle(src_node, &fifo, desc);
    }

    /// Queue a descriptor on an injection FIFO the caller already holds a
    /// handle to — the context hot path, which caches its exclusive FIFO
    /// handles and skips the table lookup entirely.
    pub fn inject_handle(&self, src_node: u32, fifo: &InjFifo, desc: Descriptor) {
        fifo.queue.push(desc);
        if matches!(self.inner.mode, EngineMode::Threaded(_)) {
            self.node(src_node).engine_wakeup.touch();
        }
    }

    /// Execute a descriptor immediately in the calling thread — the
    /// `PAMI_Send_immediate` path, which bypasses the injection queue when
    /// FIFO space is available.
    pub fn execute_now(&self, src_node: u32, desc: Descriptor) {
        self.execute(src_node, desc);
    }

    /// Drain up to `budget` descriptors from one injection FIFO (inline
    /// engine mode: contexts call this from `advance`). Returns descriptors
    /// executed.
    pub fn pump_inj(&self, node: u32, fifo: InjFifoId, budget: usize) -> usize {
        let fifo = Arc::clone(self.node(node).inj.get(fifo.0));
        self.pump_inj_handle(node, &fifo, budget)
    }

    /// Like [`MuFabric::pump_inj`] but on a cached FIFO handle, skipping
    /// the table lookup (context hot path).
    pub fn pump_inj_handle(&self, node: u32, fifo: &InjFifo, budget: usize) -> usize {
        let mut done = 0;
        while done < budget {
            match fifo.queue.pop() {
                Some(desc) => {
                    self.execute(node, desc);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }

    /// Execute up to `budget` system-FIFO descriptors (remote-get service).
    pub fn pump_sys(&self, node: u32, budget: usize) -> usize {
        let sys = Arc::clone(&self.node(node).sys_inj);
        let mut done = 0;
        while done < budget {
            match sys.queue.pop() {
                Some(desc) => {
                    self.node(node).counters.remote_gets_serviced.incr();
                    self.execute(node, desc);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }

    /// Pull the next packet from a reception FIFO (owning context only).
    pub fn poll_rec(&self, node: u32, fifo: RecFifoId) -> Option<MuPacket> {
        self.node(node).rec.get(fifo.0).poll()
    }

    /// Record one receive-side payload copy on `node` (contexts call this
    /// when they deposit a packet payload into destination memory).
    pub fn note_payload_copy(&self, node: u32) {
        self.node(node).counters.payload_copies.incr();
    }

    /// Live `mu.*` telemetry probes for `node`. Read a single probe with
    /// `.value()`; aggregate across nodes via the registry passed to
    /// [`MuFabricBuilder::telemetry`]. All zeros when the `telemetry`
    /// feature is off.
    pub fn counters(&self, node: u32) -> &MuCounters {
        &self.node(node).counters
    }

    /// Execute one descriptor on behalf of `src_node`. This is "the MU
    /// hardware": it performs the data movement the descriptor asks for.
    pub(crate) fn execute(&self, src_node: u32, desc: Descriptor) {
        self.node(src_node).counters.descriptors_executed.incr();
        let credit = desc.completion_credit();
        let Descriptor {
            dst_node,
            dst_context,
            src_context,
            routing,
            payload,
            kind,
            inj_counter,
        } = desc;
        // Functional delivery is identical for both routing modes (the
        // fabric is lossless and in-process); the mode matters to the
        // timing models and to the ordering contract asserted in tests.
        let _ = routing;
        match kind {
            XferKind::MemoryFifo { rec_fifo, dispatch, metadata } => {
                let msg_len = payload.len();
                let src = self.node(src_node);
                let msg_id = (src.msg_seq.fetch_add(1, Ordering::Relaxed) & MSG_SEQ_MASK)
                    | ((src_node as u64) << 40);
                src.counters.fifo_messages.incr();
                let dst = self.node(dst_node);
                let fifo = dst.rec.get(rec_fifo.0);
                let npackets = bgq_torus::packet::packets_for(msg_len) as u64;
                src.counters.packets_injected.add(npackets);
                let header = |i: u64| {
                    let off = i as usize * MAX_PAYLOAD_BYTES;
                    let chunk = (msg_len - off).min(MAX_PAYLOAD_BYTES);
                    (off, chunk)
                };
                match payload {
                    PayloadSource::Immediate(data) => {
                        // Send-immediate already staged the payload in the
                        // descriptor; packets carry refcounted slices of it
                        // and the injection counter fires now — the source
                        // buffer is no longer referenced.
                        fifo.deliver_batch(npackets, |i| {
                            let (off, chunk) = header(i);
                            MuPacket {
                                src_node,
                                src_context,
                                dispatch,
                                metadata: bytes::Bytes::clone(&metadata),
                                msg_id,
                                msg_len: msg_len as u32,
                                offset: off as u32,
                                payload: PacketPayload::Inline(data.slice(off..off + chunk)),
                            }
                        });
                    }
                    PayloadSource::Region { region, offset: base, len } => {
                        // No whole-message staging buffer in either case:
                        // the message fragments directly from the source
                        // region into per-packet payloads.
                        debug_assert_eq!(len, msg_len);
                        if inj_counter.is_some() {
                            // The sender asked for a completion signal, and
                            // the MU's contract is that the counter hits
                            // zero only once the source buffer has been
                            // read — so model the DMA read now, one packet
                            // slice at a time (counted as per-packet copies
                            // on the *source* node). The counter fires at
                            // the tail of this function and the buffer is
                            // genuinely reusable.
                            src.counters.payload_copies.add(npackets);
                            fifo.deliver_batch(npackets, |i| {
                                let (off, chunk) = header(i);
                                let mut staged = vec![0u8; chunk];
                                region.read(base + off, &mut staged);
                                MuPacket {
                                    src_node,
                                    src_context,
                                    dispatch,
                                    metadata: bytes::Bytes::clone(&metadata),
                                    msg_id,
                                    msg_len: msg_len as u32,
                                    offset: off as u32,
                                    payload: PacketPayload::Inline(bytes::Bytes::from(staged)),
                                }
                            });
                        } else {
                            // No completion counter exists, so no correct
                            // program can observe *when* the MU reads the
                            // buffer (there is no synchronization edge to
                            // race with): defer the read all the way to the
                            // receiver's deposit. Packets carry zero-copy
                            // windows into the source region; the one
                            // payload copy happens on the destination node.
                            fifo.deliver_batch(npackets, |i| {
                                let (off, chunk) = header(i);
                                MuPacket {
                                    src_node,
                                    src_context,
                                    dispatch,
                                    metadata: bytes::Bytes::clone(&metadata),
                                    msg_id,
                                    msg_len: msg_len as u32,
                                    offset: off as u32,
                                    payload: PacketPayload::Region {
                                        region: region.clone(),
                                        offset: base + off,
                                        len: chunk,
                                    },
                                }
                            });
                        }
                    }
                }
                dst.counters.packets_received.add(npackets);
                let _ = dst_context;
            }
            XferKind::DirectPut { dst_region, dst_offset, rec_counter } => {
                match &payload {
                    PayloadSource::Immediate(bytes) => {
                        dst_region.write(dst_offset, bytes);
                    }
                    PayloadSource::Region { region, offset, len } => {
                        dst_region.copy_from(dst_offset, region, *offset, *len);
                    }
                }
                self.node(dst_node).counters.put_bytes_in.add(payload.len() as u64);
                if let Some(c) = rec_counter {
                    c.delivered(credit);
                }
            }
            XferKind::RemoteGet { payload: get_desc } => {
                let dst = self.node(dst_node);
                dst.sys_inj.queue.push(*get_desc);
                if let Some(w) = dst.sys_wakeup.get() {
                    w.touch();
                }
                if matches!(self.inner.mode, EngineMode::Threaded(_)) {
                    dst.engine_wakeup.touch();
                }
            }
        }
        if let Some(c) = inj_counter {
            c.delivered(credit);
        }
    }
}

impl Drop for FabricInner {
    fn drop(&mut self) {
        // Engine threads hold only a Weak fabric handle plus clones of the
        // shutdown flag and wakeup regions, so they can never keep the
        // fabric alive; raising the flag and touching the regions lets them
        // exit promptly (they also exit on their park timeout).
        self.shutdown.store(true, Ordering::SeqCst);
        for n in &self.nodes {
            n.engine_wakeup.touch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_hw::Counter;
    use bgq_hw::MemRegion;
    use bytes::Bytes;

    fn small_fabric() -> MuFabric {
        MuFabric::builder(TorusShape::new([2, 2, 1, 1, 1])).build()
    }

    fn memfifo_desc(dst: u32, fifo: RecFifoId, payload: PayloadSource) -> Descriptor {
        Descriptor {
            dst_node: dst,
            dst_context: 0,
            src_context: 0,
            routing: bgq_torus::Routing::Deterministic,
            payload,
            kind: XferKind::MemoryFifo { rec_fifo: fifo, dispatch: 7, metadata: Bytes::new() },
            inj_counter: None,
        }
    }

    #[test]
    fn memory_fifo_message_fragments_and_reassembles() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let data: Vec<u8> = (0..1300).map(|i| (i % 251) as u8).collect();
        let region = MemRegion::from_vec(data.clone());
        fabric.execute_now(
            0,
            memfifo_desc(1, rec, PayloadSource::Region { region, offset: 0, len: 1300 }),
        );
        // 1300 bytes → 3 packets (512+512+276).
        let out = MemRegion::zeroed(1300);
        let mut count = 0;
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(
                p.payload.view().is_empty(),
                "region payload stays in source memory until deposited"
            );
            assert_eq!(p.msg_len, 1300);
            assert_eq!(p.dispatch, 7);
            let off = p.offset as usize;
            p.payload.deposit(&out, off);
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(out.to_vec(), data);
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(1).packets_received.value(), 3);
            assert_eq!(fabric.counters(0).packets_injected.value(), 3);
            assert_eq!(fabric.counters(0).fifo_messages.value(), 1);
        }
    }

    #[test]
    fn region_eager_with_counter_stages_and_completes_at_injection() {
        // With a completion counter the MU reads the source buffer at
        // injection: local completion never depends on receiver progress,
        // and the buffer is genuinely reusable once the counter fires.
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let region = MemRegion::from_vec(vec![7u8; 1000]);
        let local_done = Counter::new();
        local_done.add_expected(1000);
        let mut desc = memfifo_desc(
            1,
            rec,
            PayloadSource::Region { region: region.clone(), offset: 0, len: 1000 },
        );
        desc.inj_counter = Some(local_done.clone());
        fabric.execute_now(0, desc);
        assert!(
            local_done.is_complete(),
            "sender completion must not wait for receiver deposits"
        );
        // The buffer-reuse contract: overwriting the source after the
        // counter fires must not corrupt the in-flight message.
        region.fill(0, 1000, 0xEE);
        let dst = MemRegion::zeroed(1000);
        let mut count = 0;
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(!p.payload.view().is_empty(), "DMA staged the bytes at injection");
            let off = p.offset as usize;
            p.payload.deposit(&dst, off);
            count += 1;
        }
        assert_eq!(count, 2);
        assert_eq!(dst.to_vec(), vec![7u8; 1000]);
        // The per-packet DMA reads are counted on the source node.
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(0).payload_copies.value(), 2);
        }
    }

    #[test]
    fn region_eager_without_counter_is_zero_copy_until_deposit() {
        // With no completion counter there is no synchronization edge, so
        // the read of the source buffer is deferred to the receiver's
        // deposit: packets carry windows, not bytes — zero source-side
        // copies.
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        let data: Vec<u8> = (0..1000).map(|i| (i % 201) as u8).collect();
        let region = MemRegion::from_vec(data.clone());
        fabric.execute_now(
            0,
            memfifo_desc(1, rec, PayloadSource::Region { region, offset: 0, len: 1000 }),
        );
        assert_eq!(
            fabric.counters(0).payload_copies.value(),
            0,
            "no staging on the source node"
        );
        let dst = MemRegion::zeroed(1000);
        while let Some(mut p) = fabric.poll_rec(1, rec) {
            assert!(p.payload.view().is_empty(), "bytes still live in source memory");
            let off = p.offset as usize;
            p.payload.deposit(&dst, off);
        }
        assert_eq!(dst.to_vec(), data);
    }

    #[test]
    fn msg_ids_keep_node_bits_clean_of_sequence_overflow() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        // Force the sequence counter near the 40-bit boundary.
        fabric.inner.nodes[0]
            .msg_seq
            .store((1u64 << 40) - 1, Ordering::Relaxed);
        for _ in 0..2 {
            fabric.execute_now(0, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        }
        let a = fabric.poll_rec(1, rec).unwrap();
        let b = fabric.poll_rec(1, rec).unwrap();
        assert_eq!(a.msg_id >> 40, 0, "node 0 in high bits");
        assert_eq!(b.msg_id >> 40, 0, "sequence wrap must not leak into node bits");
        assert_ne!(a.msg_id, b.msg_id);
    }

    #[test]
    fn zero_byte_message_delivers_one_packet() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        fabric.execute_now(0, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        let p = fabric.poll_rec(1, rec).expect("one packet");
        assert_eq!(p.msg_len, 0);
        assert!(p.is_first() && p.is_last());
        assert!(fabric.poll_rec(1, rec).is_none());
    }

    #[test]
    fn direct_put_writes_destination_and_counters() {
        let fabric = small_fabric();
        let src = MemRegion::from_vec((0..100).collect());
        let dst = MemRegion::zeroed(100);
        let inj = Counter::new();
        let rec = Counter::new();
        inj.add_expected(50);
        rec.add_expected(50);
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Dynamic,
                payload: PayloadSource::Region { region: src, offset: 10, len: 50 },
                kind: XferKind::DirectPut {
                    dst_region: dst.clone(),
                    dst_offset: 25,
                    rec_counter: Some(rec.clone()),
                },
                inj_counter: Some(inj.clone()),
            },
        );
        assert!(inj.is_complete());
        assert!(rec.is_complete());
        assert_eq!(&dst.to_vec()[25..75], &(10..60).collect::<Vec<u8>>()[..]);
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(1).put_bytes_in.value(), 50);
        }
    }

    #[test]
    fn remote_get_round_trip_pulls_data_back() {
        let fabric = small_fabric();
        // Node 0 wants 64 bytes out of node 1's memory.
        let remote = MemRegion::from_vec((100..164).collect());
        let local = MemRegion::zeroed(64);
        let done = Counter::new();
        done.add_expected(64);
        let put_back = Descriptor {
            dst_node: 0,
            dst_context: 0,
            src_context: 0,
            routing: bgq_torus::Routing::Dynamic,
            payload: PayloadSource::Region { region: remote, offset: 0, len: 64 },
            kind: XferKind::DirectPut {
                dst_region: local.clone(),
                dst_offset: 0,
                rec_counter: Some(done.clone()),
            },
            inj_counter: None,
        };
        fabric.execute_now(
            0,
            Descriptor {
                dst_node: 1,
                dst_context: 0,
                src_context: 0,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(Bytes::new()),
                kind: XferKind::RemoteGet { payload: Box::new(put_back) },
                inj_counter: None,
            },
        );
        assert!(!done.is_complete(), "no data until node 1 services the get");
        assert_eq!(fabric.pump_sys(1, 16), 1);
        assert!(done.is_complete());
        assert_eq!(local.to_vec(), (100..164).collect::<Vec<u8>>());
        if cfg!(feature = "telemetry") {
            assert_eq!(fabric.counters(1).remote_gets_serviced.value(), 1);
        }
    }

    #[test]
    fn inject_then_pump_preserves_order() {
        let fabric = small_fabric();
        let inj = fabric.alloc_inj_fifos(0, 1).unwrap()[0];
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for i in 0..20u8 {
            fabric.inject(
                0,
                inj,
                memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::from(vec![i]))),
            );
        }
        assert!(fabric.poll_rec(1, rec).is_none(), "nothing moves until pumped");
        assert_eq!(fabric.pump_inj(0, inj, usize::MAX), 20);
        for i in 0..20u8 {
            let p = fabric.poll_rec(1, rec).expect("packet");
            assert_eq!(p.payload.view()[0], i, "in-order delivery");
        }
    }

    #[test]
    fn pump_budget_limits_descriptors() {
        let fabric = small_fabric();
        let inj = fabric.alloc_inj_fifos(0, 1).unwrap()[0];
        let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
        for _ in 0..10 {
            fabric.inject(0, inj, memfifo_desc(1, rec, PayloadSource::Immediate(Bytes::new())));
        }
        assert_eq!(fabric.pump_inj(0, inj, 3), 3);
        assert_eq!(fabric.pump_inj(0, inj, 100), 7);
    }

    #[test]
    fn fifo_allocation_is_per_node_and_bounded() {
        let fabric = small_fabric();
        assert!(fabric.alloc_inj_fifos(0, 544).is_some());
        assert!(fabric.alloc_inj_fifos(0, 1).is_none(), "node 0 exhausted");
        assert!(fabric.alloc_inj_fifos(1, 32).is_some(), "node 1 unaffected");
        assert!(fabric.alloc_rec_fifos(0, 272).is_some());
        assert!(fabric.alloc_rec_fifos(0, 1).is_none());
    }

    #[test]
    fn self_send_loops_back() {
        let fabric = small_fabric();
        let rec = fabric.alloc_rec_fifos(0, 1).unwrap()[0];
        fabric.execute_now(
            0,
            memfifo_desc(0, rec, PayloadSource::Immediate(Bytes::from_static(b"self"))),
        );
        let p = fabric.poll_rec(0, rec).unwrap();
        assert_eq!(p.payload.view(), b"self");
        assert_eq!(p.src_node, 0);
    }
}
