//! Multi-message packet-train envelope: the wire format for *aggregated*
//! frames, where one memory-FIFO packet carries many small active messages
//! to the same destination (TRAM-style coalescing — see `pami::aggr`).
//!
//! A batched frame's payload is a sequence of **records**, each a
//! sub-message with its own dispatch id, metadata and payload:
//!
//! ```text
//! unaddressed (endpoint bucket — every record is for the receiving
//! context, so no per-record address travels):
//!   [dispatch u16][meta_len u16][payload_len u16][metadata][payload]
//!
//! addressed (node bucket — the frame lands on a lead context that fans
//! records out to sibling endpoints on the node):
//!   [dst_task u32][dst_context u16][dispatch u16][meta_len u16]
//!   [payload_len u16][metadata][payload]
//! ```
//!
//! All integers little-endian, matching the PAMI envelope. The frame header
//! (record count + addressing mode) rides in the packet's *metadata*
//! envelope, not here — this module only packs and walks the record train.
//! Keeping the codec next to [`crate::packet::MuPacket`] keeps every wire
//! layout the fabric moves in one crate.

use bytes::{BufMut, Bytes, BytesMut};

/// Fixed header bytes of an unaddressed record.
pub const RECORD_HDR_BYTES: usize = 6;
/// Fixed header bytes of an addressed record (adds dst task + context).
pub const RECORD_HDR_BYTES_ADDRESSED: usize = 12;

/// Size one record occupies in a frame.
#[inline]
pub fn record_size(addressed: bool, meta_len: usize, payload_len: usize) -> usize {
    let hdr = if addressed { RECORD_HDR_BYTES_ADDRESSED } else { RECORD_HDR_BYTES };
    hdr + meta_len + payload_len
}

/// Append one record to a frame under construction. `dest` must be `Some`
/// exactly when the frame is addressed (node-bucket mode).
///
/// # Panics
/// If metadata or payload exceed `u16::MAX` bytes — callers gate records on
/// the single-packet frame capacity long before that.
pub fn push_record(
    buf: &mut BytesMut,
    dest: Option<(u32, u16)>,
    dispatch: u16,
    metadata: &[u8],
    payload: &[u8],
) {
    assert!(metadata.len() <= u16::MAX as usize, "batched record metadata too long");
    assert!(payload.len() <= u16::MAX as usize, "batched record payload too long");
    // One header write instead of five puts: each `put_*` re-checks
    // capacity, and the hot (unaddressed, fine-grained) path appends
    // millions of records per second.
    let mut hdr = [0u8; RECORD_HDR_BYTES_ADDRESSED];
    let mut at = 0;
    if let Some((task, context)) = dest {
        hdr[..4].copy_from_slice(&task.to_le_bytes());
        hdr[4..6].copy_from_slice(&context.to_le_bytes());
        at = 6;
    }
    hdr[at..at + 2].copy_from_slice(&dispatch.to_le_bytes());
    hdr[at + 2..at + 4].copy_from_slice(&(metadata.len() as u16).to_le_bytes());
    hdr[at + 4..at + 6].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    buf.put_slice(&hdr[..at + 6]);
    if !metadata.is_empty() {
        buf.put_slice(metadata);
    }
    buf.put_slice(payload);
}

/// Borrowed view of one record in a batched frame — the zero-refcount
/// counterpart of [`BatchRecord`] for the hot unbatch path, which
/// dispatches handlers straight from the frame buffer and only
/// materializes owned bytes for the records it must forward.
#[derive(Debug)]
pub struct RecordView<'a> {
    /// Destination endpoint as (task, context) — `None` on unaddressed
    /// frames (the record is for the receiving context).
    pub dest: Option<(u32, u16)>,
    /// Active-message dispatch id.
    pub dispatch: u16,
    /// Sub-message metadata, borrowed from the frame.
    pub metadata: &'a [u8],
    /// Sub-message payload, borrowed from the frame.
    pub payload: &'a [u8],
    /// Byte offset of `metadata` within the frame (the payload follows it
    /// directly), for a zero-copy `Bytes::slice` when an owned copy is
    /// unavoidable.
    pub meta_at: usize,
}

/// Walk the records of a batched frame without refcount traffic, invoking
/// `f` once per record in frame order.
///
/// # Panics
/// On a malformed frame (truncated record), like [`RecordIter`].
pub fn walk_records<'a>(
    data: &'a [u8],
    count: u16,
    addressed: bool,
    mut f: impl FnMut(RecordView<'a>),
) {
    let hdr = if addressed { RECORD_HDR_BYTES_ADDRESSED } else { RECORD_HDR_BYTES };
    let mut at = 0usize;
    for _ in 0..count {
        assert!(data.len() >= at + hdr, "truncated batched frame");
        let dest = addressed.then(|| {
            (
                u32::from_le_bytes(data[at..at + 4].try_into().unwrap()),
                u16::from_le_bytes(data[at + 4..at + 6].try_into().unwrap()),
            )
        });
        if addressed {
            at += 6;
        }
        let dispatch = u16::from_le_bytes(data[at..at + 2].try_into().unwrap());
        let meta_len = u16::from_le_bytes(data[at + 2..at + 4].try_into().unwrap()) as usize;
        let payload_len = u16::from_le_bytes(data[at + 4..at + 6].try_into().unwrap()) as usize;
        at += 6;
        assert!(data.len() >= at + meta_len + payload_len, "truncated batched frame");
        f(RecordView {
            dest,
            dispatch,
            metadata: &data[at..at + meta_len],
            payload: &data[at + meta_len..at + meta_len + payload_len],
            meta_at: at,
        });
        at += meta_len + payload_len;
    }
}

/// One sub-message recovered from a batched frame. Metadata and payload are
/// zero-copy slices of the frame's `Bytes`.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Destination endpoint as (task, context) — `None` on unaddressed
    /// frames (the record is for the receiving context).
    pub dest: Option<(u32, u16)>,
    /// Active-message dispatch id.
    pub dispatch: u16,
    /// Sub-message metadata.
    pub metadata: Bytes,
    /// Sub-message payload.
    pub payload: Bytes,
}

/// Walks the records of a batched frame.
///
/// # Panics
/// On a malformed frame (truncated record) — batched frames ride CRC-checked
/// reliable channels, so truncation is a logic error, not a wire fault.
pub struct RecordIter {
    data: Bytes,
    off: usize,
    remaining: u16,
    addressed: bool,
}

impl RecordIter {
    /// Iterate `count` records (`addressed` per the frame header's mode).
    pub fn new(data: Bytes, count: u16, addressed: bool) -> RecordIter {
        RecordIter { data, off: 0, remaining: count, addressed }
    }

    #[inline]
    fn u16_at(&self, at: usize) -> u16 {
        u16::from_le_bytes(self.data[at..at + 2].try_into().unwrap())
    }
}

impl Iterator for RecordIter {
    type Item = BatchRecord;

    fn next(&mut self) -> Option<BatchRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut at = self.off;
        let hdr = if self.addressed { RECORD_HDR_BYTES_ADDRESSED } else { RECORD_HDR_BYTES };
        assert!(self.data.len() >= at + hdr, "truncated batched frame");
        let dest = self.addressed.then(|| {
            let task = u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap());
            let context = self.u16_at(at + 4);
            (task, context)
        });
        if self.addressed {
            at += 6;
        }
        let dispatch = self.u16_at(at);
        let meta_len = self.u16_at(at + 2) as usize;
        let payload_len = self.u16_at(at + 4) as usize;
        at += 6;
        assert!(self.data.len() >= at + meta_len + payload_len, "truncated batched frame");
        let metadata = self.data.slice(at..at + meta_len);
        let payload = self.data.slice(at + meta_len..at + meta_len + payload_len);
        self.off = at + meta_len + payload_len;
        Some(BatchRecord { dest, dispatch, metadata, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaddressed_records_round_trip() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, None, 7, b"m1", b"payload-one");
        push_record(&mut buf, None, 9, b"", b"p2");
        push_record(&mut buf, None, 1, b"meta-three", b"");
        let recs: Vec<BatchRecord> = RecordIter::new(buf.freeze(), 3, false).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].dispatch, 7);
        assert_eq!(&recs[0].metadata[..], b"m1");
        assert_eq!(&recs[0].payload[..], b"payload-one");
        assert!(recs[0].dest.is_none());
        assert_eq!(recs[1].dispatch, 9);
        assert!(recs[1].metadata.is_empty());
        assert_eq!(&recs[1].payload[..], b"p2");
        assert_eq!(&recs[2].metadata[..], b"meta-three");
        assert!(recs[2].payload.is_empty());
    }

    #[test]
    fn addressed_records_round_trip() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, Some((42, 3)), 5, b"hdr", b"data");
        push_record(&mut buf, Some((1000, 0)), 6, b"", b"x");
        let recs: Vec<BatchRecord> = RecordIter::new(buf.freeze(), 2, true).collect();
        assert_eq!(recs[0].dest, Some((42, 3)));
        assert_eq!(recs[0].dispatch, 5);
        assert_eq!(&recs[0].payload[..], b"data");
        assert_eq!(recs[1].dest, Some((1000, 0)));
    }

    #[test]
    fn walk_records_matches_the_iterator() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, Some((42, 3)), 5, b"hdr", b"data");
        push_record(&mut buf, Some((1000, 0)), 6, b"", b"x");
        let frame = buf.freeze();
        type Flat = (Option<(u32, u16)>, u16, Vec<u8>, Vec<u8>);
        let mut views: Vec<Flat> = Vec::new();
        walk_records(&frame, 2, true, |r| {
            // The offset view must slice back to the same bytes.
            assert_eq!(&frame[r.meta_at..r.meta_at + r.metadata.len()], r.metadata);
            views.push((r.dest, r.dispatch, r.metadata.to_vec(), r.payload.to_vec()));
        });
        let iterated: Vec<_> = RecordIter::new(frame.clone(), 2, true)
            .map(|r| (r.dest, r.dispatch, r.metadata.to_vec(), r.payload.to_vec()))
            .collect();
        assert_eq!(views, iterated);
    }

    #[test]
    fn record_size_accounts_for_headers() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, None, 1, b"ab", b"cdef");
        assert_eq!(buf.len(), record_size(false, 2, 4));
        let mut buf = BytesMut::new();
        push_record(&mut buf, Some((0, 0)), 1, b"ab", b"cdef");
        assert_eq!(buf.len(), record_size(true, 2, 4));
    }

    #[test]
    fn iterator_stops_at_count() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, None, 1, b"", b"a");
        push_record(&mut buf, None, 2, b"", b"b");
        // Count says one record: the second is simply not walked.
        let recs: Vec<BatchRecord> = RecordIter::new(buf.freeze(), 1, false).collect();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_frame_panics() {
        let mut buf = BytesMut::new();
        push_record(&mut buf, None, 1, b"", b"abcdef");
        let data = buf.freeze().slice(..7); // cut mid-payload
        let _ = RecordIter::new(data, 1, false).count();
    }
}
