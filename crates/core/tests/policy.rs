//! Behavioural tests of the protocol-selection layer: convergence of the
//! adaptive eager/rendezvous crossover, per-destination independence, the
//! hard clamps, and end-to-end wiring through `Machine`/`Context`.
//!
//! The convergence tests drive [`AdaptivePolicy`] directly with synthetic
//! [`ProtoEvent`] streams (nanosecond costs a real run would produce), so
//! they are deterministic on any host. The wiring tests run real sends.

#![cfg(feature = "telemetry")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bgq_upc::Upc;
use pami::{
    AdaptiveConfig, AdaptivePolicy, Client, Endpoint, Machine, MemRegion, PayloadSource,
    ProtoEvent, Protocol, ProtocolPolicy, Recv, SendArgs,
};

fn cfg() -> AdaptiveConfig {
    AdaptiveConfig::default() // initial 4096, clamp [512, 128K]
}

/// Feed `n` paired in-band observations at `len` with the given per-message
/// costs, exercising the policy's own selection along the way (so the
/// exploration path runs too).
fn drive(p: &AdaptivePolicy, dest: u32, len: usize, eager_ns: u64, rzv_ns: u64, n: usize) {
    for _ in 0..n {
        let _ = p.select(dest, len);
        p.observe(ProtoEvent::EagerDelivered { dest, len, ns: eager_ns });
        p.observe(ProtoEvent::RzvComplete { dest, len, ns: rzv_ns });
    }
}

#[test]
fn adaptive_converges_up_when_eager_wins() {
    let upc = Upc::new();
    let cfg = cfg();
    let p = AdaptivePolicy::new(cfg, &upc);
    // Eager decisively cheaper at every size near the crossover: the
    // threshold must walk up and stop exactly at the clamp, never past it.
    let mut last = p.crossover(7);
    for _round in 0..64 {
        let len = p.crossover(7); // stay in-band as the crossover moves
        drive(&p, 7, len, 1_000, 50_000, 8);
        let now = p.crossover(7);
        assert!(now >= last, "crossover only rises on eager-favouring evidence");
        assert!(now <= cfg.max, "never tunes past the clamp");
        last = now;
    }
    assert_eq!(last, cfg.max, "consistent evidence converges to the bound");
    // Even now, selection above the clamp is still rendezvous.
    assert_eq!(p.select(7, cfg.max + 1), Protocol::Rendezvous);
}

#[test]
fn adaptive_converges_down_when_rendezvous_wins() {
    let upc = Upc::new();
    let cfg = cfg();
    let p = AdaptivePolicy::new(cfg, &upc);
    let mut last = p.crossover(9);
    for _round in 0..64 {
        let len = p.crossover(9);
        drive(&p, 9, len, 50_000, 1_000, 8);
        let now = p.crossover(9);
        assert!(now <= last, "crossover only falls on rendezvous-favouring evidence");
        assert!(now >= cfg.min, "never tunes below the floor");
        last = now;
    }
    assert_eq!(last, cfg.min, "consistent evidence converges to the floor");
    // At or below the floor eager is still mandatory.
    assert_eq!(p.select(9, cfg.min), Protocol::Eager);
}

#[test]
fn per_destination_crossovers_tune_independently() {
    // Destination 1 behaves like a fast eager path (e.g. nearest neighbor);
    // destination 2 like a slow receiver where rendezvous throttling wins.
    // One policy object must hold both optima at once.
    let upc = Upc::new();
    let cfg = cfg();
    let p = AdaptivePolicy::new(cfg, &upc);
    for _round in 0..48 {
        let l1 = p.crossover(1);
        let l2 = p.crossover(2);
        drive(&p, 1, l1, 1_000, 40_000, 8); // eager wins toward dest 1
        drive(&p, 2, l2, 40_000, 1_000, 8); // rendezvous wins toward dest 2
    }
    let up = p.crossover(1);
    let down = p.crossover(2);
    assert!(
        up > cfg.initial && down < cfg.initial,
        "crossovers moved apart: dest1={up}, dest2={down}, initial={}",
        cfg.initial
    );
    // A destination the policy never saw still answers with the initial.
    assert_eq!(p.crossover(999), cfg.initial);
    // And the protocols actually differ at a size between the two optima.
    let mid = 4096;
    assert_eq!(p.select(1, mid), Protocol::Eager);
    assert_eq!(p.select(2, mid), Protocol::Rendezvous);
}

#[test]
fn adaptive_never_eager_above_clamp() {
    // Adversarial evidence claims eager is free at enormous sizes; the hard
    // clamp must still force rendezvous above cfg.max for every destination.
    let upc = Upc::new();
    let cfg = cfg();
    let p = AdaptivePolicy::new(cfg, &upc);
    for _ in 0..5_000 {
        p.observe(ProtoEvent::EagerDelivered { dest: 4, len: cfg.max, ns: 1 });
        p.observe(ProtoEvent::RzvComplete { dest: 4, len: cfg.max, ns: u64::MAX / 2 });
    }
    assert!(p.crossover(4) <= cfg.max);
    for len in [cfg.max + 1, 2 * cfg.max, 64 * cfg.max] {
        assert_eq!(p.select(4, len), Protocol::Rendezvous, "len={len}");
    }
    // Mirror image: rendezvous-favouring floods never push below the floor.
    for _ in 0..5_000 {
        p.observe(ProtoEvent::EagerDelivered { dest: 4, len: cfg.min, ns: u64::MAX / 2 });
        p.observe(ProtoEvent::RzvComplete { dest: 4, len: cfg.min, ns: 1 });
    }
    assert!(p.crossover(4) >= cfg.min);
    assert_eq!(p.select(4, cfg.min), Protocol::Eager);
    assert_eq!(p.select(4, cfg.min / 2), Protocol::Eager);
}

#[test]
fn hysteresis_holds_crossover_on_noisy_ties() {
    // Costs within the hysteresis band (15%) must not move the threshold,
    // no matter how many samples accumulate.
    let upc = Upc::new();
    let cfg = cfg();
    let p = AdaptivePolicy::new(cfg, &upc);
    drive(&p, 5, cfg.initial, 10_000, 10_500, 500); // 5% apart: inside the band
    assert_eq!(p.crossover(5), cfg.initial, "tie evidence leaves the crossover alone");
}

// ---------------------------------------------------------------------------
// End-to-end wiring through Machine/Context
// ---------------------------------------------------------------------------

/// Two functional ranks exchanging real messages under the adaptive policy:
/// the machine-owned policy sees live observations (its `proto.*` probes
/// move) and the traffic is delivered intact over whichever protocol it
/// picks.
#[test]
fn machine_wired_adaptive_policy_observes_real_traffic() {
    let machine = Machine::with_nodes(2).eager_limit(4096).adaptive_policy().build();
    assert_eq!(machine.policy().name(), "adaptive");
    let sender = Client::create(&machine, 0, "pol", 1);
    let receiver = Client::create(&machine, 1, "pol", 1);
    let got = Arc::new(AtomicU64::new(0));
    let sink = MemRegion::zeroed(64 * 1024);
    {
        let got = Arc::clone(&got);
        let sink = sink.clone();
        receiver.context(0).set_dispatch(
            1,
            Arc::new(move |_ctx: &pami::Context, _msg: &pami::IncomingMsg, _first: &[u8]| {
                let got = Arc::clone(&got);
                Recv::Into {
                    region: sink.clone(),
                    offset: 0,
                    on_complete: Box::new(move |_, _result| {
                        got.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            }),
        );
    }
    // A mixed-size stream straddling the initial crossover: 2 KiB (eager
    // band) and 8 KiB (in the decision band above 4096).
    let total = 256u64;
    for i in 0..total {
        let len = if i % 2 == 0 { 2 * 1024 } else { 8 * 1024 };
        sender.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: 1,
            metadata: Vec::new(),
            payload: PayloadSource::Region {
                region: MemRegion::from_vec(vec![i as u8; len]),
                offset: 0,
                len,
            },
            local_done: None,
        }).unwrap();
        while got.load(Ordering::Relaxed) < i + 1 {
            sender.context(0).advance();
            receiver.context(0).advance();
        }
    }
    assert_eq!(got.load(Ordering::Relaxed), total);
    let snap = machine.telemetry().snapshot();
    assert!(
        snap.counter("proto.eager_selected") > 0,
        "small messages went eager"
    );
    assert!(
        snap.counter("proto.rzv_selected") > 0,
        "large messages went rendezvous (or exploration flipped some)"
    );
    assert!(
        snap.histogram("proto.eager_delivery_ns").map(|h| h.count).unwrap_or(0) > 0,
        "receiver fed eager completions back into the policy"
    );
    // The crossover is live state within the clamp.
    let x = machine.policy().crossover(1);
    assert!((512..=128 * 1024).contains(&x), "crossover {x} inside clamp");
}

/// The static default stays bit-for-bit: `eager_limit` is the crossover for
/// every destination and observations never move it.
#[test]
fn machine_default_policy_is_static() {
    let machine = Machine::with_nodes(2).eager_limit(2048).build();
    let p = machine.policy();
    assert_eq!(p.name(), "static");
    assert_eq!(p.crossover(0), 2048);
    assert_eq!(p.select(1, 2048), Protocol::Eager);
    assert_eq!(p.select(1, 2049), Protocol::Rendezvous);
    p.observe(ProtoEvent::RzvComplete { dest: 1, len: 2048, ns: 1_000_000 });
    assert_eq!(p.crossover(1), 2048, "static policy ignores observations");
}
