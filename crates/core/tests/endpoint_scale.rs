//! O(1)-per-endpoint invariants at co-simulation scale.
//!
//! The bgq-scale harness multiplexes up to a million virtual endpoints
//! onto a handful of real contexts; the runtime structures whose size is
//! keyed by *task count* must grow linearly (one slot per task), and the
//! structures keyed by *context count* must not grow with task count at
//! all. These tests pin both properties at 100K registered virtual
//! endpoints, so an accidental `tasks × ENDPOINT_CTX_SLOTS` (or worse)
//! blow-up in a future change fails fast instead of surfacing as an OOM
//! in the scale bench.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use pami::{Client, Endpoint, Machine, PayloadSource, Recv, SendArgs};

/// Build a machine with `tasks` tasks over `nodes` nodes, one lead context
/// per node, every non-lead task registered as a virtual endpoint aliasing
/// its node's lead. Returns the machine and the lead clients.
fn oversubscribed(nodes: usize, tasks: usize) -> (Arc<Machine>, Vec<Arc<Client>>) {
    assert_eq!(tasks % nodes, 0);
    let ppn = tasks / nodes;
    let machine = Machine::builder(bgq_torus::TorusShape::for_nodes(nodes))
        .oversubscribed_ppn(ppn)
        .build();
    let mut clients = Vec::with_capacity(nodes);
    for node in 0..nodes as u32 {
        let lead = node * ppn as u32;
        let client = Client::create(&machine, lead, "scaletest", 1);
        let ctx = client.context(0);
        for task in lead + 1..lead + ppn as u32 {
            machine.register_virtual_endpoint(task, 0, ctx);
        }
        clients.push(client);
    }
    (machine, clients)
}

#[test]
fn endpoint_table_is_one_slot_per_task_at_scale() {
    // Above 4096 tasks the endpoint cache must collapse to one context
    // slot per task: 100K tasks -> exactly 100K slots, not 100K × 16.
    let (machine, _clients) = oversubscribed(4, 100_000);
    let (slots, per_task) = machine.endpoint_cache_geometry();
    assert_eq!(per_task, 1, "sparse regime must use one context slot per task");
    assert_eq!(slots, 100_000, "endpoint table must be exactly one slot per task");
}

#[test]
fn endpoint_table_growth_is_linear_not_superlinear() {
    let slots_at = |tasks: usize| {
        let (machine, _clients) = oversubscribed(4, tasks);
        machine.endpoint_cache_geometry().0
    };
    let small = slots_at(10_000);
    let large = slots_at(100_000);
    assert_eq!(
        large,
        small * 10,
        "10x the endpoints must cost exactly 10x the endpoint-table slots"
    );
}

#[test]
fn dense_regime_keeps_the_full_context_fan_out() {
    // Small machines stay in the dense regime: 16 context slots per task,
    // so multi-context clients hit the lock-free fast path.
    let machine = Machine::with_nodes(2).ppn(4).build();
    let (slots, per_task) = machine.endpoint_cache_geometry();
    assert_eq!(per_task, 16);
    assert_eq!(slots, 8 * 16);
}

#[test]
fn matching_state_is_per_context_not_per_endpoint() {
    // 100K virtual endpoints funnel into 4 lead contexts; traffic to many
    // distinct virtual endpoints must land in the lead contexts' matching
    // state without any per-endpoint queue growth. Exercise a spread of
    // destinations across the whole task range and verify delivery — the
    // memory claim is pinned by the geometry tests above; this pins the
    // functional claim that virtual endpoints share their lead's queues.
    const TASKS: usize = 100_000;
    const NODES: usize = 4;
    let (_machine, clients) = oversubscribed(NODES, TASKS);
    let arrived = Arc::new(AtomicU64::new(0));
    for client in &clients {
        let arrived = Arc::clone(&arrived);
        client.context(0).set_dispatch(
            9,
            Arc::new(move |_, _, _| {
                arrived.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    // One sender (node 0's lead) sprays sends across the task range,
    // including the very last virtual endpoint.
    let sender = clients[0].context(0);
    let msgs: Vec<u32> =
        (0..64u32).map(|i| (i * 1567 + 3) % TASKS as u32).chain([TASKS as u32 - 1]).collect();
    for &dest in &msgs {
        sender
            .send(SendArgs {
                dest: Endpoint::of_task(dest),
                dispatch: 9,
                metadata: Vec::new(),
                payload: PayloadSource::Immediate(Bytes::from_static(&[7u8; 8])),
                local_done: None,
            })
            .expect("send to a virtual endpoint");
    }
    let expected = msgs.len() as u64;
    let mut spins = 0u64;
    while arrived.load(Ordering::Relaxed) < expected {
        for client in &clients {
            client.context(0).advance();
        }
        spins += 1;
        assert!(spins < 1_000_000, "virtual-endpoint delivery stalled");
    }
    assert_eq!(arrived.load(Ordering::Relaxed), expected);
}
