//! Integration tests for the TRAM-style small-message aggregation layer
//! (`pami::aggr`), end to end over the simulated MU fabric.
//!
//! The properties under test are the ones the coalescing layer must not
//! trade away for message rate:
//!
//! * **Per-(src,dst) ordering** — records inside a frame, across frames,
//!   and across the aggregated/direct protocol boundary (conflict flush)
//!   arrive in send order.
//! * **Exactly-once under faults** — an aggregated frame is one short-tier
//!   packet on the destination's pinned FIFO, so drop/corrupt plans cost
//!   retransmits of whole frames, never duplicate or lost records.
//! * **Flush policy** — fill, age-bound (on the advance clock), explicit
//!   `flush_aggr`, and conflict flush each fire when they should.
//! * **Equivalence** — aggregation on and off deliver byte-identical
//!   streams in identical order; only the packet count changes.
//! * **Failover** — buckets opened before a failover land on the standby,
//!   because frame destinations resolve at emit time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{
    AggrConfig, Client, Counter, Endpoint, FaultPlan, Machine, PayloadSource, Recv, SendArgs,
};

const DISPATCH: u16 = 7;

/// Pattern for message `i` of length `len`: every byte depends on both, so
/// cross-message mixups and intra-message holes are both visible.
fn pattern(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|b| ((i * 131 + b * 7) % 251) as u8).collect()
}

/// Drive `msgs` messages of `len` bytes from task 0 to task 1 over a
/// 2-node machine, aggregation configured per `aggr`, optional fault plan.
/// Returns (machine, arrival log): the log is the receiver's dispatch
/// order, one `(index, payload)` per record, exactly as handlers ran.
fn exchange(
    aggr: Option<AggrConfig>,
    plan: Option<FaultPlan>,
    msgs: usize,
    len: impl Fn(usize) -> usize + Send + Sync + 'static,
) -> (Arc<Machine>, Vec<(u64, Vec<u8>)>) {
    let mut builder = Machine::with_nodes(2);
    if let Some(cfg) = aggr {
        builder = builder.aggregation(cfg);
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let machine = builder.build();
    type ArrivalLog = parking_lot::Mutex<Vec<(u64, Vec<u8>)>>;
    let log: Arc<ArrivalLog> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let len = Arc::new(len);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "aggr", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            let log = Arc::clone(&log2);
            let seen = Arc::clone(&seen2);
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_ctx, msg, payload| {
                    let i = u64::from_le_bytes(msg.metadata[..8].try_into().unwrap());
                    log.lock().push((i, payload.to_vec()));
                    seen.fetch_add(1, Ordering::SeqCst);
                    Recv::Done
                }),
            );
        }
        env.machine.task_barrier();
        if env.task == 0 {
            let done = Counter::new();
            for i in 0..msgs {
                let n = len(i);
                done.add_expected(if n == 0 { 1 } else { n as u64 });
                ctx.send(SendArgs {
                    dest: Endpoint::of_task(1),
                    dispatch: DISPATCH,
                    metadata: (i as u64).to_le_bytes().to_vec(),
                    payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(i, n))),
                    local_done: Some(done.clone()),
                })
                .unwrap();
                ctx.advance();
            }
            // Cut whatever the fill/age policy left open, then keep the
            // pump running until the receiver has everything (frame
            // retransmits under a fault plan happen on our advance).
            ctx.flush_aggr();
            ctx.advance_until(|| done.is_complete());
            assert!(done.is_ok(), "all sends locally complete: {:?}", done.fault());
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == msgs as u64);
        } else {
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == msgs as u64);
        }
    });
    assert_eq!(seen.load(Ordering::SeqCst), msgs as u64);
    let log = Arc::try_unwrap(log).expect("all clones dropped").into_inner();
    (machine, log)
}

/// Assert `log` is an exactly-once, in-order, intact delivery of
/// `0..msgs` with sizes from `len`.
fn assert_stream(log: &[(u64, Vec<u8>)], msgs: usize, len: impl Fn(usize) -> usize) {
    assert_eq!(log.len(), msgs, "every message exactly once");
    for (pos, (i, payload)) in log.iter().enumerate() {
        assert_eq!(*i, pos as u64, "per-(src,dst) send order preserved");
        assert_eq!(payload, &pattern(pos, len(pos)), "record {pos} intact");
    }
}

// ---------------------------------------------------------------------------
// Ordering and batching
// ---------------------------------------------------------------------------

#[test]
fn aggregated_flood_arrives_in_order_and_actually_batches() {
    const MSGS: usize = 256;
    let (machine, log) = exchange(Some(AggrConfig::default()), None, MSGS, |_| 32);
    assert_stream(&log, MSGS, |_| 32);
    if cfg!(feature = "telemetry") {
        let snap = machine.telemetry().snapshot();
        let frames = snap.counter("aggr.frames");
        let batched = snap.counter("aggr.batched_msgs");
        assert_eq!(batched, MSGS as u64, "every small send rode the coalescing path");
        assert!(frames > 0 && frames < MSGS as u64, "coalescing must shrink the packet count");
        assert!(
            batched / frames > 4,
            "32 B records in 512 B frames must average > 4 per frame (got {})",
            batched / frames
        );
        assert_eq!(snap.counter("ctx.sends_aggr"), MSGS as u64);
    }
}

#[test]
fn mixed_sizes_cross_the_protocol_boundary_in_order() {
    // Sizes straddle the aggregation cutoff (128 B): small records buffer,
    // large ones conflict-flush the bucket first. Order must survive the
    // interleave with no explicit flushes beyond the final tail cut.
    const MSGS: usize = 96;
    let len = |i: usize| if i % 3 == 2 { 512 } else { 16 + (i % 7) * 8 };
    let (machine, log) = exchange(Some(AggrConfig::default()), None, MSGS, len);
    assert_stream(&log, MSGS, len);
    if cfg!(feature = "telemetry") {
        let snap = machine.telemetry().snapshot();
        assert!(snap.counter("aggr.flush_conflict") > 0, "large sends must cut open buckets");
        assert!(snap.counter("ctx.sends_eager") > 0, "large sends ride the eager tier");
    }
}

#[test]
fn aggregation_on_and_off_deliver_identical_streams() {
    // A/B equivalence: the same traffic with aggregation on and off must
    // produce byte-identical arrival logs — same records, same order.
    // Only the wire-level packet count may differ.
    const MSGS: usize = 128;
    let len = |i: usize| 8 + (i % 15) * 9; // 8..134 B, straddles the cutoff
    let (on_machine, on) = exchange(Some(AggrConfig::default()), None, MSGS, len);
    let (_, off) = exchange(None, None, MSGS, len);
    assert_eq!(on, off, "aggregation must be invisible to the delivery stream");
    if cfg!(feature = "telemetry") {
        let snap = on_machine.telemetry().snapshot();
        assert!(snap.counter("aggr.frames") > 0, "the on-arm must actually coalesce");
    }
}

#[test]
fn zero_length_records_coalesce() {
    // Empty payloads (pure metadata signals — the flag-put idiom) are the
    // densest possible aggregation case and must round-trip.
    const MSGS: usize = 64;
    let (_, log) = exchange(Some(AggrConfig::default()), None, MSGS, |_| 0);
    assert_stream(&log, MSGS, |_| 0);
}

// ---------------------------------------------------------------------------
// Flush policy
// ---------------------------------------------------------------------------

#[test]
fn age_bound_flush_fires_on_the_advance_clock() {
    // One lone record, no fill pressure, no explicit flush: only the age
    // bound can cut it. Stall past the bound, then a single advance must
    // inject the frame.
    let cfg = AggrConfig { age_us: 200, ..AggrConfig::default() };
    let machine = Machine::with_nodes(2).aggregation(cfg).build();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "aggr", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            let seen = Arc::clone(&seen2);
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_, _, payload| {
                    assert_eq!(payload, &pattern(0, 24)[..]);
                    seen.fetch_add(1, Ordering::SeqCst);
                    Recv::Done
                }),
            );
        }
        env.machine.task_barrier();
        if env.task == 0 {
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: DISPATCH,
                metadata: 0u64.to_le_bytes().to_vec(),
                payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(0, 24))),
                local_done: None,
            })
            .unwrap();
            assert_eq!(ctx.aggr_pending(), 1, "one record buffered, none injected");
            ctx.advance();
            assert_eq!(ctx.aggr_pending(), 1, "a young bucket survives advance");
            std::thread::sleep(std::time::Duration::from_micros(400));
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == 1);
            assert_eq!(ctx.aggr_pending(), 0, "the age bound cut the bucket");
        } else {
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == 1);
        }
    });
    assert_eq!(seen.load(Ordering::SeqCst), 1);
    if cfg!(feature = "telemetry") {
        assert!(machine.telemetry().snapshot().counter("aggr.flush_age") > 0);
    }
}

#[test]
fn explicit_flush_drains_every_bucket() {
    // Fan a few records out to distinct destinations, then one
    // `flush_aggr` must inject all buckets and leave nothing pending.
    let machine = Machine::with_nodes(4).aggregation(AggrConfig::default()).build();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "aggr", 1);
        let ctx = client.context(0);
        if env.task != 0 {
            let seen = Arc::clone(&seen2);
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_, _, _| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    Recv::Done
                }),
            );
        }
        env.machine.task_barrier();
        if env.task == 0 {
            for dest in 1u32..4 {
                for i in 0..3usize {
                    ctx.send(SendArgs {
                        dest: Endpoint::of_task(dest),
                        dispatch: DISPATCH,
                        metadata: (i as u64).to_le_bytes().to_vec(),
                        payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(i, 16))),
                        local_done: None,
                    })
                    .unwrap();
                }
            }
            assert_eq!(ctx.aggr_pending(), 9, "three buckets of three records each");
            let frames = ctx.flush_aggr();
            assert_eq!(frames, 3, "one frame per destination bucket");
            assert_eq!(ctx.aggr_pending(), 0);
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == 9);
        } else {
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == 9);
        }
    });
    assert_eq!(seen.load(Ordering::SeqCst), 9);
}

// ---------------------------------------------------------------------------
// Multi-packet frames (max_frame beyond one torus packet)
// ---------------------------------------------------------------------------

#[test]
fn multi_packet_frames_reassemble_and_unbatch_in_order() {
    // max_frame 2048 is four torus packets: fill-cut frames leave as an
    // eager packet train, reassemble on the receiver, and only then
    // unbatch. Ordering and intactness must match the single-packet path.
    // The age bound is pinned out of reach so every cut is a fill cut and
    // the frame count is host-speed independent (a slow debug run would
    // otherwise age-cut shallow frames and break the batch-depth assert).
    const MSGS: usize = 256;
    let cfg = AggrConfig { max_frame: 2048, age_us: 1_000_000, ..AggrConfig::default() };
    let (machine, log) = exchange(Some(cfg), None, MSGS, |i| 16 + i % 48);
    assert_stream(&log, MSGS, |i| 16 + i % 48);
    if cfg!(feature = "telemetry") {
        let snap = machine.telemetry().snapshot();
        let frames = snap.counter("aggr.frames");
        let batched = snap.counter("aggr.batched_msgs");
        assert_eq!(batched, MSGS as u64);
        assert!(
            batched / frames > 16,
            "2 KB frames of ~50 B records must average deep batches (got {})",
            batched / frames
        );
    }
}

#[test]
fn multi_packet_frames_survive_drop_and_corrupt() {
    // The reassembly path rides the same selective-repeat channel as any
    // eager train: dropped or corrupted mid-train packets cost packet
    // retransmits, the frame completes once, and every record unbatches
    // exactly once, in order. The age bound is pinned out of reach so the
    // packet sequence — and with it the seeded fault history, which the
    // "plan must bite" assert depends on — is host-speed independent.
    const MSGS: usize = 192;
    let cfg = AggrConfig { max_frame: 2048, age_us: 1_000_000, ..AggrConfig::default() };
    let plan = FaultPlan::new().seed(9103).drop_rate(0.02).corrupt_rate(0.01);
    let (machine, log) = exchange(Some(cfg), Some(plan), MSGS, |i| 16 + i % 48);
    assert_stream(&log, MSGS, |i| 16 + i % 48);
    if cfg!(feature = "telemetry") {
        let ras = machine.fabric().ras_counters();
        assert!(ras.retransmits.value() + ras.crc_errors.value() > 0, "the plan must bite");
    }
}

// ---------------------------------------------------------------------------
// Faults: exactly-once and failover
// ---------------------------------------------------------------------------

#[test]
fn exactly_once_under_drop_and_corrupt_on_batched_frames() {
    // 1% drop + 1% corrupt on a 192-message aggregated flood: the frames
    // ride the selective-repeat channel, so lost/corrupted frames cost
    // whole-frame retransmits and every record still lands exactly once,
    // in order (assert_stream checks both).
    const MSGS: usize = 192;
    let plan = FaultPlan::new().seed(9101).drop_rate(0.01).corrupt_rate(0.01);
    let (machine, log) = exchange(Some(AggrConfig::default()), Some(plan), MSGS, |i| 16 + i % 48);
    assert_stream(&log, MSGS, |i| 16 + i % 48);
    if cfg!(feature = "telemetry") {
        let snap = machine.telemetry().snapshot();
        assert!(snap.counter("aggr.frames") > 0, "the chaos arm must actually batch");
    }
}

#[test]
fn heavier_chaos_still_exactly_once_and_deterministic() {
    let run = || {
        let plan = FaultPlan::new().seed(9102).drop_rate(0.05).corrupt_rate(0.03);
        // Age bound pinned out of reach: the determinism assert compares
        // two runs' fault histories, which only match if every cut is a
        // fill cut (an age cut's timing depends on host speed).
        let cfg = AggrConfig { age_us: 1_000_000, ..AggrConfig::default() };
        let (machine, log) = exchange(Some(cfg), Some(plan), 128, |_| 40);
        assert_stream(&log, 128, |_| 40);
        let ras = machine.fabric().ras_counters();
        (ras.retransmits.value(), ras.crc_errors.value())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same fault history over batched frames");
    if cfg!(feature = "telemetry") {
        assert!(a.0 > 0 || a.1 > 0, "a 5%/3% plan must actually bite");
    }
}

#[test]
fn bucket_opened_before_failover_flushes_to_the_standby() {
    // Records buffered against task 1, failover fires, then the flush:
    // the frame's destination resolves at emit time, so the whole bucket
    // lands on standby task 2 — no records are stranded on the dead
    // primary's address.
    const MSGS: usize = 5;
    let shape = bgq_torus::TorusShape::for_nodes(3);
    let machine = Machine::builder(shape).aggregation(AggrConfig::default()).build();
    machine.register_standby(1, 2);
    let standby_got = Arc::new(AtomicU64::new(0));
    let primary_got = Arc::new(AtomicU64::new(0));
    let (sg, pg) = (Arc::clone(&standby_got), Arc::clone(&primary_got));
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "aggr", 1);
        let ctx = client.context(0);
        match env.task {
            1 => {
                let got = Arc::clone(&pg);
                ctx.set_dispatch(
                    DISPATCH,
                    Arc::new(move |_, _, _| {
                        got.fetch_add(1, Ordering::SeqCst);
                        Recv::Done
                    }),
                );
            }
            2 => {
                let got = Arc::clone(&sg);
                ctx.set_dispatch(
                    DISPATCH,
                    Arc::new(move |_, msg, payload| {
                        let i = u64::from_le_bytes(msg.metadata[..8].try_into().unwrap());
                        assert_eq!(payload, &pattern(i as usize, 32)[..]);
                        got.fetch_add(1, Ordering::SeqCst);
                        Recv::Done
                    }),
                );
            }
            _ => {}
        }
        env.machine.task_barrier();
        if env.task == 0 {
            for i in 0..MSGS {
                ctx.send(SendArgs {
                    dest: Endpoint::of_task(1),
                    dispatch: DISPATCH,
                    metadata: (i as u64).to_le_bytes().to_vec(),
                    payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(i, 32))),
                    local_done: None,
                })
                .unwrap();
            }
            assert_eq!(ctx.aggr_pending(), MSGS, "nothing injected before the failover");
            assert_eq!(env.machine.failover(1), Some(2), "operator failover fires");
            assert_eq!(ctx.flush_aggr(), 1, "the whole bucket leaves as one frame");
            ctx.advance_until(|| sg.load(Ordering::SeqCst) == MSGS as u64);
        } else {
            ctx.advance_until(|| sg.load(Ordering::SeqCst) == MSGS as u64);
        }
    });
    assert_eq!(standby_got.load(Ordering::SeqCst), MSGS as u64, "standby received the bucket");
    assert_eq!(primary_got.load(Ordering::SeqCst), 0, "the dead primary saw nothing");
}

// ---------------------------------------------------------------------------
// Node-bucket (TRAM intermediate) mode
// ---------------------------------------------------------------------------

#[test]
fn node_buckets_coalesce_across_tasks_and_still_route_by_endpoint() {
    // ppn=2: tasks 2 and 3 share node 1. In node-bucket mode sends to
    // both coalesce under one bucket (addressed records), and the
    // receiver-side unbatcher forwards each record to its true endpoint
    // over the node's mailboxes.
    const PER_TASK: usize = 6;
    let machine = Machine::with_nodes(2)
        .ppn(2)
        .aggregation(AggrConfig { node_buckets: true, ..AggrConfig::default() })
        .build();
    let got2 = Arc::new(AtomicU64::new(0));
    let got3 = Arc::new(AtomicU64::new(0));
    let (g2, g3) = (Arc::clone(&got2), Arc::clone(&got3));
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "aggr", 1);
        let ctx = client.context(0);
        if env.task >= 2 {
            let got = if env.task == 2 { Arc::clone(&g2) } else { Arc::clone(&g3) };
            let task = env.task;
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_, msg, _| {
                    let tagged = u64::from_le_bytes(msg.metadata[..8].try_into().unwrap());
                    assert_eq!(tagged >> 32, task as u64, "record landed on its own endpoint");
                    got.fetch_add(1, Ordering::SeqCst);
                    Recv::Done
                }),
            );
        }
        env.machine.task_barrier();
        let total = (2 * PER_TASK) as u64;
        if env.task == 0 {
            for i in 0..PER_TASK {
                for dest in 2u32..4 {
                    let tag = ((dest as u64) << 32) | i as u64;
                    ctx.send(SendArgs {
                        dest: Endpoint::of_task(dest),
                        dispatch: DISPATCH,
                        metadata: tag.to_le_bytes().to_vec(),
                        payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(i, 20))),
                        local_done: None,
                    })
                    .unwrap();
                }
            }
            assert_eq!(
                ctx.aggr_pending(),
                2 * PER_TASK,
                "both destinations share the node bucket"
            );
            assert_eq!(ctx.flush_aggr(), 1, "one node bucket, one frame");
            ctx.advance_until(|| {
                g2.load(Ordering::SeqCst) + g3.load(Ordering::SeqCst) == total
            });
        } else {
            ctx.advance_until(|| {
                g2.load(Ordering::SeqCst) + g3.load(Ordering::SeqCst) == total
            });
        }
    });
    assert_eq!(got2.load(Ordering::SeqCst), PER_TASK as u64);
    assert_eq!(got3.load(Ordering::SeqCst), PER_TASK as u64);
    if cfg!(feature = "telemetry") {
        let snap = machine.telemetry().snapshot();
        assert!(snap.counter("aggr.forwarded") > 0, "sibling records hop the mailbox");
    }
}
