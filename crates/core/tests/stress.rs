//! Stress and failure-injection tests: overflow paths, protocol boundary
//! conditions, resource exhaustion, and contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{Client, Context, Counter, Endpoint, Machine, MemRegion, PayloadSource, Recv, SendArgs};

fn counting_handler(count: &Arc<AtomicU64>, bytes: &Arc<AtomicU64>) -> pami::context::DispatchFn {
    let count = Arc::clone(count);
    let bytes = Arc::clone(bytes);
    Arc::new(move |_ctx: &Context, msg: &pami::IncomingMsg, first: &[u8]| {
        if first.len() as u64 == msg.len {
            count.fetch_add(1, Ordering::Relaxed);
            bytes.fetch_add(msg.len, Ordering::Relaxed);
            return Recv::Done;
        }
        let region = MemRegion::zeroed(msg.len as usize);
        let count = Arc::clone(&count);
        let bytes = Arc::clone(&bytes);
        let len = msg.len;
        Recv::Into {
            region,
            offset: 0,
            on_complete: Box::new(move |_, _result| {
                count.fetch_add(1, Ordering::Relaxed);
                bytes.fetch_add(len, Ordering::Relaxed);
            }),
        }
    })
}

#[test]
fn reception_fifo_overflow_engages_and_recovers() {
    // Tiny ring: a burst of messages far beyond capacity must all arrive
    // via the overflow queue, in order.
    let machine = Machine::with_nodes(2).fifo_capacities(4, 4).build();
    let c0 = Client::create(&machine, 0, "s", 1);
    let c1 = Client::create(&machine, 1, "s", 1);
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o2 = Arc::clone(&order);
    c1.context(0).set_dispatch(
        1,
        Arc::new(move |_ctx, msg, _first| {
            o2.lock().push(u32::from_le_bytes(msg.metadata[..4].try_into().unwrap()));
            Recv::Done
        }),
    );
    const N: u32 = 500;
    for i in 0..N {
        c0.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: 1,
            metadata: i.to_le_bytes().to_vec(),
            payload: PayloadSource::Immediate(bytes::Bytes::new()),
            local_done: None,
        }).unwrap();
        // Pump the sender so packets pile into the tiny reception ring.
        c0.context(0).advance();
    }
    // Drive both sides to delivery (the semantic signal — telemetry
    // counters read zero when the feature is compiled out).
    while order.lock().len() < N as usize {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    if cfg!(feature = "telemetry") {
        // Sampled per-packet counters: 1-in-16 messages counted, scaled by
        // the sample window — N consecutive lane sequences round up to the
        // next full window.
        let sample = bgq_mu::MU_PACKET_COUNTER_SAMPLE;
        assert_eq!(
            machine.fabric().counters(0).fifo_messages.value(),
            (N as u64).div_ceil(sample) * sample
        );
    }
    assert_eq!(*order.lock(), (0..N).collect::<Vec<u32>>(), "overflow preserved order");
}

#[test]
fn eager_rendezvous_boundary_is_exact() {
    let machine = Machine::with_nodes(2).eager_limit(1000).build();
    let c0 = Client::create(&machine, 0, "s", 1);
    let c1 = Client::create(&machine, 1, "s", 1);
    let count = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    c1.context(0).set_dispatch(1, counting_handler(&count, &bytes));

    for (len, expect_rzv) in [(999usize, false), (1000, false), (1001, true)] {
        let before_puts = machine.fabric().counters(1).put_bytes_in.value();
        let done = Counter::new();
        done.add_expected(len as u64);
        c0.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: 1,
            metadata: vec![],
            payload: PayloadSource::Region {
                region: MemRegion::from_vec(vec![7; len]),
                offset: 0,
                len,
            },
            local_done: Some(done.clone()),
        }).unwrap();
        while !done.is_complete() {
            c0.context(0).advance();
            c1.context(0).advance();
        }
        if cfg!(feature = "telemetry") {
            let used_rzv = machine.fabric().counters(1).put_bytes_in.value() > before_puts;
            assert_eq!(used_rzv, expect_rzv, "len {len}: wrong protocol");
        }
    }
    c1.context(0).advance_until(|| count.load(Ordering::Relaxed) == 3);
    assert_eq!(bytes.load(Ordering::Relaxed), 999 + 1000 + 1001);
}

#[test]
fn many_concurrent_rendezvous_transfers() {
    let machine = Machine::with_nodes(2).eager_limit(512).build();
    let c0 = Client::create(&machine, 0, "s", 1);
    let c1 = Client::create(&machine, 1, "s", 1);
    let count = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    c1.context(0).set_dispatch(1, counting_handler(&count, &bytes));
    const N: usize = 40;
    const LEN: usize = 8 * 1024;
    let done = Counter::new();
    for i in 0..N {
        done.add_expected(LEN as u64);
        c0.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: 1,
            metadata: vec![i as u8],
            payload: PayloadSource::Region {
                region: MemRegion::from_vec(vec![i as u8; LEN]),
                offset: 0,
                len: LEN,
            },
            local_done: Some(done.clone()),
        }).unwrap();
    }
    while !(done.is_complete() && count.load(Ordering::Relaxed) == N as u64) {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    assert_eq!(bytes.load(Ordering::Relaxed), (N * LEN) as u64);
    if cfg!(feature = "telemetry") {
        assert_eq!(machine.fabric().counters(1).put_bytes_in.value(), (N * LEN) as u64);
    }
}

#[test]
fn fifo_exhaustion_panics_with_message() {
    // Injection FIFOs run out first: 544 per node at 4 per context allows
    // 136 contexts; the 137th must fail loudly.
    let machine = Machine::with_nodes(1).build();
    let _fits = Client::create(&machine, 0, "greedy", 136);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _one_too_many = Client::create(&machine, 0, "greedy2", 1);
    }));
    let err = result.expect_err("the 137th context must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("injection FIFOs"), "unhelpful panic: {msg}");

    // With 1 injection FIFO per context, reception FIFOs (272) bind first.
    let machine2 = Machine::with_nodes(1).inj_fifos_per_context(1).build();
    let _fits2 = Client::create(&machine2, 0, "greedy", 272);
    let result2 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _one_too_many = Client::create(&machine2, 0, "greedy2", 1);
    }));
    let err2 = result2.expect_err("the 273rd context must fail");
    let msg2 = err2
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err2.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg2.contains("reception FIFOs"), "unhelpful panic: {msg2}");
}

#[test]
fn cross_context_endpoints_are_independent_channels() {
    // Two contexts per task: traffic on context 1 flows even while context
    // 0 is never advanced — the "independent communication channels" claim.
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "s", 2);
    let c1 = Client::create(&machine, 1, "s", 2);
    let got = Arc::new(AtomicU64::new(0));
    let g2 = Arc::clone(&got);
    c1.context(1).set_dispatch(
        1,
        Arc::new(move |_ctx, _msg, _p| {
            g2.fetch_add(1, Ordering::Relaxed);
            Recv::Done
        }),
    );
    for _ in 0..20 {
        c0.context(1).send(SendArgs {
            dest: Endpoint { task: 1, context: 1 },
            dispatch: 1,
            metadata: vec![],
            payload: PayloadSource::Immediate(bytes::Bytes::new()),
            local_done: None,
        }).unwrap();
    }
    // Only advance the two context-1 objects.
    while got.load(Ordering::Relaxed) < 20 {
        c0.context(1).advance();
        c1.context(1).advance();
    }
    assert!(c1.context(0).is_quiescent(), "context 0 untouched");
}

#[test]
fn concurrent_senders_through_one_context_with_lock() {
    // The paper's rule: threads sharing a context for sends must lock it.
    let machine = Machine::with_nodes(2).build();
    let c0 = Arc::new(Client::create(&machine, 0, "s", 1));
    let c1 = Client::create(&machine, 1, "s", 1);
    let got = Arc::new(AtomicU64::new(0));
    let g2 = Arc::clone(&got);
    c1.context(0).set_dispatch(
        1,
        Arc::new(move |_ctx, _msg, _p| {
            g2.fetch_add(1, Ordering::Relaxed);
            Recv::Done
        }),
    );
    const THREADS: usize = 4;
    const PER: usize = 200;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c0 = Arc::clone(&c0);
            s.spawn(move || {
                let ctx = c0.context(0);
                for _ in 0..PER {
                    let _guard = ctx.lock();
                    ctx.send(SendArgs {
                        dest: Endpoint::of_task(1),
                        dispatch: 1,
                        metadata: vec![],
                        payload: PayloadSource::Immediate(bytes::Bytes::new()),
                        local_done: None,
                    }).unwrap();
                }
            });
        }
        // Main thread drives progress meanwhile.
        while got.load(Ordering::Relaxed) < (THREADS * PER) as u64 {
            c0.context(0).advance();
            c1.context(0).advance();
        }
    });
    assert_eq!(got.load(Ordering::Relaxed), (THREADS * PER) as u64);
}

#[test]
fn zero_and_max_payload_sizes() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "s", 1);
    let c1 = Client::create(&machine, 1, "s", 1);
    let count = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    c1.context(0).set_dispatch(1, counting_handler(&count, &bytes));
    // 0 bytes, exactly one packet, one packet + 1, exactly the eager limit.
    for len in [0usize, 512, 513, 4096] {
        let done = Counter::new();
        done.add_expected(len.max(1) as u64);
        c0.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: 1,
            metadata: vec![],
            payload: PayloadSource::Region {
                region: MemRegion::zeroed(len.max(1)),
                offset: 0,
                len,
            },
            local_done: Some(done.clone()),
        }).unwrap();
        while !done.is_complete() {
            c0.context(0).advance();
            c1.context(0).advance();
        }
    }
    c1.context(0).advance_until(|| count.load(Ordering::Relaxed) == 4);
    assert_eq!(bytes.load(Ordering::Relaxed), (512 + 513 + 4096) as u64);
}

#[test]
fn context_fifo_ownership_under_concurrent_flood() {
    // The context-sharding contract: every context owns an exclusive
    // reception FIFO and an exclusive set of injection FIFOs, and traffic
    // addressed to context i is delivered by context i's advance and no
    // other. Eight context pairs flood concurrently; each message carries
    // its intended destination context in the metadata, and every handler
    // checks the byte against its own offset.
    const CONTEXTS: usize = 8;
    const MSGS: usize = 400;
    let machine = Machine::with_nodes(2).build();
    let sender = Client::create(&machine, 0, "own", CONTEXTS);
    let receiver = Client::create(&machine, 1, "own", CONTEXTS);

    // FIFO allocations are per-node resources: within each client, no two
    // contexts may share a reception FIFO or an injection FIFO.
    for client in [&sender, &receiver] {
        let mut rec = std::collections::HashSet::new();
        let mut inj = std::collections::HashSet::new();
        for i in 0..CONTEXTS {
            let ctx = client.context(i);
            assert!(rec.insert(ctx.rec_fifo_id()), "reception FIFO shared by two contexts");
            for id in ctx.inj_fifo_ids() {
                assert!(inj.insert(*id), "injection FIFO shared by two contexts");
            }
        }
    }

    let got: Vec<Arc<AtomicU64>> =
        (0..CONTEXTS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let misdelivered = Arc::new(AtomicU64::new(0));
    for (i, g) in got.iter().enumerate() {
        let g = Arc::clone(g);
        let bad = Arc::clone(&misdelivered);
        receiver.context(i).set_dispatch(
            7,
            Arc::new(move |_ctx, msg: &pami::IncomingMsg, _first| {
                if msg.metadata.first() != Some(&(i as u8)) {
                    bad.fetch_add(1, Ordering::Relaxed);
                }
                g.fetch_add(1, Ordering::Relaxed);
                Recv::Done
            }),
        );
    }
    std::thread::scope(|s| {
        for (i, g) in got.iter().enumerate() {
            let stx = Arc::clone(sender.context(i));
            let rtx = Arc::clone(receiver.context(i));
            let g = Arc::clone(g);
            s.spawn(move || {
                for k in 0..MSGS {
                    stx.send(SendArgs {
                        dest: Endpoint { task: 1, context: i as u16 },
                        dispatch: 7,
                        metadata: vec![i as u8],
                        payload: PayloadSource::Immediate(bytes::Bytes::from_static(&[1u8; 8])),
                        local_done: None,
                    }).unwrap();
                    if k % 8 == 0 {
                        stx.advance();
                        rtx.advance();
                    }
                }
                while g.load(Ordering::Relaxed) < MSGS as u64 {
                    stx.advance();
                    rtx.advance();
                }
            });
        }
    });
    assert_eq!(misdelivered.load(Ordering::Relaxed), 0, "cross-context delivery observed");
    for (i, g) in got.iter().enumerate() {
        assert_eq!(g.load(Ordering::Relaxed), MSGS as u64, "context {i} message count");
    }
}

#[test]
fn global_va_table_is_message_scoped() {
    // Large intra-node sends publish the source buffer in the CNK
    // global-VA table; delivery must withdraw the mapping.
    let machine = Machine::with_nodes(1).ppn(2).build();
    let c0 = Client::create(&machine, 0, "s", 1);
    let c1 = Client::create(&machine, 1, "s", 1);
    let count = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    c1.context(0).set_dispatch(1, counting_handler(&count, &bytes));
    const LEN: usize = 64 * 1024;
    let done = Counter::new();
    done.add_expected(LEN as u64);
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: 1,
        metadata: vec![],
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(vec![9; LEN]),
            offset: 0,
            len: LEN,
        },
        local_done: Some(done.clone()),
    }).unwrap();
    assert_eq!(machine.global_va(0).published_count(), 1, "mapping published");
    c1.context(0).advance_until(|| done.is_complete());
    assert_eq!(machine.global_va(0).published_count(), 0, "mapping withdrawn");
    assert_eq!(bytes.load(Ordering::Relaxed), LEN as u64);
}
