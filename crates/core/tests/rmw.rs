//! Remote atomics over the redesigned one-sided surface: `Context::rmw`
//! with and without the in-network combining overlay.
//!
//! The properties under test are the tentpole claims:
//!
//! * **Linearizability** — concurrent fetch-adds against one hot word
//!   return priors that form a permutation of the arithmetic series; the
//!   final value is the sum of the operands. Combining must not change
//!   either (it decombines replies by prefix sum at the root).
//! * **Exactly-once under chaos** — a seeded drop+corrupt plan forces
//!   retransmits and duplicate suppression on the rmw path; the counter
//!   still lands on exactly N·K.
//! * **A/B equivalence** — the same program with combining on and off
//!   produces identical application-visible state.
//! * **Operation semantics** — compare-swap, min and max apply their
//!   documented rules and return the prior value.

use std::sync::{Arc, OnceLock};

use pami::{
    Client, Counter, FaultPlan, Machine, MemKey, MemRegion, MemSlot, RmwArgs, RmwOp, WindowRef,
};

/// Run `f(task, ctx, key)` on every task of an `n`-task machine whose task
/// 0 exposes a zeroed 8-byte window; returns (machine, window memory).
fn hot_word_machine(
    n: usize,
    combining: bool,
    plan: Option<FaultPlan>,
    f: impl Fn(u32, &pami::Context, MemKey) + Send + Sync + Clone + 'static,
) -> (Arc<Machine>, MemRegion) {
    let mut builder = Machine::with_nodes(n).combining(combining);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let machine = builder.build();
    let word = MemRegion::zeroed(8);
    let key_cell: Arc<OnceLock<MemKey>> = Arc::new(OnceLock::new());
    let word2 = word.clone();
    let key_cell2 = Arc::clone(&key_cell);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "rmw", 1);
        let ctx = client.context(0);
        if env.task == 0 {
            let key = env.machine.create_window(word2.clone(), None);
            key_cell2.set(key).unwrap();
        }
        env.machine.task_barrier();
        let key = *key_cell2.get().unwrap();
        f(env.task, ctx, key);
        env.machine.task_barrier();
    });
    (machine, word)
}

/// Issue `k` fetch-adds of 1 from this task against the hot word,
/// collecting each prior; drive the context until all replies land.
fn fetch_add_k(ctx: &pami::Context, key: MemKey, k: usize) -> Vec<u64> {
    let slots: Vec<MemRegion> = (0..k).map(|_| MemRegion::zeroed(8)).collect();
    let done = Counter::new();
    done.add_expected(k as u64);
    for slot in &slots {
        ctx.rmw(RmwArgs {
            dest_task: 0,
            window: WindowRef::base(key),
            op: RmwOp::FetchAdd,
            operand: 1,
            compare: 0,
            result: Some(MemSlot::base(slot.clone())),
            done: Some(done.clone()),
        })
        .unwrap();
    }
    ctx.advance_until(|| done.is_complete());
    slots.iter().map(|s| s.read_i64(0) as u64).collect()
}

/// Priors from every task, flattened, must be a permutation of
/// `0..total` — the defining property of linearizable fetch-add.
fn assert_priors_linearizable(priors: &parking_lot::Mutex<Vec<u64>>, total: u64) {
    let mut all = priors.lock().clone();
    assert_eq!(all.len() as u64, total);
    all.sort_unstable();
    let expect: Vec<u64> = (0..total).collect();
    assert_eq!(all, expect, "priors are a permutation of 0..{total}");
    // Equivalent arithmetic-series check (the ISSUE's acceptance form).
    let sum: u64 = all.iter().sum();
    assert_eq!(sum, total * (total - 1) / 2);
}

#[test]
fn combined_fetch_adds_are_linearizable() {
    const N: usize = 8;
    const K: usize = 16;
    let priors: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::default();
    let priors2 = Arc::clone(&priors);
    let (machine, word) = hot_word_machine(N, true, None, move |_task, ctx, key| {
        let mine = fetch_add_k(ctx, key, K);
        priors2.lock().extend(mine);
    });
    assert!(machine.combining_enabled());
    assert_eq!(word.read_i64(0) as u64, (N * K) as u64, "every add applied once");
    assert_priors_linearizable(&priors, (N * K) as u64);
    if cfg!(feature = "telemetry") {
        let comb = machine.fabric().comb_counters().expect("combining on");
        assert_eq!(comb.requests.value(), ((N - 1) * K) as u64, "remote adds entered the overlay");
        assert!(comb.merged.value() > 0, "hot-key traffic combined");
        assert!(
            comb.root_applies.value() < ((N - 1) * K) as u64,
            "combining applied fewer batches than requests"
        );
        assert_eq!(comb.replies.value(), ((N - 1) * K) as u64, "every requester got its prior");
    }
}

#[test]
fn uncombined_fetch_adds_match_combined_results() {
    // A/B: the same hot-key program with the overlay disabled. Application
    // state (final value, prior multiset) must be identical.
    const N: usize = 8;
    const K: usize = 16;
    let priors: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::default();
    let priors2 = Arc::clone(&priors);
    let (machine, word) = hot_word_machine(N, false, None, move |_task, ctx, key| {
        let mine = fetch_add_k(ctx, key, K);
        priors2.lock().extend(mine);
    });
    assert!(!machine.combining_enabled());
    assert!(machine.fabric().comb_counters().is_none(), "no overlay when disabled");
    assert_eq!(word.read_i64(0) as u64, (N * K) as u64);
    assert_priors_linearizable(&priors, (N * K) as u64);
}

#[test]
fn rmw_is_exactly_once_under_drop_and_corrupt() {
    // 1% drop + 1% corrupt on the reliable (uncombined) rmw path: frames
    // retransmit, duplicates are suppressed by the channel, and the
    // counter still reads exactly N·K with the priors a permutation.
    const N: usize = 4;
    const K: usize = 64;
    let plan = FaultPlan::new().seed(4242).drop_rate(0.01).corrupt_rate(0.01);
    let priors: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::default();
    let priors2 = Arc::clone(&priors);
    let (machine, word) = hot_word_machine(N, false, Some(plan), move |_task, ctx, key| {
        let mine = fetch_add_k(ctx, key, K);
        priors2.lock().extend(mine);
    });
    assert_eq!(word.read_i64(0) as u64, (N * K) as u64, "exactly once under faults");
    assert_priors_linearizable(&priors, (N * K) as u64);
    if cfg!(feature = "telemetry") {
        let ras = machine.fabric().ras_counters();
        assert!(ras.retransmits.value() > 0, "the plan actually bit");
    }
}

#[test]
fn combined_fetch_adds_are_exactly_once_under_faults() {
    // The overlay's own retransmit/dedup machinery under the same plan:
    // hop packets drop and "corrupt" (data-arrived-ack-lost), batches
    // retry, ghosts are discarded — the hot word still lands on N·K and
    // the priors stay a permutation.
    // Combining collapses hot-key traffic into few hop packets, so the
    // rates are higher than the wire-level chaos tests' 1% to make the
    // plan bite the overlay's (fewer) packets deterministically.
    const N: usize = 8;
    const K: usize = 64;
    let plan = FaultPlan::new().seed(777).drop_rate(0.1).corrupt_rate(0.1);
    let priors: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::default();
    let priors2 = Arc::clone(&priors);
    let (machine, word) = hot_word_machine(N, true, Some(plan), move |_task, ctx, key| {
        let mine = fetch_add_k(ctx, key, K);
        priors2.lock().extend(mine);
    });
    assert_eq!(word.read_i64(0) as u64, (N * K) as u64, "exactly once under faults");
    assert_priors_linearizable(&priors, (N * K) as u64);
    if cfg!(feature = "telemetry") {
        let comb = machine.fabric().comb_counters().expect("combining on");
        assert!(
            comb.retransmits.value() > 0 || comb.dupes_dropped.value() > 0,
            "the plan exercised the overlay's reliability"
        );
    }
}

#[test]
fn compare_swap_min_max_semantics() {
    let (_machine, word) = hot_word_machine(2, false, None, move |task, ctx, key| {
        if task != 1 {
            return;
        }
        let prior = MemRegion::zeroed(8);
        let op = |op: RmwOp, operand: u64, compare: u64| -> u64 {
            let done = Counter::new();
            done.add_expected(1);
            ctx.rmw(RmwArgs {
                dest_task: 0,
                window: WindowRef::base(key),
                op,
                operand,
                compare,
                result: Some(MemSlot::base(prior.clone())),
                done: Some(done.clone()),
            })
            .unwrap();
            ctx.advance_until(|| done.is_complete());
            prior.read_i64(0) as u64
        };
        assert_eq!(op(RmwOp::FetchAdd, 41, 0), 0, "fetch-add returns prior");
        assert_eq!(op(RmwOp::CompareSwap, 100, 41), 41, "matching CAS swaps");
        assert_eq!(op(RmwOp::CompareSwap, 999, 41), 100, "mismatched CAS is a no-op");
        assert_eq!(op(RmwOp::Min, 50, 0), 100, "min(100, 50) keeps 50");
        assert_eq!(op(RmwOp::Min, 80, 0), 50, "higher candidate loses");
        assert_eq!(op(RmwOp::Max, 60, 0), 50, "max(50, 60) takes 60");
        assert_eq!(op(RmwOp::Max, 10, 0), 60, "lower candidate loses");
    });
    assert_eq!(word.read_i64(0), 60, "final value after the op sequence");
}

#[test]
fn offset_rmws_hit_distinct_words() {
    // Two offsets inside one window are independent atomics — combining
    // keys batches by (window, offset).
    const N: usize = 4;
    let machine = Machine::with_nodes(N).combining(true).build();
    let arr = MemRegion::zeroed(16);
    let key_cell: Arc<OnceLock<MemKey>> = Arc::new(OnceLock::new());
    let arr2 = arr.clone();
    let key_cell2 = Arc::clone(&key_cell);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "rmw", 1);
        let ctx = client.context(0);
        if env.task == 0 {
            key_cell2.set(env.machine.create_window(arr2.clone(), None)).unwrap();
        }
        env.machine.task_barrier();
        let key = *key_cell2.get().unwrap();
        let offset = (env.task as usize % 2) * 8;
        let done = Counter::new();
        done.add_expected(1);
        ctx.rmw(RmwArgs {
            dest_task: 0,
            window: WindowRef::at(key, offset),
            op: RmwOp::FetchAdd,
            operand: 1 + env.task as u64,
            compare: 0,
            result: None,
            done: Some(done.clone()),
        })
        .unwrap();
        ctx.advance_until(|| done.is_complete());
        env.machine.task_barrier();
    });
    // Even tasks (0, 2) hit offset 0: 1 + 3; odd tasks (1, 3) hit 8: 2 + 4.
    assert_eq!(arr.read_i64(0), 4);
    assert_eq!(arr.read_i64(8), 6);
}
