//! Seeded chaos tests: the PAMI runtime over a fault-injected fabric.
//!
//! Every test installs a deterministic [`FaultPlan`] through the
//! [`Machine`] builder and drives real PAMI traffic (eager sends,
//! rendezvous sends, collectives) across it. The properties under test are
//! the paper's RAS story, end to end:
//!
//! * **Exactly-once delivery** — drops and corruption cost retransmits,
//!   never duplicates or holes, at both the eager and rendezvous protocol
//!   crossover points.
//! * **Deterministic replay** — the same seed reproduces the same fault
//!   history (`ras.*` counters), so a chaos failure is a unit test, not a
//!   heisenbug.
//! * **Reroute** — killing the link the deterministic route uses moves
//!   traffic to a detour mid-collective; the collective still completes.
//! * **Bounded failure** — an exhausted retry budget fails the transfer's
//!   completion counter with [`DeliveryFault::Timeout`] instead of hanging
//!   `advance`, and the typed initiation surface ([`PamiError`]) rejects
//!   bad arguments without touching the network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::coll::{self, Algorithm};
use pami::{
    Client, Context, Counter, DeliveryFault, Endpoint, FaultPlan, Geometry, Machine, MemRegion,
    PamiError, PayloadSource, Recv, RetryConfig, SendArgs, Topology,
};

const DISPATCH: u16 = 3;

fn world_geometry(ctx: &Context) -> Arc<Geometry> {
    let n = ctx.machine().num_tasks() as u32;
    Geometry::create(ctx, 1, Topology::world(n))
}

/// Pattern for message `i` of length `len`: every byte is a function of
/// both, so cross-message mixups and intra-message holes are both visible.
fn pattern(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|b| ((i * 131 + b * 7) % 251) as u8).collect()
}

/// Send `msgs` messages of `len` bytes from task 0 to task 1 across a
/// fault-injected 2-node fabric; assert each arrives exactly once and
/// intact. Returns the fault history (retransmits, crc_errors) so callers
/// can assert the plan actually bit.
fn chaos_exchange(plan: FaultPlan, msgs: usize, len: usize) -> (u64, u64) {
    let machine = chaos_machine(plan, msgs, len);
    let ras = machine.fabric().ras_counters();
    (ras.retransmits.value(), ras.crc_errors.value())
}

/// [`chaos_exchange`], returning the machine so callers can inspect the
/// full RAS state (counters and event ring) after the run.
fn chaos_machine(plan: FaultPlan, msgs: usize, len: usize) -> Arc<Machine> {
    let machine = Machine::with_nodes(2).fault_plan(plan).build();
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            let seen = Arc::clone(&seen2);
            let received: Arc<parking_lot::Mutex<Vec<Option<Vec<u8>>>>> =
                Arc::new(parking_lot::Mutex::new(vec![None; msgs]));
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_ctx, msg, first| {
                    let i = u64::from_le_bytes(msg.metadata[..8].try_into().unwrap()) as usize;
                    if first.len() as u64 == msg.len {
                        let mut slot = received.lock();
                        assert!(slot[i].is_none(), "message {i} delivered twice");
                        assert_eq!(first, &pattern(i, first.len())[..], "message {i} corrupted");
                        slot[i] = Some(first.to_vec());
                        seen.fetch_add(1, Ordering::SeqCst);
                        return Recv::Done;
                    }
                    // Rendezvous path: land the payload, then check it.
                    let region = MemRegion::zeroed(msg.len as usize);
                    let stash = region.clone();
                    let received = Arc::clone(&received);
                    let seen = Arc::clone(&seen);
                    Recv::Into {
                        region,
                        offset: 0,
                        on_complete: Box::new(move |_ctx, result| {
                            result.expect("chaos payload delivery");
                            let bytes = stash.to_vec();
                            let mut slot = received.lock();
                            assert!(slot[i].is_none(), "message {i} delivered twice");
                            assert_eq!(bytes, pattern(i, bytes.len()), "message {i} corrupted");
                            slot[i] = Some(bytes);
                            seen.fetch_add(1, Ordering::SeqCst);
                        }),
                    }
                }),
            );
        }
        env.machine.task_barrier();
        if env.task == 0 {
            let done = Counter::new();
            for i in 0..msgs {
                done.add_expected(len as u64);
                ctx.send(SendArgs {
                    dest: Endpoint::of_task(1),
                    dispatch: DISPATCH,
                    metadata: (i as u64).to_le_bytes().to_vec(),
                    payload: PayloadSource::Region {
                        region: MemRegion::from_vec(pattern(i, len)),
                        offset: 0,
                        len,
                    },
                    local_done: Some(done.clone()),
                })
                .unwrap();
                ctx.advance();
            }
            ctx.advance_until(|| done.is_complete());
            assert!(done.is_ok(), "all sends locally complete: {:?}", done.fault());
            // Keep driving our side until the receiver has everything:
            // retransmits of the tail frames happen on our pump.
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == msgs as u64);
        } else {
            ctx.advance_until(|| seen2.load(Ordering::SeqCst) == msgs as u64);
        }
    });
    assert_eq!(seen.load(Ordering::SeqCst), msgs as u64);
    machine
}

#[test]
fn exactly_once_under_one_percent_drop_and_corrupt() {
    // Eager-sized messages (2 KiB < the 4 KiB crossover): 5 packets each.
    let plan = FaultPlan::new().seed(1001).drop_rate(0.01).corrupt_rate(0.01);
    chaos_exchange(plan, 48, 2048);
}

#[test]
fn exactly_once_under_five_percent_drop_and_corrupt() {
    let plan = FaultPlan::new().seed(1005).drop_rate(0.05).corrupt_rate(0.05);
    let (retransmits, _) = chaos_exchange(plan, 48, 2048);
    if cfg!(feature = "telemetry") {
        assert!(retransmits > 0, "a 5% fault rate over ~240 packets must cost retransmits");
    }
}

#[test]
fn exactly_once_under_drops_on_the_rendezvous_path() {
    // 32 KiB >> the eager crossover: the payload moves by remote get and
    // its packets cross the same unreliable links.
    let plan = FaultPlan::new().seed(77).drop_rate(0.05);
    let (retransmits, _) = chaos_exchange(plan, 4, 32 * 1024);
    if cfg!(feature = "telemetry") {
        assert!(retransmits > 0);
    }
}

#[test]
fn chaos_replay_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let plan = FaultPlan::new().seed(seed).drop_rate(0.08).corrupt_rate(0.04);
        chaos_exchange(plan, 24, 2048)
    };
    let a = run(4242);
    let b = run(4242);
    assert_eq!(a, b, "same seed, same fault history (retransmits, crc_errors)");
    if cfg!(feature = "telemetry") {
        assert!(a.0 > 0 || a.1 > 0, "the plan must actually inject faults");
    }
}

#[test]
fn link_kill_mid_broadcast_completes_via_reroute() {
    // 4 nodes; the 3rd frame node 0 pushes over its deterministic first
    // hop to node 1 takes the link down. The binomial broadcast's tree
    // edges keep flowing over the detour.
    let shape = bgq_torus::TorusShape::new([2, 2, 1, 1, 1]);
    let first_hop = bgq_torus::det_route(shape, shape.coords_of(0), shape.coords_of(1))[0];
    let plan = FaultPlan::new()
        .seed(9)
        .kill_link_at(0, first_hop, 3)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 32 });
    let machine = Machine::builder(shape).fault_plan(plan).build();
    let len = 10_000usize;
    let payload: Arc<Vec<u8>> = Arc::new(pattern(0, len));
    let payload2 = Arc::clone(&payload);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let region = if env.task == 0 {
            MemRegion::from_vec((*payload2).clone())
        } else {
            MemRegion::zeroed(len)
        };
        coll::broadcast_with(&geom, ctx, Algorithm::SwBinomial, 0, &region, 0, len);
        assert_eq!(region.to_vec(), *payload2, "task {}", env.task);
    });
    if cfg!(feature = "telemetry") {
        let ras = machine.fabric().ras_counters();
        assert_eq!(ras.link_down.value(), 2, "kill schedule fired once, both directions");
        assert!(ras.reroutes.value() >= 1, "at least one channel took the detour");
    }
}

#[test]
fn retry_budget_exhaustion_surfaces_timeout_without_hanging_advance() {
    // Every frame 0 -> 1 is dropped and the budget is tiny: the send must
    // fail its completion counter with Timeout, and advance must go idle
    // instead of spinning on a transfer that can never finish.
    let plan = FaultPlan::new()
        .seed(13)
        .drop_rate(1.0)
        .retry(RetryConfig { window: 4, rto_ticks: 1, rto_max_ticks: 2, retry_budget: 3 });
    let machine = Machine::with_nodes(2).fault_plan(plan).build();
    let failed = Arc::new(AtomicU64::new(0));
    let failed2 = Arc::clone(&failed);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            ctx.set_dispatch(DISPATCH, Arc::new(|_, _, _| Recv::Done));
        }
        env.machine.task_barrier();
        if env.task == 0 {
            let done = Counter::new();
            done.add_expected(2048);
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: DISPATCH,
                metadata: 0u64.to_le_bytes().to_vec(),
                payload: PayloadSource::Region {
                    region: MemRegion::from_vec(pattern(0, 2048)),
                    offset: 0,
                    len: 2048,
                },
                local_done: Some(done.clone()),
            })
            .unwrap();
            // This terminates: the reliability layer fails the counter once
            // the budget is gone, and a failed counter is complete.
            ctx.advance_until(|| done.is_complete());
            assert_eq!(done.fault(), Some(DeliveryFault::Timeout));
            assert_eq!(PamiError::from(done.fault().unwrap()), PamiError::Timeout);
            failed2.fetch_add(1, Ordering::SeqCst);
        } else {
            ctx.advance_until(|| failed2.load(Ordering::SeqCst) == 1);
        }
    });
    assert_eq!(failed.load(Ordering::SeqCst), 1);
    if cfg!(feature = "telemetry") {
        let ras = machine.fabric().ras_counters();
        assert!(ras.delivery_failures.value() >= 1, "the failure is RAS-visible");
    }
}

#[test]
fn initiation_errors_are_typed_and_do_not_touch_the_network() {
    let machine = Machine::with_nodes(2).build();
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            ctx.set_dispatch(DISPATCH, Arc::new(|_, _, _| Recv::Done));
        }
        env.machine.task_barrier();
        if env.task == 0 {
            // Over-long immediate: typed TooLong with the real ceiling.
            let big = vec![0u8; 4096];
            match ctx.send_immediate(Endpoint::of_task(1), DISPATCH, b"", &big) {
                Err(PamiError::TooLong { len, max }) => {
                    assert_eq!(len, 4096);
                    assert!(max < 4096);
                }
                other => panic!("expected TooLong, got {other:?}"),
            }
            // Unknown destination task: typed, not a panic.
            let err = ctx.send_immediate(Endpoint::of_task(99), DISPATCH, b"", b"x").unwrap_err();
            assert_eq!(err, PamiError::UnknownEndpoint { task: 99, context: 0 });
            assert_eq!(err.code(), "PAMI_INVAL");
            assert!(!err.is_delivery());
            // Reserved dispatch range is rejected at initiation.
            let err = ctx.send_immediate(Endpoint::of_task(1), 0xFF00, b"", b"x").unwrap_err();
            assert!(matches!(err, PamiError::Invalid(_)));
            // One-sided against a window that was never created.
            let bogus = pami::MemKey(0xDEAD);
            let err = ctx
                .put(pami::PutArgs {
                    dest_task: 1,
                    window: pami::WindowRef::base(bogus),
                    payload: PayloadSource::Immediate(bytes::Bytes::from(vec![1u8; 8])),
                    local_done: None,
                })
                .unwrap_err();
            assert_eq!(err, PamiError::UnknownWindow(0xDEAD));
            let dst = MemRegion::zeroed(8);
            let err = ctx
                .get(pami::GetArgs {
                    dest_task: 1,
                    window: pami::WindowRef::base(bogus),
                    dst: pami::MemSlot::base(dst),
                    len: 8,
                    done: None,
                })
                .unwrap_err();
            assert_eq!(err, PamiError::UnknownWindow(0xDEAD));
            // Rmw against the same bogus window surfaces the same typed error.
            let err = ctx
                .rmw(pami::RmwArgs::fetch_add(1, pami::WindowRef::base(bogus), 1))
                .unwrap_err();
            assert_eq!(err, PamiError::UnknownWindow(0xDEAD));
        }
        env.machine.task_barrier();
    });
}

// ---------------------------------------------------------------------------
// Short tier under chaos
// ---------------------------------------------------------------------------

#[test]
fn short_tier_exactly_once_under_one_percent_drop() {
    // 64 B payloads ride the short tier (single inline packet envelope);
    // a 1% drop plan forces the reliability layer to retransmit short
    // frames, and every message must still arrive exactly once, intact.
    let plan = FaultPlan::new().seed(2024).drop_rate(0.01);
    let (retransmits, _) = chaos_exchange(plan, 200, 64);
    if cfg!(feature = "telemetry") {
        assert!(retransmits > 0, "1% drop over 200 short frames must cost retransmits");
    }
}

#[test]
fn short_tier_exactly_once_under_drop_and_corrupt() {
    // Corruption on a short frame must be caught by the frame CRC and
    // retransmitted — never dispatched with a damaged payload.
    let plan = FaultPlan::new().seed(2025).drop_rate(0.02).corrupt_rate(0.02);
    chaos_exchange(plan, 200, 32);
}

// ---------------------------------------------------------------------------
// Collective suite under chaos
// ---------------------------------------------------------------------------

/// Run `rounds` summing allreduces (alg as given) on a fault-injected
/// machine and verify every element on every task each round.
fn chaos_allreduce(plan: FaultPlan, alg: Algorithm, nodes: usize, ppn: usize, rounds: usize) {
    let machine = Machine::builder(bgq_torus::TorusShape::for_nodes(nodes))
        .ppn(ppn)
        .fault_plan(plan)
        .build();
    let tasks = (nodes * ppn) as i64;
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        if alg == Algorithm::HwCollNet {
            geom.optimize().expect("world is rectangular");
        }
        for round in 0..rounds {
            let count = 16 + round * 8;
            let mine: Vec<i64> =
                (0..count as i64).map(|i| i * (round as i64 + 1) + env.task as i64).collect();
            let src = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&mine));
            let dst = MemRegion::zeroed(count * 8);
            coll::allreduce_with(
                &geom,
                ctx,
                alg,
                (&src, 0),
                (&dst, 0),
                count,
                pami::CollOp::Sum,
                pami::DataType::Int64,
            );
            let got = bgq_collnet::ops::elems::to_i64(&dst.to_vec());
            let base: i64 = (0..tasks).sum();
            for (i, v) in got.iter().enumerate() {
                assert_eq!(
                    *v,
                    i as i64 * (round as i64 + 1) * tasks + base,
                    "round {round} elem {i} on task {}",
                    env.task
                );
            }
        }
    });
}

#[test]
fn sw_allreduce_phases_survive_drop_and_corrupt() {
    // The binomial reduce+broadcast phases ride eager/rendezvous MU
    // traffic: every hop crosses the lossy links and must retransmit to a
    // bit-exact sum.
    let plan = FaultPlan::new().seed(31).drop_rate(0.02).corrupt_rate(0.02);
    chaos_allreduce(plan, Algorithm::SwBinomial, 4, 1, 3);
}

#[test]
fn hw_allreduce_classroute_survives_drop_and_corrupt() {
    // The classroute HW path: geometry setup, barriers and the
    // shared-address intra-node phase ride the lossy MU fabric even
    // though the combine itself rides the collective network.
    let plan = FaultPlan::new().seed(37).drop_rate(0.02).corrupt_rate(0.02);
    chaos_allreduce(plan, Algorithm::HwCollNet, 2, 2, 3);
}

#[test]
fn hw_broadcast_classroute_survives_drop_and_corrupt() {
    let plan = FaultPlan::new().seed(41).drop_rate(0.02).corrupt_rate(0.02);
    let machine = Machine::with_nodes(2).ppn(2).fault_plan(plan).build();
    let len = 20_000usize;
    let payload: Arc<Vec<u8>> = Arc::new(pattern(5, len));
    let payload2 = Arc::clone(&payload);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        geom.optimize().expect("world is rectangular");
        let region = if env.task == 1 {
            MemRegion::from_vec((*payload2).clone())
        } else {
            MemRegion::zeroed(len)
        };
        coll::broadcast_with(&geom, ctx, Algorithm::HwCollNet, 1, &region, 0, len);
        assert_eq!(region.to_vec(), *payload2, "task {}", env.task);
    });
}

// ---------------------------------------------------------------------------
// Selective-repeat edge cases
// ---------------------------------------------------------------------------

#[test]
fn sack_fast_retransmit_recovers_drops_without_rto_stall() {
    // With selective repeat, a dropped frame followed by a delivered
    // successor is re-queued off the SACK feedback — no RTO wait. The run
    // must be exactly-once and the recovery must show up as SACK
    // retransmits, not only timer probes.
    let plan = FaultPlan::new().seed(6001).drop_rate(0.1);
    let machine = chaos_machine(plan, 96, 2048);
    let (events, _) = machine.fabric().ras_events();
    let sacks = events
        .iter()
        .filter(|e| matches!(e.kind, pami::RasEventKind::SackRetransmit))
        .count();
    assert!(sacks > 0, "10% drop over ~480 packets must trigger SACK fast retransmits");
    if cfg!(feature = "telemetry") {
        let ras = machine.fabric().ras_counters();
        assert_eq!(ras.sack_retransmits.value(), sacks as u64, "counter matches the ring");
        assert!(ras.reorder_depth.value() > 0, "gaps must park frames in the reorder buffer");
    }
}

#[test]
fn lost_acks_recover_via_rto_backoff_probes() {
    // Heavy loss hits acks on the reverse path too: a delivered-but-
    // unacknowledged frame sits in AckWait and must be re-probed on the
    // (exponentially backed off) RTO until an ack finally crosses. The
    // receiver sees those probes as duplicates and must dispatch nothing
    // twice — `chaos_machine`'s handler asserts exactly-once delivery.
    let plan = FaultPlan::new()
        .seed(6002)
        .drop_rate(0.3)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 256 });
    let machine = chaos_machine(plan, 64, 512);
    let (events, _) = machine.fabric().ras_events();
    let rto_probes = events
        .iter()
        .filter(|e| matches!(e.kind, pami::RasEventKind::Retransmit))
        .count();
    assert!(rto_probes > 0, "30% loss must push some frames through the RTO path");
}

#[test]
fn reorder_buffer_high_water_eviction_stays_exactly_once() {
    // A one-slot reorder buffer under a wide sender window: most gaps
    // overflow the buffer, refused frames are evicted (RAS-visible) and
    // must come back as retransmits — never as holes or duplicates.
    let plan = FaultPlan::new()
        .seed(6003)
        .drop_rate(0.15)
        .reorder_capacity(1)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 8, retry_budget: 256 });
    let machine = chaos_machine(plan, 64, 2048);
    let (events, _) = machine.fabric().ras_events();
    let evictions = events
        .iter()
        .filter(|e| matches!(e.kind, pami::RasEventKind::ReorderEvict))
        .count();
    assert!(evictions > 0, "a 1-slot reorder buffer under 15% drop must refuse frames");
}

#[test]
fn tiny_window_cycles_the_sequence_space_exactly_once() {
    // A 2-frame window over a 200-message stream cycles the transmit
    // window hundreds of times; ordering, exactly-once and SACK state must
    // survive every wrap of the window cursor.
    let plan = FaultPlan::new()
        .seed(6004)
        .drop_rate(0.05)
        .retry(RetryConfig { window: 2, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 });
    chaos_exchange(plan, 200, 64);
}

// ---------------------------------------------------------------------------
// Endpoint failover
// ---------------------------------------------------------------------------

/// Kill every link touching node 1 mid-workload and check the unified
/// recovery path end to end: the dead channel surfaces `Unreachable`, the
/// RAS observer fires machine-level failover to the registered standby
/// (task 2), plain sends re-targeted at the standby drain with zero lost
/// messages, and the persistent channel renegotiates against the standby
/// and replays the failed step.
#[test]
fn node_kill_fails_over_to_standby_with_zero_lost_messages() {
    const PRE: u64 = 4;
    const POST: u64 = 4;
    const SLOT: usize = 32;
    let shape = bgq_torus::TorusShape::for_nodes(3);
    let machine = Machine::builder(shape).fault_plan(FaultPlan::new().seed(4040)).build();
    machine.register_standby(1, 2);
    let arrived1 = Arc::new(AtomicU64::new(0));
    let arrived2 = Arc::new(AtomicU64::new(0));
    // 1 once the primary consumed the pre-kill channel step; 2 once the
    // links are dead (the standby may open its channel); 3 when task 0 is
    // done and the receivers may stop advancing.
    let stage = Arc::new(AtomicU64::new(0));
    let (a1, a2, st) = (Arc::clone(&arrived1), Arc::clone(&arrived2), Arc::clone(&stage));
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "chaos", 1);
        let ctx = client.context(0);
        match env.task {
            1 => {
                let a = Arc::clone(&a1);
                ctx.set_dispatch(
                    DISPATCH,
                    Arc::new(move |_, _, _| {
                        a.fetch_add(1, Ordering::SeqCst);
                        Recv::Done
                    }),
                );
            }
            2 => {
                let a = Arc::clone(&a2);
                ctx.set_dispatch(
                    DISPATCH,
                    Arc::new(move |_, _, _| {
                        a.fetch_add(1, Ordering::SeqCst);
                        Recv::Done
                    }),
                );
            }
            _ => {}
        }
        env.machine.task_barrier();
        let send_one = |i: u64| {
            let done = Counter::new();
            done.add_expected(64);
            ctx.send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: DISPATCH,
                metadata: i.to_le_bytes().to_vec(),
                payload: PayloadSource::Immediate(bytes::Bytes::from(vec![i as u8; 64])),
                local_done: Some(done.clone()),
            })
            .unwrap();
            ctx.advance_until(|| done.is_complete());
            done
        };
        match env.task {
            0 => {
                let mut ch = ctx.channel(Endpoint::of_task(1), SLOT).unwrap();
                for i in 0..PRE {
                    assert!(send_one(i).is_ok(), "pre-kill sends ride clean links");
                }
                ch.post(&[0xA0; SLOT]).unwrap();
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 1);
                // Cut node 1 off: its own links plus the last hop of every
                // inbound route.
                let fab = env.machine.fabric();
                for dir in bgq_torus::Dir::all() {
                    fab.kill_link(1, dir);
                }
                let c1 = shape.coords_of(1);
                fab.kill_link(0, bgq_torus::det_route(shape, shape.coords_of(0), c1)[0]);
                fab.kill_link(2, bgq_torus::det_route(shape, shape.coords_of(2), c1)[0]);
                // Drain POST more messages, re-sending on fault: the first
                // attempt dies Unreachable and fires the failover, the
                // retry lands on the standby.
                let mut faults = 0u64;
                for i in PRE..PRE + POST {
                    loop {
                        let done = send_one(i);
                        if done.is_ok() {
                            break;
                        }
                        assert_eq!(done.fault(), Some(DeliveryFault::Unreachable));
                        faults += 1;
                        assert!(faults <= 4, "failover must stop the fault storm");
                    }
                }
                assert!(faults >= 1, "the first post-kill send must trip Unreachable");
                assert_eq!(env.machine.resolve_task(1), 2, "failover must remap task 1");
                assert!(env.machine.failover_generation(1) > 0);
                // The channel to the primary is dead; renegotiate follows
                // the failover to the standby and replays the lost step.
                let lost = ch.post(&[0xA1; SLOT]);
                assert!(lost.is_err(), "posting into the dead primary channel must fail");
                stage.store(2, Ordering::SeqCst);
                ch.renegotiate().unwrap();
                assert_eq!(ch.peer().task, 2, "the channel must follow the failover");
                ch.post(&[0xA1; SLOT]).unwrap();
                ch.post(&[0xA2; SLOT]).unwrap();
                stage.store(3, Ordering::SeqCst);
            }
            1 => {
                let mut ch = ctx.channel(Endpoint::of_task(0), SLOT).unwrap();
                let mut buf = [0u8; SLOT];
                ch.wait(&mut buf).unwrap();
                assert_eq!(buf, [0xA0; SLOT], "pre-kill channel step reaches the primary");
                st.store(1, Ordering::SeqCst);
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 3);
            }
            2 => {
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 2);
                let mut ch = ctx.channel(Endpoint::of_task(0), SLOT).unwrap();
                let mut buf = [0u8; SLOT];
                ch.wait(&mut buf).unwrap();
                assert_eq!(buf, [0xA1; SLOT], "the failed step is replayed to the standby");
                ch.wait(&mut buf).unwrap();
                assert_eq!(buf, [0xA2; SLOT]);
                ctx.advance_until(|| st.load(Ordering::SeqCst) >= 3);
            }
            _ => unreachable!(),
        }
    });
    // Zero lost messages: every logical message is accounted for exactly
    // once — the pre-kill batch at the primary, the drained batch at the
    // standby.
    assert_eq!(arrived1.load(Ordering::SeqCst), PRE, "pre-kill messages landed at the primary");
    assert_eq!(arrived2.load(Ordering::SeqCst), POST, "post-kill messages drained to the standby");
    let (events, _) = machine.fabric().ras_events();
    assert!(
        events.iter().any(|e| matches!(e.kind, pami::RasEventKind::DeliveryFailure)
            && e.detail == DeliveryFault::Unreachable as u64),
        "the failover trigger must be RAS-visible"
    );
}
