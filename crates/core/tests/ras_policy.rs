//! RAS→policy feedback: link trouble shifts the troubled destination
//! toward counter-protected rendezvous.
//!
//! The machine installs a RAS-ring observer that converts retransmit and
//! delivery-failure events into `ProtoEvent::DeliveryTrouble` for the
//! destination node's tasks. Under a seeded drop plan the adaptive policy's
//! eager/rendezvous crossover for the flaky destination must come down —
//! deterministically, because the fault history is seed-driven, and
//! regardless of the `telemetry` feature, because RAS events carry real
//! retransmit counts rather than clock stamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bgq_torus::Dir;
use pami::{
    Client, Counter, Endpoint, FaultPlan, FaultRates, Machine, MemRegion, PayloadSource, Recv,
    SendArgs,
};

const DISPATCH: u16 = 3;

#[test]
fn seeded_drops_shift_flaky_destination_toward_rendezvous() {
    // Drops only on node 0's outgoing links, so the 0→1 data path sees
    // trouble while the reverse (ack and remote-get) path stays clean —
    // that is what keeps destination 0's crossover untouched below. The
    // rate is heavy enough to guarantee retransmits across 64 messages,
    // light enough that the default retry budget always recovers.
    let mut plan = FaultPlan::new().seed(4242);
    for dir in Dir::all() {
        plan = plan.link_rates(0, dir, FaultRates { drop: 0.3, ..FaultRates::default() });
    }
    let machine = Machine::with_nodes(2).adaptive_policy().fault_plan(plan).build();
    let initial = machine.policy().crossover(1);
    let msgs: u64 = 64;
    let len: usize = 2048;
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    machine.run(move |env| {
        let client = Client::create(&env.machine, env.task, "rasfeed", 1);
        let ctx = client.context(0);
        if env.task == 1 {
            let seen = Arc::clone(&seen2);
            ctx.set_dispatch(
                DISPATCH,
                Arc::new(move |_ctx, msg, first| {
                    // The trouble feedback itself drags this destination's
                    // crossover below the message size mid-run, so later
                    // sends arrive as rendezvous — land those too.
                    if first.len() as u64 == msg.len {
                        seen.fetch_add(1, Ordering::SeqCst);
                        return Recv::Done;
                    }
                    let seen = Arc::clone(&seen);
                    Recv::Into {
                        region: MemRegion::zeroed(msg.len as usize),
                        offset: 0,
                        on_complete: Box::new(move |_ctx, result| {
                            result.expect("payload delivery under recoverable drops");
                            seen.fetch_add(1, Ordering::SeqCst);
                        }),
                    }
                }),
            );
        }
        env.machine.task_barrier();
        if env.task == 0 {
            let done = Counter::new();
            for _ in 0..msgs {
                done.add_expected(len as u64);
                ctx.send(SendArgs {
                    dest: Endpoint::of_task(1),
                    dispatch: DISPATCH,
                    metadata: Vec::new(),
                    payload: PayloadSource::Region {
                        region: MemRegion::zeroed(len),
                        offset: 0,
                        len,
                    },
                    local_done: Some(done.clone()),
                })
                .unwrap();
                ctx.advance();
            }
            ctx.advance_until(|| done.is_complete());
            assert!(done.is_ok(), "drops must be recovered, not fatal: {:?}", done.fault());
        }
        ctx.advance_until(|| seen2.load(Ordering::SeqCst) == msgs);
    });
    // The event ring (not the UPC counters — those compile out with
    // telemetry off) proves the plan actually bit, in every feature mode.
    // Under selective repeat most drops recover via SACK fast retransmit
    // (no RTO stall) — both event kinds feed the policy, so count both.
    let (events, _) = machine.fabric().ras_events();
    let retransmits = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                pami::RasEventKind::Retransmit | pami::RasEventKind::SackRetransmit
            ) && e.dst_node == 1
        })
        .count();
    assert!(retransmits > 0, "the 30% drop plan must actually bite");
    let after = machine.policy().crossover(1);
    assert!(
        after < initial,
        "retransmits toward task 1 must pull its crossover down ({initial} -> {after})"
    );
    // The reverse path (task 1 -> task 0) carries no data drops — node 1's
    // links are clean — but under selective repeat the 1->0 channel's acks
    // cross node 0's lossy links, so lost acks can surface as RTO probes
    // recorded *toward node 0*. Destination-specificity now means: task 0's
    // crossover moves iff the ring recorded trouble toward node 0, exactly
    // as the observer maps it.
    let toward0 = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                pami::RasEventKind::Retransmit
                    | pami::RasEventKind::SackRetransmit
                    | pami::RasEventKind::ReorderEvict
                    | pami::RasEventKind::DeliveryFailure
            ) && e.dst_node == 0
        })
        .count();
    let crossover0 = machine.policy().crossover(0);
    if toward0 == 0 {
        assert_eq!(crossover0, initial, "no trouble toward node 0 => crossover untouched");
    } else {
        assert!(
            crossover0 < initial,
            "recorded trouble toward node 0 must pull its crossover down"
        );
    }
}
