//! End-to-end tests of the PAMI runtime: active messages over every
//! protocol path, one-sided operations, commthreads, and collectives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::coll::{self, Algorithm};
use pami::{
    Client, CollOp, CommThreadPool, Context, Counter, DataType, Endpoint, Geometry, Machine,
    MemRegion, PayloadSource, Recv, SendArgs, Topology,
};
use parking_lot::Mutex;

/// (src, metadata, payload) of one delivered message.
type Delivered = (Endpoint, Vec<u8>, Vec<u8>);

/// A sink that collects delivered messages for assertions.
#[derive(Default)]
struct Sink {
    messages: Mutex<Vec<Delivered>>,
    count: AtomicU64,
}

impl Sink {
    fn handler(self: &Arc<Self>) -> pami::context::DispatchFn {
        let sink = Arc::clone(self);
        Arc::new(move |_ctx: &Context, msg: &pami::IncomingMsg, first: &[u8]| {
            if first.len() as u64 == msg.len {
                sink.messages.lock().push((msg.src, msg.metadata.to_vec(), first.to_vec()));
                sink.count.fetch_add(1, Ordering::SeqCst);
                return Recv::Done;
            }
            let region = MemRegion::zeroed(msg.len as usize);
            let sink2 = Arc::clone(&sink);
            let src = msg.src;
            let meta = msg.metadata.to_vec();
            let stash = region.clone();
            Recv::Into {
                region,
                offset: 0,
                on_complete: Box::new(move |_ctx, _result| {
                    sink2.messages.lock().push((src, meta, stash.to_vec()));
                    sink2.count.fetch_add(1, Ordering::SeqCst);
                }),
            }
        })
    }

    fn received(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }
}

const DISPATCH: u16 = 1;

#[test]
fn send_immediate_crosses_nodes() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    c0.context(0)
        .send_immediate(Endpoint::of_task(1), DISPATCH, b"md", b"payload")
        .unwrap();
    c1.context(0).advance_until(|| sink.received() == 1);
    let msgs = sink.messages.lock();
    assert_eq!(msgs[0].0, Endpoint::of_task(0));
    assert_eq!(msgs[0].1, b"md");
    assert_eq!(msgs[0].2, b"payload");
}

#[test]
fn send_immediate_rejects_oversized_payload() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let _c1 = Client::create(&machine, 1, "t", 1);
    let big = vec![0u8; 513];
    assert!(c0
        .context(0)
        .send_immediate(Endpoint::of_task(1), DISPATCH, b"", &big)
        .is_err());
}

#[test]
fn eager_send_multi_packet_reassembles() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    // 3000 bytes: eager (≤ 4096) but 6 packets.
    let data: Vec<u8> = (0..3000u32).map(|i| (i % 253) as u8).collect();
    let region = MemRegion::from_vec(data.clone());
    let done = Counter::new();
    done.add_expected(3000);
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![7],
        payload: PayloadSource::Region { region, offset: 0, len: 3000 },
        local_done: Some(done.clone()),
    }).unwrap();
    c0.context(0).advance_until(|| done.is_complete());
    c1.context(0).advance_until(|| sink.received() == 1);
    assert_eq!(sink.messages.lock()[0].2, data);
}

#[test]
fn eager_region_path_copies_payload_exactly_once() {
    // The zero-copy audit: an eager memory-FIFO message whose source needs
    // no completion signal crosses the fabric with exactly ONE payload copy
    // end-to-end — the receiver's deposit from the source window into the
    // destination buffer. The seed implementation performed two (a
    // whole-message staging copy at injection plus the deposit).
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    // Single-packet eager (400 bytes).
    let data: Vec<u8> = (0..400u32).map(|i| (i % 97) as u8).collect();
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![],
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(data.clone()),
            offset: 0,
            len: 400,
        },
        local_done: None,
    }).unwrap();
    while sink.received() < 1 {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    assert_eq!(sink.messages.lock()[0].2, data);
    if cfg!(feature = "telemetry") {
        let src_copies = machine.fabric().counters(0).payload_copies.value();
        let dst_copies = machine.fabric().counters(1).payload_copies.value();
        assert_eq!(src_copies, 0, "no staging copy on the source node");
        assert_eq!(dst_copies, 1, "exactly one deposit copy on the destination");
    }

    // Multi-packet eager (3000 bytes → 6 packets): still one copy per
    // payload byte, all on the destination side.
    let data2: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![],
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(data2.clone()),
            offset: 0,
            len: 3000,
        },
        local_done: None,
    }).unwrap();
    while sink.received() < 2 {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    assert_eq!(sink.messages.lock()[1].2, data2);
    if cfg!(feature = "telemetry") {
        let src_copies = machine.fabric().counters(0).payload_copies.value();
        let dst_copies = machine.fabric().counters(1).payload_copies.value();
        assert_eq!(src_copies, 0, "source node never touches payload bytes");
        assert_eq!(dst_copies, 1 + 6, "one deposit per packet, nothing else");
    }
}

#[test]
fn rendezvous_send_pulls_large_payload() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    let len = 256 * 1024; // well above the 4096 eager limit
    let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
    let region = MemRegion::from_vec(data.clone());
    let done = Counter::new();
    done.add_expected(len as u64);
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![],
        payload: PayloadSource::Region { region, offset: 0, len },
        local_done: Some(done.clone()),
    }).unwrap();
    // Both sides must advance: the RTS goes 0→1, the remote get 1→0, the
    // put executes on node 0.
    while sink.received() < 1 || !done.is_complete() {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    assert_eq!(sink.messages.lock()[0].2, data);
    // The payload must have used RDMA: node 1 received put bytes, and no
    // payload packets hit its reception FIFO beyond the RTS.
    if cfg!(feature = "telemetry") {
        assert_eq!(machine.fabric().counters(1).put_bytes_in.value(), len as u64);
        assert_eq!(machine.fabric().counters(0).remote_gets_serviced.value(), 1);
    }
}

#[test]
fn shm_inline_and_global_va_paths() {
    let machine = Machine::with_nodes(1).ppn(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    // Inline (short) path.
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![1],
        payload: PayloadSource::Immediate(bytes::Bytes::from_static(b"short")),
        local_done: None,
    }).unwrap();
    // Global-VA (large) path: single copy from the source region.
    let len = 64 * 1024;
    let data: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
    let done = Counter::new();
    done.add_expected(len as u64);
    c0.context(0).send(SendArgs {
        dest: Endpoint::of_task(1),
        dispatch: DISPATCH,
        metadata: vec![2],
        payload: PayloadSource::Region {
            region: MemRegion::from_vec(data.clone()),
            offset: 0,
            len,
        },
        local_done: Some(done.clone()),
    }).unwrap();
    c1.context(0).advance_until(|| sink.received() == 2);
    assert!(done.is_complete(), "receiver copy fires the sender counter");
    let msgs = sink.messages.lock();
    assert_eq!(msgs[0].2, b"short");
    assert_eq!(msgs[1].2, data);
    // No MU traffic for intra-node messages.
    if cfg!(feature = "telemetry") {
        assert_eq!(machine.fabric().counters(0).fifo_messages.value(), 0);
    }
}

#[test]
fn ordering_preserved_per_destination() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&order);
    c1.context(0).set_dispatch(
        DISPATCH,
        Arc::new(move |_ctx, msg, first| {
            assert_eq!(first.len() as u64, msg.len);
            o2.lock().push(msg.metadata[0]);
            Recv::Done
        }),
    );
    for i in 0..50u8 {
        c0.context(0).send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: DISPATCH,
            metadata: vec![i],
            payload: PayloadSource::Immediate(bytes::Bytes::new()),
            local_done: None,
        }).unwrap();
    }
    // Advance both sides until every message delivered (the semantic
    // completion signal — telemetry counters are not progress conditions,
    // they read zero when the feature is compiled out).
    while order.lock().len() < 50 {
        c0.context(0).advance();
        c1.context(0).advance();
    }
    if cfg!(feature = "telemetry") {
        // Per-packet MU counters are sampled 1-in-16 (scaled): 50 messages
        // on one lane hit sequence numbers 0, 16, 32, 48.
        assert_eq!(
            machine.fabric().counters(0).fifo_messages.value(),
            4 * bgq_mu::MU_PACKET_COUNTER_SAMPLE
        );
    }
    assert_eq!(*order.lock(), (0..50).collect::<Vec<u8>>());
}

#[test]
fn one_sided_put_and_get_via_windows() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);

    // Task 1 exposes a window.
    let target = MemRegion::zeroed(128);
    let arrivals = Counter::new();
    arrivals.add_expected(64);
    let key = machine.create_window(target.clone(), Some(arrivals.clone()));

    // Put 64 bytes into it.
    let src = MemRegion::from_vec((0..128).collect());
    let local = Counter::new();
    local.add_expected(64);
    c0.context(0).put(pami::PutArgs {
        dest_task: 1,
        window: pami::WindowRef::at(key, 16),
        payload: PayloadSource::Region { region: src, offset: 32, len: 64 },
        local_done: Some(local.clone()),
    })
    .unwrap();
    c0.context(0).advance_until(|| local.is_complete() && arrivals.is_complete());
    assert_eq!(&target.to_vec()[16..80], &(32..96).collect::<Vec<u8>>()[..]);

    // Get the same bytes back from the window.
    let dst = MemRegion::zeroed(64);
    let got = Counter::new();
    got.add_expected(64);
    c0.context(0)
        .get(pami::GetArgs {
            dest_task: 1,
            window: pami::WindowRef::at(key, 16),
            dst: pami::MemSlot::base(dst.clone()),
            len: 64,
            done: Some(got.clone()),
        })
        .unwrap();
    while !got.is_complete() {
        c0.context(0).advance();
        c1.context(0).advance(); // target node services the remote get
    }
    assert_eq!(dst.to_vec(), (32..96).collect::<Vec<u8>>());
}

#[test]
fn post_handoff_runs_on_advancing_thread() {
    let machine = Machine::with_nodes(1).build();
    let client = Client::create(&machine, 0, "t", 1);
    let ctx = client.context(0);
    let ran = Arc::new(AtomicU64::new(0));
    for i in 0..10 {
        let ran = Arc::clone(&ran);
        ctx.post(Box::new(move |_ctx| {
            ran.fetch_add(i, Ordering::SeqCst);
        }));
    }
    assert_eq!(ran.load(Ordering::SeqCst), 0, "nothing runs before advance");
    ctx.advance_until(|| ran.load(Ordering::SeqCst) == 45);
    if cfg!(feature = "telemetry") {
        assert_eq!(ctx.work_items_run(), 10);
    }
}

#[test]
fn commthreads_make_progress_while_app_thread_sleeps() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let sink = Arc::new(Sink::default());
    c1.context(0).set_dispatch(DISPATCH, sink.handler());

    // Commthreads drive both contexts in the background.
    let pool = CommThreadPool::spawn(
        vec![Arc::clone(c0.context(0)), Arc::clone(c1.context(0))],
        2,
    );
    let done = Counter::new();
    done.add_expected(1);
    // Post the send as a work item — the commthread injects and pumps it.
    let ctx0 = Arc::clone(c0.context(0));
    ctx0.post(Box::new(move |ctx| {
        ctx.send(SendArgs {
            dest: Endpoint::of_task(1),
            dispatch: DISPATCH,
            metadata: vec![],
            payload: PayloadSource::Immediate(bytes::Bytes::new()),
            local_done: None,
        }).unwrap();
    }));
    let start = std::time::Instant::now();
    while sink.received() < 1 {
        assert!(start.elapsed().as_secs() < 10, "commthreads made no progress");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(pool.advances() > 0);
    pool.shutdown();
}

#[test]
fn commthread_pause_stops_progress() {
    let machine = Machine::with_nodes(1).build();
    let client = Client::create(&machine, 0, "t", 1);
    let ctx = client.context(0);
    let pool = CommThreadPool::spawn(vec![Arc::clone(ctx)], 1);
    pool.pause();
    // Give the pause a moment to take effect (the commthread parks).
    std::thread::sleep(std::time::Duration::from_millis(10));
    let ran = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&ran);
    ctx.post(Box::new(move |_| {
        r2.store(1, Ordering::SeqCst);
    }));
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(ran.load(Ordering::SeqCst), 0, "paused commthread must not run work");
    pool.resume();
    let start = std::time::Instant::now();
    while ran.load(Ordering::SeqCst) == 0 {
        assert!(start.elapsed().as_secs() < 10, "resume did not restart progress");
        std::thread::yield_now();
    }
    pool.shutdown();
}

#[test]
fn multiple_clients_are_isolated() {
    let machine = Machine::with_nodes(2).build();
    let mpi0 = Client::create(&machine, 0, "MPI", 1);
    let mpi1 = Client::create(&machine, 1, "MPI", 1);
    let upc0 = Client::create(&machine, 0, "UPC", 1);
    let upc1 = Client::create(&machine, 1, "UPC", 1);
    let mpi_sink = Arc::new(Sink::default());
    let upc_sink = Arc::new(Sink::default());
    mpi1.context(0).set_dispatch(DISPATCH, mpi_sink.handler());
    upc1.context(0).set_dispatch(DISPATCH, upc_sink.handler());

    mpi0.context(0)
        .send_immediate(Endpoint::of_task(1), DISPATCH, b"", b"mpi-msg")
        .unwrap();
    upc0.context(0)
        .send_immediate(Endpoint::of_task(1), DISPATCH, b"", b"upc-msg")
        .unwrap();
    mpi1.context(0).advance_until(|| mpi_sink.received() == 1);
    upc1.context(0).advance_until(|| upc_sink.received() == 1);
    assert_eq!(mpi_sink.messages.lock()[0].2, b"mpi-msg");
    assert_eq!(upc_sink.messages.lock()[0].2, b"upc-msg");
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

fn world_geometry(ctx: &Context) -> Arc<Geometry> {
    let n = ctx.machine().num_tasks() as u32;
    Geometry::create(ctx, 1, Topology::world(n))
}

#[test]
fn barrier_synchronizes_all_tasks() {
    let machine = Machine::with_nodes(2).ppn(2).build();
    let flag = AtomicU64::new(0);
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        coll::barrier(&geom, ctx);
        flag.fetch_add(1, Ordering::SeqCst);
        coll::barrier(&geom, ctx);
        assert_eq!(flag.load(Ordering::SeqCst), 4, "everyone passed the first barrier");
    });
}

fn check_broadcast(alg: Algorithm, nodes: usize, ppn: usize, len: usize) {
    let machine = Machine::with_nodes(nodes).ppn(ppn).build();
    let payload: Arc<Vec<u8>> = Arc::new((0..len).map(|i| (i % 251) as u8).collect());
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        if alg == Algorithm::HwCollNet {
            geom.optimize().expect("world is rectangular");
        }
        let region = if env.task == 2 {
            MemRegion::from_vec((*payload).clone())
        } else {
            MemRegion::zeroed(len)
        };
        coll::broadcast_with(&geom, ctx, alg, 2, &region, 0, len);
        assert_eq!(region.to_vec(), *payload, "task {}", env.task);
    });
}

#[test]
fn hw_broadcast_multi_node_multi_ppn() {
    check_broadcast(Algorithm::HwCollNet, 2, 2, 100_000);
}

#[test]
fn sw_broadcast_binomial() {
    check_broadcast(Algorithm::SwBinomial, 4, 1, 10_000);
}

#[test]
fn sw_broadcast_large_uses_rendezvous() {
    check_broadcast(Algorithm::SwBinomial, 2, 2, 128 * 1024);
}

fn check_allreduce(alg: Algorithm, nodes: usize, ppn: usize, count: usize) {
    let machine = Machine::with_nodes(nodes).ppn(ppn).build();
    let tasks = (nodes * ppn) as i64;
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        if alg == Algorithm::HwCollNet {
            geom.optimize().expect("world is rectangular");
        }
        let mine: Vec<i64> = (0..count as i64).map(|i| i + env.task as i64).collect();
        let src = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&mine));
        let dst = MemRegion::zeroed(count * 8);
        coll::allreduce_with(
            &geom,
            ctx,
            alg,
            (&src, 0),
            (&dst, 0),
            count,
            CollOp::Sum,
            DataType::Int64,
        );
        let got = bgq_collnet::ops::elems::to_i64(&dst.to_vec());
        let base: i64 = (0..tasks).sum();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as i64 * tasks + base, "elem {i} on task {}", env.task);
        }
    });
}

#[test]
fn hw_allreduce_short() {
    check_allreduce(Algorithm::HwCollNet, 2, 2, 4);
}

#[test]
fn hw_allreduce_long_pipelined() {
    // > PIPELINE_SLICE bytes so the leader contributes several slices.
    check_allreduce(Algorithm::HwCollNet, 2, 2, 20_000);
}

#[test]
fn sw_allreduce_binomial() {
    check_allreduce(Algorithm::SwBinomial, 4, 1, 64);
}

#[test]
fn hw_and_sw_allreduce_agree() {
    for alg in [Algorithm::HwCollNet, Algorithm::SwBinomial] {
        check_allreduce(alg, 2, 1, 16);
    }
}

#[test]
fn reduce_delivers_at_root_only() {
    let machine = Machine::with_nodes(2).ppn(2).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let src = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&[env.task as i64]));
        let dst = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&[-1]));
        coll::reduce(&geom, ctx, 3, (&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64);
        let got = bgq_collnet::ops::elems::to_i64(&dst.to_vec())[0];
        if env.task == 3 {
            assert_eq!(got, 6); // 0 + 1 + 2 + 3
        } else {
            assert_eq!(got, -1, "non-root dst untouched");
        }
    });
}

#[test]
fn optimize_and_deoptimize_rotate_classroutes() {
    let machine = Machine::with_nodes(2).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        geom.optimize().unwrap();
        assert!(geom.route().is_some());
        coll::barrier(&geom, ctx);
        if env.task == 0 {
            geom.deoptimize();
        }
        coll::barrier(&geom, ctx);
        assert!(geom.route().is_none());
        // Collectives still work over the software path.
        let region = if env.task == 0 {
            MemRegion::from_vec(vec![5u8; 64])
        } else {
            MemRegion::zeroed(64)
        };
        coll::broadcast(&geom, ctx, 0, &region, 0, 64);
        assert_eq!(region.to_vec(), vec![5u8; 64]);
    });
}

#[test]
fn registry_query_matches_use_hw_decision() {
    // The CollRegistry's availability/cost view must reproduce the old
    // `use_hw` logic exactly: hardware entries (cost 10–20) appear only
    // while a classroute is attached, software fallbacks (cost 100) always,
    // and auto-selection therefore flips hw↔sw on optimize()/deoptimize().
    use pami::coll::{names, CollKind};
    let machine = Machine::with_nodes(2).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "reg", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let reg = env.machine.coll_registry();

        let avail = |name: &str| {
            geom.algorithms_query()
                .into_iter()
                .find(|i| i.name == name)
                .map(|i| i.available)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };

        // Unoptimized: software everywhere, hardware unavailable — the old
        // `use_hw == false` branch.
        assert!(!avail(names::HW_BCAST));
        assert!(!avail(names::HW_ALLREDUCE));
        assert!(!avail(names::COLLNET_BARRIER));
        assert!(avail(names::SW_BCAST));
        assert!(avail(names::SW_ALLREDUCE));
        assert!(avail(names::STREAM_ALLREDUCE));
        assert!(avail(names::GI_BARRIER));
        assert_eq!(reg.select(CollKind::Broadcast, &geom).name, names::SW_BCAST);
        // The streaming chain (cost 90) outranks the binomial tree (100) on
        // unrouted geometries.
        assert_eq!(reg.select(CollKind::Allreduce, &geom).name, names::STREAM_ALLREDUCE);
        assert_eq!(reg.select(CollKind::Barrier, &geom).name, names::GI_BARRIER);

        coll::barrier(&geom, ctx);
        geom.optimize().expect("world is rectangular");

        // Optimized: the hardware entries become available and win on cost
        // — the old `use_hw == true` branch.
        assert!(avail(names::HW_BCAST));
        assert!(avail(names::HW_ALLREDUCE));
        assert!(avail(names::COLLNET_BARRIER));
        assert_eq!(reg.select(CollKind::Broadcast, &geom).name, names::HW_BCAST);
        assert_eq!(reg.select(CollKind::Allreduce, &geom).name, names::HW_ALLREDUCE);
        // GI barrier stays cheapest even when the collective network is up,
        // exactly like the pre-registry dispatcher.
        assert_eq!(reg.select(CollKind::Barrier, &geom).name, names::GI_BARRIER);

        // Software-only kinds never grow a hardware entry.
        for kind in [
            CollKind::Reduce,
            CollKind::Gather,
            CollKind::Scatter,
            CollKind::Allgather,
            CollKind::Alltoall,
        ] {
            assert!(
                reg.select(kind, &geom).cost >= 100,
                "{kind:?} has no hardware path"
            );
        }

        coll::barrier(&geom, ctx);
        if env.task == 0 {
            geom.deoptimize();
        }
        coll::barrier(&geom, ctx);
        assert!(!avail(names::HW_BCAST));
        assert_eq!(reg.select(CollKind::Broadcast, &geom).name, names::SW_BCAST);
    });
}

#[test]
fn sub_geometry_collectives() {
    // Odd tasks only: a non-rectangular (strided) geometry → software path.
    let machine = Machine::with_nodes(4).ppn(1).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let _world = world_geometry(ctx);
        if env.task % 2 == 1 {
            let geom = Geometry::create(
                ctx,
                2,
                Topology::Range { first: 1, count: 2, stride: 2 },
            );
            let src = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&[10 * env.task as i64]));
            let dst = MemRegion::zeroed(8);
            coll::allreduce(&geom, ctx, (&src, 0), (&dst, 0), 1, CollOp::Sum, DataType::Int64);
            assert_eq!(bgq_collnet::ops::elems::to_i64(&dst.to_vec())[0], 40);
        }
    });
}

#[test]
fn gather_collects_rank_ordered_blocks() {
    let machine = Machine::with_nodes(4).ppn(1).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let blk = 16;
        let src = MemRegion::from_vec(vec![env.task as u8 + 1; blk]);
        let dst = MemRegion::zeroed(4 * blk);
        for root in [0usize, 2] {
            coll::gather(&geom, ctx, root, (&src, 0), (&dst, 0), blk);
            if env.task as usize == root {
                let v = dst.to_vec();
                for r in 0..4usize {
                    assert!(
                        v[r * blk..(r + 1) * blk].iter().all(|&b| b == r as u8 + 1),
                        "root {root}: block {r} wrong"
                    );
                }
            }
        }
    });
}

#[test]
fn scatter_distributes_rank_ordered_blocks() {
    let machine = Machine::with_nodes(4).ppn(1).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let blk = 32;
        let src = if env.task == 1 {
            MemRegion::from_vec((0..4u8).flat_map(|r| vec![r * 10; blk]).collect())
        } else {
            MemRegion::zeroed(4 * blk)
        };
        let dst = MemRegion::zeroed(blk);
        coll::scatter(&geom, ctx, 1, (&src, 0), (&dst, 0), blk);
        assert!(
            dst.to_vec().iter().all(|&b| b == env.task as u8 * 10),
            "task {} got wrong block",
            env.task
        );
    });
}

#[test]
fn allgather_ring_delivers_everywhere() {
    let machine = Machine::with_nodes(3).ppn(2).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let n = geom.size();
        let blk = 24;
        let src = MemRegion::from_vec(vec![env.task as u8 + 7; blk]);
        let dst = MemRegion::zeroed(n * blk);
        coll::allgather(&geom, ctx, (&src, 0), (&dst, 0), blk);
        let v = dst.to_vec();
        for r in 0..n {
            assert!(
                v[r * blk..(r + 1) * blk].iter().all(|&b| b == r as u8 + 7),
                "task {}: block {r} wrong",
                env.task
            );
        }
    });
}

#[test]
fn alltoall_transposes_blocks() {
    let machine = Machine::with_nodes(4).ppn(1).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let n = geom.size();
        let blk = 8;
        let me = env.task as usize;
        // src block j = 100·me + j.
        let src = MemRegion::from_vec(
            (0..n).flat_map(|j| vec![(100 * me + j) as u8; blk]).collect(),
        );
        let dst = MemRegion::zeroed(n * blk);
        coll::alltoall(&geom, ctx, (&src, 0), (&dst, 0), blk);
        let v = dst.to_vec();
        for i in 0..n {
            // dst block i came from rank i's block `me`.
            assert!(
                v[i * blk..(i + 1) * blk].iter().all(|&b| b == (100 * i + me) as u8),
                "task {me}: got wrong block from {i}"
            );
        }
    });
}

#[test]
fn alltoall_large_blocks_over_rendezvous() {
    let machine = Machine::with_nodes(2).ppn(2).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        let n = geom.size();
        let blk = 32 * 1024; // above the eager limit
        let me = env.task as usize;
        let src = MemRegion::from_vec(
            (0..n).flat_map(|j| vec![(me * n + j) as u8; blk]).collect(),
        );
        let dst = MemRegion::zeroed(n * blk);
        coll::alltoall(&geom, ctx, (&src, 0), (&dst, 0), blk);
        let v = dst.to_vec();
        for i in 0..n {
            assert!(v[i * blk..(i + 1) * blk].iter().all(|&b| b == (i * n + me) as u8));
        }
    });
}

#[test]
fn collnet_barrier_agrees_with_gi_barrier() {
    use std::sync::atomic::AtomicU64 as A64;
    let machine = Machine::with_nodes(4).ppn(1).build();
    let counter = A64::new(0);
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let geom = world_geometry(ctx);
        geom.optimize().unwrap();
        for round in 1..=5u64 {
            counter.fetch_add(1, Ordering::SeqCst);
            coll::barrier_with(&geom, ctx, coll::BarrierAlg::CollNet);
            assert_eq!(
                counter.load(Ordering::SeqCst),
                round * 4,
                "collnet barrier released early"
            );
            coll::barrier_with(&geom, ctx, coll::BarrierAlg::GlobalInterrupt);
        }
    });
}

#[test]
fn axial_topology_communicator_collectives() {
    // An axial sub-geometry — the paper's O(1)-storage "axial topology" —
    // as a live communicator: the nodes along dimension A through the
    // origin, running a software allreduce.
    use bgq_torus::rect::AxialRange;
    use bgq_torus::{Coords, Dim};
    let machine = Machine::builder(bgq_torus::TorusShape::new([4, 2, 1, 1, 1])).build();
    machine.run(|env| {
        let client = Client::create(&env.machine, env.task, "coll", 1);
        env.machine.task_barrier();
        let ctx = client.context(0);
        let _world = world_geometry(ctx);
        let shape = env.machine.shape();
        let axis = AxialRange { origin: Coords([0; 5]), dim: Dim::A, len: 4 };
        let topo = Topology::Axial { axis, shape, ppn: 1 };
        assert_eq!(topo.storage_bytes(), 0, "axial topology is O(1) storage");
        if topo.contains(env.task) {
            let geom = Geometry::create(ctx, 7, topo.clone());
            assert_eq!(geom.size(), 4);
            let src = MemRegion::from_vec(bgq_collnet::ops::elems::from_i64(&[env.task as i64]));
            let dst = MemRegion::zeroed(8);
            coll::allreduce_with(
                &geom,
                ctx,
                Algorithm::SwBinomial,
                (&src, 0),
                (&dst, 0),
                1,
                CollOp::Sum,
                DataType::Int64,
            );
            // Axis members are the A-dimension nodes at B=0: tasks 0,2,4,6
            // in this 4x2 shape (node-major with ppn=1).
            let expect: i64 = topo.iter().map(|t| t as i64).sum();
            assert_eq!(bgq_collnet::ops::elems::to_i64(&dst.to_vec())[0], expect);
        }
    });
}
