//! Persistent-channel integration tests: the handshake, the steady-state
//! fixed-descriptor exchange (off-node and on-node), the exact short/eager
//! boundary, and renegotiation after a delivery fault.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pami::{
    Client, Endpoint, FaultPlan, Machine, PamiError, PayloadSource, Recv, RetryConfig, SendArgs,
};

/// Pattern for step `i` of length `len`, distinct per direction `dir`.
fn pattern(dir: usize, i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|b| ((dir * 89 + i * 131 + b * 7) % 251) as u8).collect()
}

#[test]
fn short_eager_boundary_is_exact_at_the_cutoff() {
    // Default static policy: 128 B (SHORT_CUTOFF) goes short — one inline
    // packet, `ctx.sends_short` moves; 129 B goes eager —
    // `ctx.sends_eager` moves. Both arrive intact.
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let got = Arc::new(AtomicU64::new(0));
    let got2 = Arc::clone(&got);
    c1.context(0).set_dispatch(
        1,
        Arc::new(move |_ctx, msg, first| {
            assert_eq!(first.len() as u64, msg.len);
            let expect = pattern(0, msg.len as usize, msg.len as usize);
            assert_eq!(first, &expect[..], "payload intact at len {}", msg.len);
            got2.fetch_add(1, Ordering::SeqCst);
            Recv::Done
        }),
    );
    let counter = |name: &str| machine.telemetry().snapshot().counter(name);
    for (len, probe) in [(128usize, "ctx.sends_short"), (129, "ctx.sends_eager")] {
        let before = counter(probe);
        c0.context(0)
            .send(SendArgs {
                dest: Endpoint::of_task(1),
                dispatch: 1,
                metadata: vec![],
                payload: PayloadSource::Immediate(bytes::Bytes::from(pattern(0, len, len))),
                local_done: None,
            })
            .unwrap();
        let target = got.load(Ordering::SeqCst) + 1;
        while got.load(Ordering::SeqCst) < target {
            c0.context(0).advance();
            c1.context(0).advance();
        }
        if cfg!(feature = "telemetry") {
            assert_eq!(counter(probe), before + 1, "{probe} at len {len}");
        }
    }
    assert_eq!(got.load(Ordering::SeqCst), 2);
}

#[test]
fn send_immediate_shares_the_short_tier_probe() {
    // `send_immediate` is the short tier: off-node immediates take the
    // same single-packet envelope path and the same `ctx.sends_short`
    // probe as policy-selected short sends.
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let got = Arc::new(AtomicU64::new(0));
    let got2 = Arc::clone(&got);
    c1.context(0).set_dispatch(
        1,
        Arc::new(move |_ctx, _msg, first| {
            assert_eq!(first, b"ping");
            got2.fetch_add(1, Ordering::SeqCst);
            Recv::Done
        }),
    );
    let before = machine.telemetry().snapshot().counter("ctx.sends_short");
    c0.context(0).send_immediate(Endpoint::of_task(1), 1, b"", b"ping").unwrap();
    c1.context(0).advance_until(|| got.load(Ordering::SeqCst) == 1);
    if cfg!(feature = "telemetry") {
        assert_eq!(machine.telemetry().snapshot().counter("ctx.sends_short"), before + 1);
    }
}

/// Drive a bidirectional persistent-channel exchange for `steps` steps
/// between two already-created channels and verify every payload.
fn exchange(
    a: &mut pami::PersistentChannel,
    b: &mut pami::PersistentChannel,
    size: usize,
    steps: usize,
) {
    let mut buf = vec![0u8; size];
    for i in 0..steps {
        a.post(&pattern(0, i, size)).unwrap();
        b.post(&pattern(1, i, size)).unwrap();
        b.wait(&mut buf).unwrap();
        assert_eq!(buf, pattern(0, i, size), "a->b step {i}");
        a.wait(&mut buf).unwrap();
        assert_eq!(buf, pattern(1, i, size), "b->a step {i}");
    }
}

#[test]
fn persistent_channel_round_trip_off_node() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    const SIZE: usize = 96;
    let mut a = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut b = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    exchange(&mut a, &mut b, SIZE, 20);
    if cfg!(feature = "telemetry") {
        // Zero matching in the steady state: persistent traffic is direct
        // puts into the pre-negotiated windows, not dispatched messages.
        let snap = machine.telemetry().snapshot();
        assert_eq!(snap.counter("ctx.sends_eager"), 0);
        assert_eq!(snap.counter("ctx.sends_rzv"), 0);
    }
}

#[test]
fn persistent_channel_round_trip_on_node() {
    // Two tasks on one node: offers ride the shared-memory mailbox, data
    // moves as local direct puts.
    let machine = Machine::with_nodes(1).ppn(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    const SIZE: usize = 64;
    let mut a = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut b = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    exchange(&mut a, &mut b, SIZE, 12);
}

#[test]
fn persistent_channel_peer_may_run_a_step_ahead() {
    // Double buffering: the sender may post step i+1 before the receiver
    // waits step i; both slots hold distinct live data.
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    const SIZE: usize = 32;
    let mut a = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut b = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    a.post(&pattern(0, 0, SIZE)).unwrap();
    a.post(&pattern(0, 1, SIZE)).unwrap();
    let mut buf = [0u8; SIZE];
    b.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(0, 0, SIZE));
    b.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(0, 1, SIZE));
}

#[test]
fn persistent_channels_pair_in_creation_order() {
    // Two channels to the same peer: the n-th local channel binds to the
    // n-th remote one, even though all four offers are in flight at once.
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    const SIZE: usize = 16;
    let mut a1 = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut a2 = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut b1 = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    let mut b2 = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    a1.post(&pattern(0, 0, SIZE)).unwrap();
    a2.post(&pattern(0, 1, SIZE)).unwrap();
    let mut buf = [0u8; SIZE];
    b1.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(0, 0, SIZE));
    b2.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(0, 1, SIZE));
    // And the reverse direction still pairs correctly.
    b1.post(&pattern(1, 0, SIZE)).unwrap();
    b2.post(&pattern(1, 1, SIZE)).unwrap();
    a1.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(1, 0, SIZE));
    a2.wait(&mut buf).unwrap();
    assert_eq!(buf.to_vec(), pattern(1, 1, SIZE));
}

#[test]
fn persistent_channel_size_mismatch_is_invalid() {
    let machine = Machine::with_nodes(2).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    let mut a = c0.context(0).channel(Endpoint::of_task(1), 64).unwrap();
    let _b = c1.context(0).channel(Endpoint::of_task(0), 32).unwrap();
    assert!(matches!(a.post(&[0u8; 64]), Err(PamiError::Invalid(_))));
    assert!(matches!(
        c0.context(0).channel(Endpoint::of_task(1), 0),
        Err(PamiError::Invalid(_))
    ));
}

#[test]
fn persistent_channel_renegotiates_after_delivery_fault() {
    // A clean fault plan (reliability layer active, no random faults);
    // kill both of node 0's links mid-stream, watch `post` surface the
    // typed fault, revive the fabric, renegotiate on both sides, and keep
    // going.
    let plan = FaultPlan::new()
        .seed(11)
        .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 8 });
    let machine = Machine::with_nodes(2).fault_plan(plan).build();
    let c0 = Client::create(&machine, 0, "t", 1);
    let c1 = Client::create(&machine, 1, "t", 1);
    const SIZE: usize = 48;
    let mut a = c0.context(0).channel(Endpoint::of_task(1), SIZE).unwrap();
    let mut b = c1.context(0).channel(Endpoint::of_task(0), SIZE).unwrap();
    exchange(&mut a, &mut b, SIZE, 3);

    // Sever node 0 from the torus: both its A-dimension links die.
    let plus = bgq_torus::Dir { dim: bgq_torus::Dim::A, plus: true };
    let minus = bgq_torus::Dir { dim: bgq_torus::Dim::A, plus: false };
    assert!(machine.fabric().kill_link(0, plus));
    assert!(machine.fabric().kill_link(0, minus));
    let err = a.post(&pattern(0, 99, SIZE)).unwrap_err();
    assert!(
        matches!(err, PamiError::Unreachable | PamiError::Timeout),
        "typed delivery fault, got {err:?}"
    );
    // The channel stays failed without renegotiation.
    assert!(a.post(&pattern(0, 100, SIZE)).is_err());

    // Heal the fabric and rebuild both sides (ordinals stay matched
    // because both renegotiate once, in the same relative order).
    assert!(machine.fabric().revive_link(0, plus));
    assert!(machine.fabric().revive_link(0, minus));
    a.renegotiate().unwrap();
    b.renegotiate().unwrap();
    exchange(&mut a, &mut b, SIZE, 3);
}
