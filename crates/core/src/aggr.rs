//! `pami::aggr` — destination-aware small-message aggregation.
//!
//! The paper's own accounting says per-message *software* overhead, not
//! wire bytes, bounds fine-grained message rate: every small send pays one
//! envelope, one injection, one packet, one reception-FIFO pop. This module
//! amortizes that cost the way TRAM and combining networks do — merge
//! traffic that shares a path. Sends below the aggregation cutoff destined
//! for the same endpoint append into a per-destination *coalescing bucket*;
//! a full bucket (or an aged or explicitly flushed one) is injected as one
//! multi-message MU packet train ([`bgq_mu::batch`]) under the internal
//! [`crate::proto::DISPATCH_AGGR`] dispatch id. The receiving context
//! unbatches and dispatches each record through its handler memo.
//!
//! Correctness invariants, argued in DESIGN.md §15:
//!
//! * **Per-(src,dst) ordering** — a bucket's frame travels the same pinned
//!   injection FIFO (and, under a fault plan, the same selective-repeat
//!   channel) as direct sends to that destination, and the send path
//!   *conflict-flushes* a destination's bucket before any non-aggregated
//!   send to it, so records never overtake or lag neighbouring traffic.
//!   Frame cut order is frame injection order: emission runs under the
//!   aggregator lock.
//! * **Exactly-once under faults** — a frame is one message (a short-tier
//!   packet when it fits, an eager train reassembled before unbatching
//!   otherwise); the reliability layer retransmits or fails *frames*,
//!   never records, and unbatching is deterministic, so each record is
//!   delivered exactly once iff its frame is.
//!
//! Flush policy (the state machine): a bucket opens on first append and is
//! cut by whichever trigger fires first — **fill** (the frame's byte budget
//! is reached), **age** (the oldest record has waited `age_us` on the
//! advance clock), **explicit** ([`crate::Context::flush_aggr`]), or
//! **conflict** (a non-aggregated send targets the bucket's destination).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

use bgq_mu::batch;
use bgq_upc::{Histogram, Upc};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::endpoint::Endpoint;

/// Aggregation-layer tuning. Installed machine-wide with
/// [`crate::MachineBuilder::aggregation`]; every context then owns one
/// [`Aggregator`].
#[derive(Debug, Clone, Copy)]
pub struct AggrConfig {
    /// Payloads at or below this many bytes are eligible for aggregation
    /// (the policy still decides per destination whether they *do*
    /// aggregate). Default 128 — the short-tier cutoff.
    pub cutoff: usize,
    /// Frame payload budget in bytes. A frame that fits one short-tier
    /// packet ([`bgq_torus::packet::MAX_PAYLOAD_BYTES`]) rides it whole on
    /// the cut-through path; a larger frame rides the eager packet train
    /// and is reassembled before unbatching. Clamped at machine build to
    /// 16 packets — it bounds per-destination bucket memory. Default 512
    /// (one packet): measured on the random-target flood, deeper frames
    /// lose more to the train's per-packet cost than they win back in
    /// batch depth, so the default stays on the single-packet fast path.
    pub max_frame: usize,
    /// Age bound: the oldest buffered record waits at most this many
    /// microseconds before `advance` cuts the bucket. A liveness bound for
    /// straggler records, not a latency promise — latency-sensitive small
    /// sends belong on the short tier, and the adaptive policy only routes
    /// high-rate fine-grained streams here. Default 100 µs: tight enough
    /// that a stalled stream drains within the advance cadence, loose
    /// enough that a flood's buckets cut on fill, not on the clock (a
    /// lapsing deadline also knocks every advance off its idle fast path).
    pub age_us: u64,
    /// Bucket by destination *node* instead of destination endpoint:
    /// frames land on the node's lead context, which dispatches its own
    /// records inline and fans the rest out over the node's shared-memory
    /// mailboxes. Fewer, fuller buckets (the TRAM intermediate-bucket
    /// shape) at the price of one mailbox hop for non-lead records and a
    /// weaker ordering story (see DESIGN.md §15). Default off.
    pub node_buckets: bool,
}

impl Default for AggrConfig {
    fn default() -> Self {
        AggrConfig { cutoff: 128, max_frame: 512, age_us: 100, node_buckets: false }
    }
}

/// Why a bucket was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The frame byte budget was reached.
    Fill,
    /// The age bound expired on the advance clock.
    Age,
    /// [`crate::Context::flush_aggr`] was called.
    Explicit,
    /// A non-aggregated send targeted the bucket's destination and must
    /// not overtake the buffered records.
    Conflict,
}

/// A cut bucket, ready to inject: one short-tier packet train.
pub(crate) struct Frame {
    /// Destination endpoint of the frame itself (the bucket key; in
    /// node-bucket mode, the node's lead endpoint).
    pub dest: Endpoint,
    /// Number of records in the payload.
    pub count: u16,
    /// Packed record train ([`bgq_mu::batch`] layout).
    pub payload: Bytes,
    /// Why the bucket was cut. Counted into `aggr.flush_*` at cut time;
    /// kept on the frame for tests and future per-cause emit decisions.
    #[allow(dead_code)]
    pub cause: FlushCause,
}

struct Bucket {
    buf: BytesMut,
    count: u16,
    /// Aggregator-clock ns when the first record landed — the age-bound
    /// reference and the added-latency measurement origin.
    opened_ns: u64,
    /// Dimension-ordered first-hop class of the frame destination. A pure
    /// function of src/dst torus coordinates, so it is computed once when
    /// the key first opens a bucket and the flush paths group by it
    /// without re-deriving coordinates per cut.
    class: u8,
}

/// Bucket-map hasher: one multiply-mix per written word. The keys are peer
/// endpoints — small, trusted, already well-distributed — so SipHash's
/// flood resistance buys nothing here while its setup cost lands on every
/// aggregated send.
#[derive(Default)]
struct EndpointHasher(u64);

impl EndpointHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl Hasher for EndpointHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the multiply's high-bit entropy back down: hashbrown takes
        // both its group index and control byte from this word.
        self.0 ^ (self.0 >> 29)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }
}

struct AggrState {
    /// Open buckets, keyed by frame destination endpoint.
    buckets: HashMap<Endpoint, Bucket, BuildHasherDefault<EndpointHasher>>,
}

/// `aggr.*` telemetry. Zero-sized no-ops with the `telemetry` feature off.
pub(crate) struct AggrProbes {
    /// Records appended into buckets (send side).
    pub batched: bgq_upc::Counter,
    /// Frames cut (mean batch size = `aggr.batched_msgs / aggr.frames`).
    pub frames: bgq_upc::Counter,
    /// Frame payload bytes cut.
    pub frame_bytes: bgq_upc::Counter,
    /// Flushes by cause.
    pub flush_fill: bgq_upc::Counter,
    pub flush_age: bgq_upc::Counter,
    pub flush_explicit: bgq_upc::Counter,
    pub flush_conflict: bgq_upc::Counter,
    /// Records that arrived in frames and were dispatched (receive side).
    pub unbatched: bgq_upc::Counter,
    /// Node-bucket records forwarded to a sibling context's mailbox.
    pub forwarded: bgq_upc::Counter,
    /// Eligible sends whose record would not fit a frame (oversize
    /// metadata); they fall back to the direct short path.
    pub oversize: bgq_upc::Counter,
    /// Sender-side latency a flush adds to its *oldest* record: bucket
    /// open → cut. The rate-vs-latency tradeoff, measured.
    pub added_latency_ns: Histogram,
}

impl AggrProbes {
    fn new(upc: &Upc) -> AggrProbes {
        AggrProbes {
            batched: upc.counter("aggr.batched_msgs"),
            frames: upc.counter("aggr.frames"),
            frame_bytes: upc.counter("aggr.frame_bytes"),
            flush_fill: upc.counter("aggr.flush_fill"),
            flush_age: upc.counter("aggr.flush_age"),
            flush_explicit: upc.counter("aggr.flush_explicit"),
            flush_conflict: upc.counter("aggr.flush_conflict"),
            unbatched: upc.counter("aggr.unbatched"),
            forwarded: upc.counter("aggr.forwarded"),
            oversize: upc.counter("aggr.oversize_fallback"),
            added_latency_ns: upc.histogram("aggr.added_latency_ns"),
        }
    }
}

/// Per-context aggregation state: the coalescing buckets plus their flush
/// machinery. Appends and flushes serialize on one mutex; frame *emission*
/// runs under it too (the `emit` callbacks), so frames cut for one
/// destination are injected in cut order — the ordering argument needs
/// nothing else from callers.
pub(crate) struct Aggregator {
    cfg: AggrConfig,
    /// `cfg.age_us`, pre-scaled to ns.
    age_ns: u64,
    /// Clock origin: bucket-open times and deadlines are ns since here.
    epoch: Instant,
    state: Mutex<AggrState>,
    /// Buffered records across all buckets. Read lock-free by the advance
    /// fast path and quiescence probes.
    pending: AtomicUsize,
    /// Earliest open bucket's age deadline (aggregator-clock ns),
    /// `u64::MAX` when nothing is buffered. Only mutated under the state
    /// lock. May run *early* — a fill/conflict cut leaves it stale until
    /// the next `flush_due` recomputes — but never late: every bucket open
    /// min-merges its deadline in. Read lock-free by [`Aggregator::due_now`].
    deadline_ns: AtomicU64,
    /// Cut counter driving the 1-in-16 latency-histogram sample. Only
    /// touched under the state lock.
    lat_tick: AtomicU64,
    pub(crate) probes: AggrProbes,
}

impl Aggregator {
    pub(crate) fn new(cfg: AggrConfig, upc: &Upc) -> Aggregator {
        Aggregator {
            cfg,
            age_ns: cfg.age_us.saturating_mul(1000),
            epoch: Instant::now(),
            state: Mutex::new(AggrState { buckets: HashMap::default() }),
            pending: AtomicUsize::new(0),
            deadline_ns: AtomicU64::new(u64::MAX),
            lat_tick: AtomicU64::new(0),
            probes: AggrProbes::new(upc),
        }
    }

    pub(crate) fn config(&self) -> &AggrConfig {
        &self.cfg
    }

    /// Buffered records across all buckets (lock-free).
    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Whether the advance clock owes this aggregator an age flush:
    /// records are buffered and the earliest deadline has lapsed. One
    /// atomic load plus one clock read; the idle case (`pending == 0`)
    /// skips the clock entirely, which is what keeps a context with a
    /// quiet aggregator on its advance fast path.
    #[inline]
    pub(crate) fn due_now(&self) -> bool {
        self.pending.load(Ordering::Acquire) > 0
            && self.now_ns() >= self.deadline_ns.load(Ordering::Relaxed)
    }

    fn fresh_bucket(&self, class: u8) -> Bucket {
        Bucket {
            buf: BytesMut::with_capacity(self.cfg.max_frame),
            count: 0,
            opened_ns: 0,
            class,
        }
    }

    /// Whether a record of this shape can ride a frame at all.
    #[inline]
    pub(crate) fn record_fits(&self, meta_len: usize, payload_len: usize) -> bool {
        batch::record_size(self.cfg.node_buckets, meta_len, payload_len) <= self.cfg.max_frame
    }

    fn cut(&self, bucket: &mut Bucket, dest: Endpoint, cause: FlushCause) -> Frame {
        let fresh = self.fresh_bucket(bucket.class);
        let cut = std::mem::replace(bucket, fresh);
        // Same single-writer-under-lock pattern as `append`.
        self.pending
            .store(self.pending.load(Ordering::Relaxed) - cut.count as usize, Ordering::Release);
        self.probes.frames.incr();
        self.probes.frame_bytes.add(cut.buf.len() as u64);
        // One striped-counter add per frame instead of one per record: the
        // count is exact once every open bucket has been flushed, which is
        // the only point (post-drain) the benches and tests read it.
        self.probes.batched.add(u64::from(cut.count));
        match cause {
            FlushCause::Fill => self.probes.flush_fill.incr(),
            FlushCause::Age => self.probes.flush_age.incr(),
            FlushCause::Explicit => self.probes.flush_explicit.incr(),
            FlushCause::Conflict => self.probes.flush_conflict.incr(),
        }
        if bgq_upc::ENABLED {
            // Sampled 1-in-16: the histogram is statistical, and the clock
            // read it needs is a measurable slice of the per-frame cut cost.
            // All cut callers hold the state lock, so the plain load+store
            // tick is race-free.
            let tick = self.lat_tick.load(Ordering::Relaxed);
            self.lat_tick.store(tick.wrapping_add(1), Ordering::Relaxed);
            if tick & 15 == 0 {
                self.probes.added_latency_ns.record(self.now_ns().saturating_sub(cut.opened_ns));
            }
        }
        Frame { dest, count: cut.count, payload: cut.buf.freeze(), cause }
    }

    /// Append one record to `key`'s bucket, emitting any frame the append
    /// cuts (the bucket that could not fit the record, and/or the bucket
    /// the record filled to the brim). `dest` is the record's own endpoint
    /// — recorded per record only in node-bucket (addressed) mode. `class`
    /// supplies the key's first-hop class; it is invoked only when the key
    /// opens its first bucket. Returns whether this append *opened* a
    /// bucket (started a fresh age deadline) — the caller's cue to wake a
    /// parked commthread; subsequent appends move no deadline and need no
    /// wakeup.
    ///
    /// The caller must have checked [`Aggregator::record_fits`].
    #[allow(clippy::too_many_arguments)] // one argument per record field; a struct would be built just to be destructured
    pub(crate) fn append(
        &self,
        key: Endpoint,
        dest: Endpoint,
        dispatch: u16,
        metadata: &[u8],
        payload: &[u8],
        class: impl FnOnce() -> u8,
        mut emit: impl FnMut(Frame),
    ) -> bool {
        let addressed = self.cfg.node_buckets;
        let rec = batch::record_size(addressed, metadata.len(), payload.len());
        let mut st = self.state.lock();
        let bucket = match st.buckets.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.fresh_bucket(class()))
            }
        };
        if bucket.buf.len() + rec > self.cfg.max_frame {
            let frame = self.cut(bucket, key, FlushCause::Fill);
            emit(frame);
        }
        let opened = bucket.count == 0;
        if opened {
            // Bucket open: start the age clock and pull the shared
            // deadline down to it (still under the state lock, so the
            // lock-free readers only ever see at-or-before-true values).
            bucket.opened_ns = self.now_ns();
            self.deadline_ns.fetch_min(bucket.opened_ns + self.age_ns, Ordering::Release);
        }
        batch::push_record(
            &mut bucket.buf,
            addressed.then_some((dest.task, dest.context)),
            dispatch,
            metadata,
            payload,
        );
        bucket.count += 1;
        // Writers of `pending` all hold the state lock, so a plain
        // load+store publishes without the locked-RMW round trip; lock-free
        // readers (flush_conflict, quiescence) still see a release-ordered
        // value.
        self.pending.store(self.pending.load(Ordering::Relaxed) + 1, Ordering::Release);
        // No record smaller than the bare header fits any more: cut now
        // instead of waiting for the age bound.
        if bucket.buf.len() + batch::record_size(addressed, 0, 0) > self.cfg.max_frame {
            let frame = self.cut(bucket, key, FlushCause::Fill);
            emit(frame);
        }
        opened
    }

    /// Cut `key`'s bucket, if open, before a non-aggregated send to the
    /// same destination (ordering). Returns whether a frame was emitted.
    pub(crate) fn flush_conflict(&self, key: Endpoint, mut emit: impl FnMut(Frame)) -> bool {
        if self.pending() == 0 {
            return false;
        }
        let mut st = self.state.lock();
        match st.buckets.get_mut(&key) {
            Some(bucket) if bucket.count > 0 => {
                let frame = self.cut(bucket, key, FlushCause::Conflict);
                emit(frame);
                true
            }
            _ => false,
        }
    }

    /// Cut every bucket whose oldest record has aged past the bound.
    /// Buckets are emitted grouped by their cached first-hop class, so
    /// frames sharing their first link leave back-to-back. Recomputes the
    /// shared age deadline over whatever stays open — which also heals
    /// the stale-early value fill/conflict cuts leave behind. Returns
    /// frames emitted.
    pub(crate) fn flush_due(&self, mut emit: impl FnMut(Frame)) -> usize {
        if self.pending() == 0 {
            return 0;
        }
        let now = self.now_ns();
        let mut st = self.state.lock();
        let mut due: Vec<(u8, Endpoint)> = st
            .buckets
            .iter()
            .filter(|(_, b)| b.count > 0 && now.saturating_sub(b.opened_ns) >= self.age_ns)
            .map(|(&k, b)| (b.class, k))
            .collect();
        due.sort_unstable_by_key(|&(c, k)| (c, k.task, k.context));
        let mut emitted = 0;
        for (_, key) in due {
            // Cut-and-remove: an idle destination should not keep a map
            // entry (or its buffer) alive forever.
            if let Some(mut bucket) = st.buckets.remove(&key) {
                let frame = self.cut(&mut bucket, key, FlushCause::Age);
                emit(frame);
                emitted += 1;
            }
        }
        let next = st
            .buckets
            .values()
            .filter(|b| b.count > 0)
            .map(|b| b.opened_ns + self.age_ns)
            .min()
            .unwrap_or(u64::MAX);
        self.deadline_ns.store(next, Ordering::Release);
        emitted
    }

    /// Cut every open bucket now ([`crate::Context::flush_aggr`]), in
    /// first-hop-class order.
    pub(crate) fn flush_all(&self, mut emit: impl FnMut(Frame)) -> usize {
        if self.pending() == 0 {
            return 0;
        }
        let mut st = self.state.lock();
        let mut keys: Vec<(u8, Endpoint)> = st
            .buckets
            .iter()
            .filter(|(_, b)| b.count > 0)
            .map(|(&k, b)| (b.class, k))
            .collect();
        keys.sort_unstable_by_key(|&(c, k)| (c, k.task, k.context));
        let mut emitted = 0;
        for (_, key) in keys {
            if let Some(mut bucket) = st.buckets.remove(&key) {
                let frame = self.cut(&mut bucket, key, FlushCause::Explicit);
                emit(frame);
                emitted += 1;
            }
        }
        self.deadline_ns.store(u64::MAX, Ordering::Release);
        emitted
    }
}

/// Frame header carried in the packet envelope's metadata body: record
/// count (u16 LE) + addressing mode (u8, 1 = node-bucket records carry
/// their own endpoint).
pub(crate) fn frame_header(count: u16, addressed: bool) -> [u8; 3] {
    let c = count.to_le_bytes();
    [c[0], c[1], addressed as u8]
}

/// Parse a frame header back into (count, addressed).
pub(crate) fn open_frame_header(body: &[u8]) -> (u16, bool) {
    assert!(body.len() >= 3, "malformed aggregated-frame header");
    (u16::from_le_bytes([body[0], body[1]]), body[2] != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(task: u32) -> Endpoint {
        Endpoint { task, context: 0 }
    }

    #[test]
    fn frame_header_round_trips() {
        assert_eq!(open_frame_header(&frame_header(7, false)), (7, false));
        assert_eq!(open_frame_header(&frame_header(65535, true)), (65535, true));
    }

    #[test]
    fn append_cuts_on_fill() {
        let upc = Upc::new();
        let a = Aggregator::new(
            AggrConfig { cutoff: 64, max_frame: 100, age_us: 1000, node_buckets: false },
            &upc,
        );
        let mut frames = Vec::new();
        // 6-byte header + 24-byte payload = 30 bytes/record: the 4th
        // append (120 > 100) cuts the first three.
        for i in 0..4u8 {
            a.append(ep(1), ep(1), 5, b"", &[i; 24], || 0, |f| frames.push(f));
        }
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].count, 3);
        assert_eq!(frames[0].cause, FlushCause::Fill);
        assert_eq!(a.pending(), 1, "the record that forced the cut stays buffered");
        let recs: Vec<_> =
            bgq_mu::RecordIter::new(frames[0].payload.clone(), 3, false).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(&recs[2].payload[..], &[2u8; 24]);
    }

    #[test]
    fn exact_fill_cuts_immediately() {
        let upc = Upc::new();
        let a = Aggregator::new(
            AggrConfig { cutoff: 64, max_frame: 60, age_us: 1000, node_buckets: false },
            &upc,
        );
        let mut frames = Vec::new();
        // Two 30-byte records fill the 60-byte frame to the brim: the
        // second append cuts without waiting for a third.
        a.append(ep(1), ep(1), 5, b"", &[0; 24], || 0, |f| frames.push(f));
        assert!(frames.is_empty());
        a.append(ep(1), ep(1), 5, b"", &[1; 24], || 0, |f| frames.push(f));
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].count, 2);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn conflict_flush_targets_one_bucket() {
        let upc = Upc::new();
        let a = Aggregator::new(AggrConfig::default(), &upc);
        let mut frames = Vec::new();
        a.append(ep(1), ep(1), 5, b"", b"aa", || 0, |f| frames.push(f));
        a.append(ep(2), ep(2), 5, b"", b"bb", || 0, |f| frames.push(f));
        assert!(a.flush_conflict(ep(1), |f| frames.push(f)));
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].dest, ep(1));
        assert_eq!(frames[0].cause, FlushCause::Conflict);
        assert_eq!(a.pending(), 1, "destination 2's bucket is untouched");
        assert!(!a.flush_conflict(ep(1), |_| panic!("nothing left for dest 1")));
    }

    #[test]
    fn age_flush_respects_bound_and_orders_by_class() {
        let upc = Upc::new();
        let a = Aggregator::new(
            AggrConfig { cutoff: 64, max_frame: 512, age_us: 0, node_buckets: false },
            &upc,
        );
        let mut frames = Vec::new();
        // age_us = 0: everything is due at once; the class recorded at
        // append time makes the emission order observable.
        a.append(ep(3), ep(3), 5, b"", b"x", || 3, |f| frames.push(f));
        a.append(ep(1), ep(1), 5, b"", b"y", || 1, |f| frames.push(f));
        let n = a.flush_due(|f| frames.push(f));
        assert_eq!(n, 2);
        assert_eq!(frames[0].dest, ep(1), "lower class first");
        assert_eq!(frames[1].dest, ep(3));
        assert!(frames.iter().all(|f| f.cause == FlushCause::Age));
        assert_eq!(a.pending(), 0);
        // A long bound keeps fresh records buffered.
        let a = Aggregator::new(
            AggrConfig { age_us: 10_000_000, ..AggrConfig::default() },
            &upc,
        );
        a.append(ep(1), ep(1), 5, b"", b"z", || 0, |_| panic!("no cut on append"));
        assert_eq!(a.flush_due(|_| panic!("not due yet")), 0);
        assert_eq!(a.pending(), 1);
    }

    #[test]
    fn due_now_tracks_the_age_deadline() {
        let upc = Upc::new();
        let a = Aggregator::new(
            AggrConfig { age_us: 10_000_000, ..AggrConfig::default() },
            &upc,
        );
        assert!(!a.due_now(), "nothing buffered");
        let opened = a.append(ep(1), ep(1), 5, b"", b"x", || 0, |_| panic!("no cut"));
        assert!(opened, "first record opens the bucket");
        let opened = a.append(ep(1), ep(1), 5, b"", b"y", || 0, |_| panic!("no cut"));
        assert!(!opened, "second record rides the open bucket");
        assert!(!a.due_now(), "deadline far in the future");
        let a = Aggregator::new(AggrConfig { age_us: 0, ..AggrConfig::default() }, &upc);
        a.append(ep(1), ep(1), 5, b"", b"x", || 0, |_| panic!("no cut"));
        assert!(a.due_now(), "a zero age bound is immediately due");
        let mut frames = Vec::new();
        a.flush_due(|f| frames.push(f));
        assert_eq!(frames.len(), 1);
        assert!(!a.due_now(), "drained");
    }

    #[test]
    fn flush_all_drains_everything() {
        let upc = Upc::new();
        let a = Aggregator::new(AggrConfig::default(), &upc);
        let mut frames = Vec::new();
        for t in 0..5u32 {
            a.append(ep(t), ep(t), 2, b"m", b"pp", || 0, |f| frames.push(f));
        }
        assert_eq!(a.flush_all(|f| frames.push(f)), 5);
        assert_eq!(frames.len(), 5);
        assert!(frames.iter().all(|f| f.count == 1 && f.cause == FlushCause::Explicit));
        assert_eq!(a.pending(), 0);
        assert_eq!(a.flush_all(|_| panic!("already empty")), 0);
    }

    #[test]
    fn node_bucket_records_carry_addresses() {
        let upc = Upc::new();
        let a = Aggregator::new(AggrConfig { node_buckets: true, ..Default::default() }, &upc);
        let lead = ep(4);
        let mut frames = Vec::new();
        a.append(lead, Endpoint { task: 4, context: 1 }, 9, b"", b"one", || 0, |f| {
            frames.push(f)
        });
        a.append(lead, Endpoint { task: 5, context: 0 }, 9, b"", b"two", || 0, |f| {
            frames.push(f)
        });
        a.flush_all(|f| frames.push(f));
        assert_eq!(frames.len(), 1);
        let recs: Vec<_> =
            bgq_mu::RecordIter::new(frames[0].payload.clone(), frames[0].count, true).collect();
        assert_eq!(recs[0].dest, Some((4, 1)));
        assert_eq!(recs[1].dest, Some((5, 0)));
    }

    #[test]
    fn record_fits_accounts_for_mode_header() {
        let upc = Upc::new();
        let a = Aggregator::new(
            AggrConfig { max_frame: 20, node_buckets: false, ..Default::default() },
            &upc,
        );
        assert!(a.record_fits(0, 14)); // 6 + 14 = 20
        assert!(!a.record_fits(0, 15));
        let a = Aggregator::new(
            AggrConfig { max_frame: 20, node_buckets: true, ..Default::default() },
            &upc,
        );
        assert!(a.record_fits(0, 8)); // 12 + 8 = 20
        assert!(!a.record_fits(0, 9));
    }
}
