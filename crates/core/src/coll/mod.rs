//! Collective operations over geometries.
//!
//! Each operation has two paths, selectable with [`Algorithm`]:
//!
//! * **Hardware** (`HwCollNet`): the classroute path of the paper. One
//!   leader per node talks to the collective network; the tasks sharing a
//!   node coordinate through the L2 local barrier and the shared-address
//!   board — peers post their buffers and read the leader's directly
//!   through the global virtual address space, the scheme of Figures 3–4
//!   (parallel local math for allreduce, master-injects/peers-copy for
//!   broadcast).
//! * **Software** (`SwBinomial`): binomial trees over PAMI point-to-point
//!   sends — what non-rectangular (or deoptimized) communicators fall back
//!   to, and the baseline the hardware path is measured against.
//!
//! Selection is delegated to the machine's [`CollRegistry`]: every
//! algorithm — hardware, software fallback, and layered additions like the
//! MPI rectangle broadcast — registers an [`AlgEntry`] with an availability
//! predicate and a cost hint, the public entry points pick the cheapest
//! available entry, and the `*_with` variants become forced lookups by
//! name. [`crate::geometry::Geometry::algorithms_query`] exposes the whole
//! list per geometry (PAMI's `PAMI_Geometry_algorithms_query`).
//!
//! All operations are blocking and *collective*: every member task must
//! call them in the same order. Progress is made by advancing the calling
//! context, so they compose with commthreads and other traffic.

use std::sync::Arc;

use bgq_collnet::{CollContribution, CollOp, CollOutput, DataType};
use bgq_hw::{Counter, MemRegion};
use bgq_mu::PayloadSource;
use bgq_upc::{Histogram, Stamp, Upc};

use crate::context::Context;
use crate::geometry::{BoardEntry, Geometry};

pub mod registry;

pub use registry::{
    AlgEntry, AlgExec, AlgInfo, AvailFn, AllreduceExec, BarrierExec, BlockExec, BroadcastExec,
    CollKind, CollRegistry, ExchangeExec, ReduceExec,
};

/// `coll.*` telemetry probes — per-phase timing of the collective paths
/// (the UPC-style breakdown the paper uses to attribute Figure 6/7 latency
/// to local math vs. network contribution vs. result copy). One instance
/// per [`crate::machine::Machine`], registered at build so repeated
/// collectives share probes instead of growing the registry.
pub(crate) struct CollProbes {
    pub(crate) barriers: bgq_upc::Counter,
    pub(crate) broadcasts: bgq_upc::Counter,
    pub(crate) allreduces: bgq_upc::Counter,
    pub(crate) reduces: bgq_upc::Counter,
    pub(crate) gathers: bgq_upc::Counter,
    pub(crate) scatters: bgq_upc::Counter,
    pub(crate) allgathers: bgq_upc::Counter,
    pub(crate) alltoalls: bgq_upc::Counter,
    /// End-to-end latency per operation, all algorithms.
    pub(crate) barrier_ns: Histogram,
    pub(crate) bcast_ns: Histogram,
    pub(crate) allreduce_ns: Histogram,
    pub(crate) reduce_ns: Histogram,
    /// Hardware-allreduce phases: the parallel local combine over this
    /// task's slice (Figure 3) and the leader's pipelined network
    /// contribution (Figure 4).
    pub(crate) allreduce_local_ns: Histogram,
    pub(crate) allreduce_network_ns: Histogram,
    /// Hardware-broadcast network phase (leader inject / leader receive).
    pub(crate) bcast_network_ns: Histogram,
}

impl CollProbes {
    pub(crate) fn new(upc: &Upc) -> CollProbes {
        CollProbes {
            barriers: upc.counter("coll.barriers"),
            broadcasts: upc.counter("coll.broadcasts"),
            allreduces: upc.counter("coll.allreduces"),
            reduces: upc.counter("coll.reduces"),
            gathers: upc.counter("coll.gathers"),
            scatters: upc.counter("coll.scatters"),
            allgathers: upc.counter("coll.allgathers"),
            alltoalls: upc.counter("coll.alltoalls"),
            barrier_ns: upc.histogram("coll.barrier_ns"),
            bcast_ns: upc.histogram("coll.bcast_ns"),
            allreduce_ns: upc.histogram("coll.allreduce_ns"),
            reduce_ns: upc.histogram("coll.reduce_ns"),
            allreduce_local_ns: upc.histogram("coll.allreduce.local_ns"),
            allreduce_network_ns: upc.histogram("coll.allreduce.network_ns"),
            bcast_network_ns: upc.histogram("coll.bcast.network_ns"),
        }
    }
}

/// Which implementation a collective uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Hardware when the geometry has a classroute, software otherwise.
    #[default]
    Auto,
    /// Force the collective-network path.
    ///
    /// Panics if the geometry is not optimized.
    HwCollNet,
    /// Force the software binomial path.
    SwBinomial,
}

/// Element size used by reductions (the collective network combines 64-bit
/// words).
pub const ELEM: usize = 8;

/// Pipeline slice for long hardware allreduce/broadcast contributions
/// (Figure 4's "each process operates on a slice of buffers").
pub const PIPELINE_SLICE: usize = 64 * 1024;

const SLOT_ROOT: u32 = 0x4000_0000;
const SLOT_NODEBUF: u32 = 0x4000_0001;
const SLOT_RESULT: u32 = 0x4000_0002;

// ---------------------------------------------------------------------------
// Builtin registry entries
// ---------------------------------------------------------------------------

/// Registry names of the builtin algorithms (stable; `*_with` forcing and
/// tests refer to these).
pub mod names {
    pub const GI_BARRIER: &str = "gi-barrier";
    pub const COLLNET_BARRIER: &str = "collnet-barrier";
    pub const HW_BCAST: &str = "hw-collnet-bcast";
    pub const SW_BCAST: &str = "sw-binomial-bcast";
    pub const HW_ALLREDUCE: &str = "hw-collnet-allreduce";
    pub const SW_ALLREDUCE: &str = "sw-binomial-allreduce";
    pub const SW_REDUCE: &str = "sw-binomial-reduce";
    pub const SW_GATHER: &str = "sw-binomial-gather";
    pub const SW_SCATTER: &str = "sw-binomial-scatter";
    pub const SW_ALLGATHER: &str = "sw-ring-allgather";
    pub const SW_ALLTOALL: &str = "sw-pairwise-alltoall";
    pub const STREAM_ALLREDUCE: &str = "sw-stream-allreduce";
}

/// Register every algorithm the core crate ships. Cost convention: hardware
/// paths 10–20 (available only with a classroute), software fallbacks 100
/// (always available), so auto-selection reproduces the old `use_hw`
/// decision exactly.
pub(crate) fn register_builtins(reg: &CollRegistry) {
    let always: AvailFn = Arc::new(|_: &Geometry| true);
    let routed: AvailFn = Arc::new(|g: &Geometry| g.route().is_some());

    reg.register(AlgEntry::new(
        names::GI_BARRIER,
        CollKind::Barrier,
        10,
        always.clone(),
        AlgExec::Barrier(Arc::new(gi_barrier)),
    ));
    reg.register(AlgEntry::new(
        names::COLLNET_BARRIER,
        CollKind::Barrier,
        20,
        routed.clone(),
        AlgExec::Barrier(Arc::new(collnet_barrier)),
    ));
    reg.register(AlgEntry::new(
        names::HW_BCAST,
        CollKind::Broadcast,
        10,
        routed.clone(),
        AlgExec::Broadcast(Arc::new(hw_broadcast)),
    ));
    reg.register(AlgEntry::new(
        names::SW_BCAST,
        CollKind::Broadcast,
        100,
        always.clone(),
        AlgExec::Broadcast(Arc::new(sw_broadcast)),
    ));
    reg.register(AlgEntry::new(
        names::HW_ALLREDUCE,
        CollKind::Allreduce,
        10,
        routed,
        AlgExec::Allreduce(Arc::new(hw_allreduce)),
    ));
    reg.register(AlgEntry::new(
        names::SW_ALLREDUCE,
        CollKind::Allreduce,
        100,
        always.clone(),
        AlgExec::Allreduce(Arc::new(sw_allreduce)),
    ));
    // Streaming chain allreduce (SHArP-style segment pipeline): cheaper
    // than the binomial tree on unrouted geometries, still dearer than the
    // collective network, so auto-selection ranks hw(10) < stream(90) <
    // binomial(100).
    reg.register(AlgEntry::new(
        names::STREAM_ALLREDUCE,
        CollKind::Allreduce,
        90,
        Arc::new(|g: &Geometry| g.size() >= 2),
        AlgExec::Allreduce(Arc::new(sw_stream_allreduce)),
    ));
    reg.register(AlgEntry::new(
        names::SW_REDUCE,
        CollKind::Reduce,
        100,
        always.clone(),
        AlgExec::Reduce(Arc::new(sw_reduce)),
    ));
    reg.register(AlgEntry::new(
        names::SW_GATHER,
        CollKind::Gather,
        100,
        always.clone(),
        AlgExec::Block(Arc::new(sw_gather)),
    ));
    reg.register(AlgEntry::new(
        names::SW_SCATTER,
        CollKind::Scatter,
        100,
        always.clone(),
        AlgExec::Block(Arc::new(sw_scatter)),
    ));
    reg.register(AlgEntry::new(
        names::SW_ALLGATHER,
        CollKind::Allgather,
        100,
        always.clone(),
        AlgExec::Exchange(Arc::new(sw_allgather)),
    ));
    reg.register(AlgEntry::new(
        names::SW_ALLTOALL,
        CollKind::Alltoall,
        100,
        always,
        AlgExec::Exchange(Arc::new(sw_alltoall)),
    ));
}

/// Map an [`Algorithm`] forcing onto a registry name (`None` = auto).
/// Preserves the pre-registry contract: forcing `HwCollNet` on an
/// unoptimized geometry panics here, before any lookup.
fn forced_name(
    geom: &Geometry,
    alg: Algorithm,
    hw: &'static str,
    sw: &'static str,
) -> Option<&'static str> {
    match alg {
        Algorithm::Auto => None,
        Algorithm::HwCollNet => {
            assert!(
                geom.route().is_some(),
                "Algorithm::HwCollNet on an unoptimized geometry — call optimize() first"
            );
            Some(hw)
        }
        Algorithm::SwBinomial => Some(sw),
    }
}

fn lookup(geom: &Geometry, kind: CollKind, forced: Option<&str>) -> Arc<AlgEntry> {
    let reg = geom.machine().coll_registry();
    match forced {
        Some(name) => reg.forced(kind, name),
        None => reg.select(kind, geom),
    }
}

fn local_barrier(geom: &Geometry, ctx: &Context) {
    let group = geom.group(ctx.node());
    if group.tasks.len() == 1 {
        return;
    }
    let generation = group.barrier.arrive();
    ctx.advance_until(|| group.barrier.is_released(generation));
}

fn entry_region(entry: BoardEntry) -> (MemRegion, usize, usize) {
    match entry {
        BoardEntry::Region { region, offset, len } => (region, offset, len),
        BoardEntry::Data(_) => panic!("expected a region board entry"),
    }
}

fn wait_board(geom: &Geometry, ctx: &Context, seq: u64, slot: u32) -> BoardEntry {
    let group = geom.group(ctx.node());
    loop {
        if let Some(e) = group.board.get(seq, slot) {
            return e;
        }
        if ctx.advance() == 0 {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

/// Barrier over the geometry: L2 local barrier on each node bracketing a GI
/// barrier across the nodes (paper section IV.B). Auto-selection picks the
/// GI entry on every geometry — the paper chose the GI network over
/// collective-network barriers for latency, and the cost hints encode that.
pub fn barrier(geom: &Geometry, ctx: &Context) {
    barrier_dispatch(geom, ctx, None)
}

/// Which inter-node mechanism a barrier uses (ablation hook: the paper
/// chose the GI network over collective-network barriers for latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierAlg {
    /// The global-interrupt network (the paper's choice).
    #[default]
    GlobalInterrupt,
    /// A zero-payload collective-network operation over the classroute
    /// (requires an optimized geometry).
    CollNet,
}

/// Barrier with an explicit inter-node mechanism (forced registry lookup).
pub fn barrier_with(geom: &Geometry, ctx: &Context, alg: BarrierAlg) {
    let name = match alg {
        BarrierAlg::GlobalInterrupt => names::GI_BARRIER,
        BarrierAlg::CollNet => names::COLLNET_BARRIER,
    };
    barrier_dispatch(geom, ctx, Some(name))
}

fn barrier_dispatch(geom: &Geometry, ctx: &Context, forced: Option<&str>) {
    let machine = geom.machine();
    let probes = machine.coll_probes();
    probes.barriers.incr();
    let start = Stamp::now();
    // Consume a sequence number to keep collective ordering aligned even
    // though the barrier itself never touches the board.
    let seq = geom.next_seq(ctx.task());
    if geom.size() > 1 {
        let entry = lookup(geom, CollKind::Barrier, forced);
        match entry.exec() {
            AlgExec::Barrier(f) => f(geom, ctx, seq),
            _ => unreachable!("barrier entry with a non-barrier body"),
        }
    }
    probes.barrier_ns.record_since(start);
    machine.telemetry().trace_span("coll.barrier", start, geom.size() as u64);
}

/// GI-network barrier body: local barrier, leader arrives at the GI wire,
/// local barrier.
fn gi_barrier(geom: &Geometry, ctx: &Context, _seq: u64) {
    let group = geom.group(ctx.node());
    local_barrier(geom, ctx);
    if ctx.task() == group.leader && geom.nodes().len() > 1 {
        let phase = geom.gi().arrive();
        ctx.advance_until(|| geom.gi().is_released(phase));
    }
    local_barrier(geom, ctx);
}

/// Collective-network barrier body: a zero-payload contribution over the
/// classroute. Panics (leader only, multi-node only) when the geometry has
/// no route — exactly the pre-registry behaviour.
fn collnet_barrier(geom: &Geometry, ctx: &Context, _seq: u64) {
    let group = geom.group(ctx.node());
    local_barrier(geom, ctx);
    if ctx.task() == group.leader && geom.nodes().len() > 1 {
        let route = geom
            .route()
            .expect("BarrierAlg::CollNet requires an optimized geometry");
        let machine = geom.machine();
        let done = Counter::new();
        done.add_expected(1);
        machine.collnet().contribute(
            &route,
            machine.shape().coords_of(ctx.node() as usize),
            CollContribution::Barrier {
                output: Some(CollOutput {
                    region: MemRegion::zeroed(0),
                    offset: 0,
                    counter: Some(done.clone()),
                    wakeup: None,
                }),
            },
        );
        ctx.advance_until(|| done.is_complete());
    }
    local_barrier(geom, ctx);
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

/// Broadcast `len` bytes at (`region`, `offset`) from geometry rank
/// `root_rank` to the same place on every member (registry auto-selection).
pub fn broadcast(
    geom: &Geometry,
    ctx: &Context,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    broadcast_dispatch(geom, ctx, None, root_rank, region, offset, len)
}

/// Broadcast with an explicit algorithm choice (forced registry lookup).
pub fn broadcast_with(
    geom: &Geometry,
    ctx: &Context,
    alg: Algorithm,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let forced = forced_name(geom, alg, names::HW_BCAST, names::SW_BCAST);
    broadcast_dispatch(geom, ctx, forced, root_rank, region, offset, len)
}

/// Broadcast through a named registry entry — how layered algorithms (the
/// MPI rectangle broadcast) are invoked once registered.
///
/// # Panics
/// If no broadcast algorithm is registered under `name`.
pub fn broadcast_named(
    geom: &Geometry,
    ctx: &Context,
    name: &str,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    broadcast_dispatch(geom, ctx, Some(name), root_rank, region, offset, len)
}

fn broadcast_dispatch(
    geom: &Geometry,
    ctx: &Context,
    forced: Option<&str>,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let machine = geom.machine();
    let probes = machine.coll_probes();
    probes.broadcasts.incr();
    let start = Stamp::now();
    // Consume the sequence number even for trivial cases (MPI_Bcast of zero
    // bytes is a no-op but collective ordering must stay aligned).
    let seq = geom.next_seq(ctx.task());
    if geom.size() > 1 && len > 0 {
        let entry = lookup(geom, CollKind::Broadcast, forced);
        match entry.exec() {
            AlgExec::Broadcast(f) => f(geom, ctx, seq, root_rank, region, offset, len),
            _ => unreachable!("broadcast entry with a non-broadcast body"),
        }
    }
    probes.bcast_ns.record_since(start);
    machine.telemetry().trace_span("coll.broadcast", start, len as u64);
}

fn hw_broadcast(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let route = geom.route().expect("hw path requires a classroute");
    let machine = geom.machine();
    let node = ctx.node();
    let group = geom.group(node);
    let me = ctx.task();
    let root_task = geom.topology().task_at(root_rank);
    let root_node = machine.task_node(root_task);
    let is_leader = me == group.leader;

    // A non-leader root shares its buffer so the leader can inject from it.
    if me == root_task && !is_leader {
        group.board.post(
            seq,
            SLOT_ROOT,
            BoardEntry::Region { region: region.clone(), offset, len },
        );
    }
    local_barrier(geom, ctx);

    if is_leader {
        let net_start = Stamp::now();
        let coords = machine.shape().coords_of(node as usize);
        let done = Counter::new();
        done.add_expected(len as u64);
        if node == root_node {
            // Master injects; data comes from the root's buffer (its own,
            // or read through the global VA from the posted region).
            let (src_region, src_off) = if me == root_task {
                (region.clone(), offset)
            } else {
                let (r, o, l) = entry_region(wait_board(geom, ctx, seq, SLOT_ROOT));
                assert_eq!(l, len, "root posted a different length");
                (r, o)
            };
            let mut sent = 0usize;
            while sent < len {
                let chunk = (len - sent).min(PIPELINE_SLICE);
                let mut data = vec![0u8; chunk];
                src_region.read(src_off + sent, &mut data);
                machine.collnet().contribute(
                    &route,
                    coords,
                    CollContribution::Broadcast {
                        data: Some(data),
                        len: chunk,
                        output: Some(CollOutput {
                            region: region.clone(),
                            offset: offset + sent,
                            counter: Some(done.clone()),
                            wakeup: None,
                        }),
                    },
                );
                sent += chunk;
            }
        } else {
            let mut recvd = 0usize;
            while recvd < len {
                let chunk = (len - recvd).min(PIPELINE_SLICE);
                machine.collnet().contribute(
                    &route,
                    coords,
                    CollContribution::Broadcast {
                        data: None,
                        len: chunk,
                        output: Some(CollOutput {
                            region: region.clone(),
                            offset: offset + recvd,
                            counter: Some(done.clone()),
                            wakeup: None,
                        }),
                    },
                );
                recvd += chunk;
            }
        }
        ctx.advance_until(|| done.is_complete());
        let probes = machine.coll_probes();
        probes.bcast_network_ns.record_since(net_start);
        machine.telemetry().trace_span("coll.bcast.network", net_start, len as u64);
        group.board.post(
            seq,
            SLOT_RESULT,
            BoardEntry::Region { region: region.clone(), offset, len },
        );
    }
    local_barrier(geom, ctx);
    if !is_leader && me != root_task {
        // Peers copy straight out of the master's buffer (global VA).
        let (src, src_off, _) = entry_region(wait_board(geom, ctx, seq, SLOT_RESULT));
        region.copy_from(offset, &src, src_off, len);
    }
    local_barrier(geom, ctx);
    if is_leader {
        group.board.clear_seq(seq);
    }
}

fn sw_broadcast(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    region: &MemRegion,
    offset: usize,
    len: usize,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let relative = (rank + n - root_rank) % n;
    let tag = seq << 8;

    // Find the reception point.
    let mut mask = 1usize;
    while mask < n {
        if relative & mask != 0 {
            let parent = (relative - mask + root_rank) % n;
            let data = geom.recv_sw(ctx, parent, tag);
            assert_eq!(data.len(), len, "sw broadcast length mismatch");
            region.write(offset, &data);
            break;
        }
        mask <<= 1;
    }
    if relative == 0 {
        mask = n.next_power_of_two();
    }
    // Forward down the tree.
    mask >>= 1;
    let done = Counter::new();
    while mask > 0 {
        if relative & (mask - 1) == 0 && relative + mask < n {
            let child = (relative + mask + root_rank) % n;
            done.add_expected(len.max(1) as u64);
            geom.send_sw(
                ctx,
                child,
                tag,
                PayloadSource::Region { region: region.clone(), offset, len },
                Some(done.clone()),
            );
        }
        mask >>= 1;
    }
    ctx.advance_until(|| done.is_complete());
}

// ---------------------------------------------------------------------------
// Allreduce / Reduce
// ---------------------------------------------------------------------------

/// Allreduce `count` 8-byte elements from (`src`) into (`dst`) on every
/// member (registry auto-selection).
#[allow(clippy::too_many_arguments)]
pub fn allreduce(
    geom: &Geometry,
    ctx: &Context,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    allreduce_dispatch(geom, ctx, None, src, dst, count, op, dtype)
}

/// Allreduce with an explicit algorithm choice (forced registry lookup).
#[allow(clippy::too_many_arguments)]
pub fn allreduce_with(
    geom: &Geometry,
    ctx: &Context,
    alg: Algorithm,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let forced = forced_name(geom, alg, names::HW_ALLREDUCE, names::SW_ALLREDUCE);
    allreduce_dispatch(geom, ctx, forced, src, dst, count, op, dtype)
}

/// Allreduce through a named registry entry — how layered or experimental
/// algorithms (the streaming chain pipeline) are invoked explicitly.
///
/// # Panics
/// If no allreduce algorithm is registered under `name`.
#[allow(clippy::too_many_arguments)]
pub fn allreduce_named(
    geom: &Geometry,
    ctx: &Context,
    name: &str,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    allreduce_dispatch(geom, ctx, Some(name), src, dst, count, op, dtype)
}

#[allow(clippy::too_many_arguments)]
fn allreduce_dispatch(
    geom: &Geometry,
    ctx: &Context,
    forced: Option<&str>,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let machine = geom.machine();
    let probes = machine.coll_probes();
    probes.allreduces.incr();
    let start = Stamp::now();
    let seq = geom.next_seq(ctx.task());
    if count > 0 {
        if geom.size() == 1 {
            dst.0.copy_from(dst.1, src.0, src.1, count * ELEM);
        } else {
            let entry = lookup(geom, CollKind::Allreduce, forced);
            match entry.exec() {
                AlgExec::Allreduce(f) => f(geom, ctx, seq, src, dst, count, op, dtype),
                _ => unreachable!("allreduce entry with a non-allreduce body"),
            }
        }
    }
    probes.allreduce_ns.record_since(start);
    machine.telemetry().trace_span("coll.allreduce", start, (count * ELEM) as u64);
}

/// Reduce to `root_rank` (registry auto-selection): the result lands in
/// `dst` on the root; other members' `dst` is untouched.
///
/// Only the software binomial path registers for reduce: the hardware
/// reduction would deliver at the route root, so (as the real library does
/// for mismatched roots) arbitrary-root reduces go through the tree.
#[allow(clippy::too_many_arguments)]
pub fn reduce(
    geom: &Geometry,
    ctx: &Context,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let machine = geom.machine();
    let probes = machine.coll_probes();
    probes.reduces.incr();
    let start = Stamp::now();
    let seq = geom.next_seq(ctx.task());
    if count == 0 {
        return;
    }
    if geom.size() == 1 {
        dst.0.copy_from(dst.1, src.0, src.1, count * ELEM);
        return;
    }
    let entry = lookup(geom, CollKind::Reduce, None);
    match entry.exec() {
        AlgExec::Reduce(f) => f(geom, ctx, seq, root_rank, src, dst, count, op, dtype),
        _ => unreachable!("reduce entry with a non-reduce body"),
    }
    probes.reduce_ns.record_since(start);
    machine.telemetry().trace_span("coll.reduce", start, (count * ELEM) as u64);
}

/// Split `count` elements into `parts` contiguous ranges; returns the
/// element range of `part`.
fn partition(count: usize, parts: usize, part: usize) -> (usize, usize) {
    (count * part / parts, count * (part + 1) / parts)
}

#[allow(clippy::too_many_arguments)]
fn hw_allreduce(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let route = geom.route().expect("hw path requires a classroute");
    let machine = geom.machine();
    let node = ctx.node();
    let group = geom.group(node);
    let me = ctx.task();
    let is_leader = me == group.leader;
    let ppn = group.tasks.len();
    let len = count * ELEM;
    let slot = group.slot_of(me);

    // Every member publishes its input; the leader publishes the node
    // accumulation buffer.
    group.board.post(
        seq,
        slot,
        BoardEntry::Region { region: src.0.clone(), offset: src.1, len },
    );
    let _nodebuf = if ppn > 1 {
        let buf = MemRegion::zeroed(len);
        if is_leader {
            group.board.post(
                seq,
                SLOT_NODEBUF,
                BoardEntry::Region { region: buf.clone(), offset: 0, len },
            );
        }
        Some(buf)
    } else {
        None
    };
    local_barrier(geom, ctx);

    // Parallel local math: each member combines everyone's input over its
    // slice of elements and deposits into the node buffer (Figure 3).
    let local_start = Stamp::now();
    let node_src: (MemRegion, usize) = if ppn > 1 {
        let (buf, buf_off, _) = entry_region(wait_board(geom, ctx, seq, SLOT_NODEBUF));
        let (lo, hi) = partition(count, ppn, slot as usize);
        if hi > lo {
            let byte_lo = lo * ELEM;
            let bytes = (hi - lo) * ELEM;
            let mut acc = vec![0u8; bytes];
            let (r0, o0, _) = entry_region(
                group.board.get(seq, 0).expect("slot 0 posted before barrier"),
            );
            r0.read(o0 + byte_lo, &mut acc);
            let mut contrib = vec![0u8; bytes];
            for p in 1..ppn as u32 {
                let (rp, op_, _) = entry_region(
                    group.board.get(seq, p).expect("all slots posted before barrier"),
                );
                rp.read(op_ + byte_lo, &mut contrib);
                bgq_collnet::combine(op, dtype, &mut acc, &contrib);
            }
            buf.write(buf_off + byte_lo, &acc);
        }
        local_barrier(geom, ctx);
        let probes = machine.coll_probes();
        probes.allreduce_local_ns.record_since(local_start);
        machine.telemetry().trace_span("coll.allreduce.local", local_start, len as u64);
        (buf, buf_off)
    } else {
        (src.0.clone(), src.1)
    };

    if is_leader {
        let net_start = Stamp::now();
        let coords = machine.shape().coords_of(node as usize);
        let done = Counter::new();
        done.add_expected(len as u64);
        // Pipelined network contributions, in slice order (Figure 4: "the
        // ordering of injection is maintained across all the masters").
        let mut sent = 0usize;
        while sent < len {
            let chunk = (len - sent).min(PIPELINE_SLICE);
            let mut data = vec![0u8; chunk];
            node_src.0.read(node_src.1 + sent, &mut data);
            machine.collnet().contribute(
                &route,
                coords,
                CollContribution::Allreduce {
                    op,
                    dtype,
                    data,
                    output: CollOutput {
                        region: dst.0.clone(),
                        offset: dst.1 + sent,
                        counter: Some(done.clone()),
                        wakeup: None,
                    },
                },
            );
            sent += chunk;
        }
        ctx.advance_until(|| done.is_complete());
        let probes = machine.coll_probes();
        probes.allreduce_network_ns.record_since(net_start);
        machine.telemetry().trace_span("coll.allreduce.network", net_start, len as u64);
        group.board.post(
            seq,
            SLOT_RESULT,
            BoardEntry::Region { region: dst.0.clone(), offset: dst.1, len },
        );
    }
    local_barrier(geom, ctx);
    if !is_leader {
        let (r, o, _) = entry_region(wait_board(geom, ctx, seq, SLOT_RESULT));
        dst.0.copy_from(dst.1, &r, o, len);
    }
    local_barrier(geom, ctx);
    if is_leader {
        group.board.clear_seq(seq);
    }
}

/// Software allreduce body: binomial reduce to relative rank 0, then
/// binomial broadcast of the result.
#[allow(clippy::too_many_arguments)]
fn sw_allreduce(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    sw_reduce_bcast(geom, ctx, seq, None, src, dst, count, op, dtype)
}

/// Software reduce body: binomial reduce to `root_rank`.
#[allow(clippy::too_many_arguments)]
fn sw_reduce(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    sw_reduce_bcast(geom, ctx, seq, Some(root_rank), src, dst, count, op, dtype)
}

/// Software fallback: binomial reduce to a root, then (for allreduce)
/// binomial broadcast of the result. `root_rank: None` means allreduce.
#[allow(clippy::too_many_arguments)]
fn sw_reduce_bcast(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: Option<usize>,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let root = root_rank.unwrap_or(0);
    let relative = (rank + n - root) % n;
    let len = count * ELEM;

    // Binomial reduce toward relative rank 0.
    let mut acc = vec![0u8; len];
    src.0.read(src.1, &mut acc);
    let mut mask = 1usize;
    let mut level = 0u64;
    let mut sent = false;
    while mask < n {
        let tag = (seq << 8) | (1 << 4) | level;
        if relative & mask != 0 {
            let parent = (relative - mask + root) % n;
            let done = Counter::new();
            done.add_expected(len.max(1) as u64);
            let send_region = MemRegion::from_vec(acc.clone());
            geom.send_sw(
                ctx,
                parent,
                tag,
                PayloadSource::Region { region: send_region, offset: 0, len },
                Some(done.clone()),
            );
            ctx.advance_until(|| done.is_complete());
            sent = true;
            break;
        }
        let partner = relative + mask;
        if partner < n {
            let data = geom.recv_sw(ctx, (partner + root) % n, tag);
            assert_eq!(data.len(), len);
            bgq_collnet::combine(op, dtype, &mut acc, &data);
        }
        mask <<= 1;
        level += 1;
    }

    match root_rank {
        Some(_) => {
            // Reduce: result at the root only.
            if relative == 0 {
                dst.0.write(dst.1, &acc);
            }
            let _ = sent;
        }
        None => {
            // Allreduce: root broadcasts the result.
            if relative == 0 {
                dst.0.write(dst.1, &acc);
            }
            sw_broadcast(geom, ctx, seq, root, dst.0, dst.1, len);
        }
    }
}

/// Segment size of the streaming chain allreduce. Small enough that a
/// long vector pipelines (rank 0 is filling segment `s+1` while the tail
/// of the chain still reduces segment `s`), large enough to amortize the
/// per-message envelope.
pub const STREAM_SEGMENT: usize = 4096;

/// Tag for a streaming-allreduce segment. Streaming owns class nibble 6;
/// the segment index lives *above* the class nibble (bit 8 up) and the
/// sequence number above that, so concurrent segments between the same
/// pair of ranks never collide in the `recv_sw` store — unlike the
/// binomial layout, whose 4-bit level field would wrap at 16 segments.
/// Bit 0 separates the reduce (up) and broadcast (down) directions.
fn stream_tag(seq: u64, seg: usize, down: bool) -> u64 {
    (seq << 32) | ((seg as u64) << 8) | (6 << 4) | u64::from(down)
}

/// Streaming chain allreduce (SHArP-style in-network reduction, done in
/// software): the buffer is cut into [`STREAM_SEGMENT`]-byte segments and
/// each segment flows up the rank chain 0 → 1 → … → n−1, every hop folding
/// its own contribution into the partial (per-hop partial reduction), then
/// back down the chain as the full result. Segments pipeline: hop `r` works
/// on segment `s` while hop `r−1` already forwards segment `s+1`, so the
/// latency of a long vector approaches one traversal plus `n` segment
/// times rather than `n · len`.
#[allow(clippy::too_many_arguments)]
fn sw_stream_allreduce(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    count: usize,
    op: CollOp,
    dtype: DataType,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let len = count * ELEM;
    let nseg = len.div_ceil(STREAM_SEGMENT);
    // One completion counter covers every send this rank issues across both
    // directions; segments stay in flight back-to-back and we drain once.
    let sent = Counter::new();
    let mut expected = 0u64;
    let send_seg = |dst_rank: usize, tag: u64, data: Vec<u8>| {
        let seg_len = data.len();
        let region = MemRegion::from_vec(data);
        geom.send_sw(
            ctx,
            dst_rank,
            tag,
            PayloadSource::Region { region, offset: 0, len: seg_len },
            Some(sent.clone()),
        );
        seg_len as u64
    };

    // Reduce sweep up the chain. Rank n−1 completes each segment and
    // immediately starts it back down, overlapping the two sweeps.
    for seg in 0..nseg {
        let off = seg * STREAM_SEGMENT;
        let seg_len = STREAM_SEGMENT.min(len - off);
        let mut part = vec![0u8; seg_len];
        src.0.read(src.1 + off, &mut part);
        if rank > 0 {
            let upstream = geom.recv_sw(ctx, rank - 1, stream_tag(seq, seg, false));
            assert_eq!(upstream.len(), seg_len, "streaming segment length mismatch");
            bgq_collnet::combine(op, dtype, &mut part, &upstream);
        }
        if rank < n - 1 {
            expected += send_seg(rank + 1, stream_tag(seq, seg, false), part);
        } else {
            dst.0.write(dst.1 + off, &part);
            if n > 1 {
                expected += send_seg(rank - 1, stream_tag(seq, seg, true), part);
            }
        }
    }

    // Broadcast sweep back down: receive the finished segment from the
    // right neighbor, land it, forward left.
    if rank < n - 1 {
        for seg in 0..nseg {
            let off = seg * STREAM_SEGMENT;
            let result = geom.recv_sw(ctx, rank + 1, stream_tag(seq, seg, true));
            dst.0.write(dst.1 + off, &result);
            if rank > 0 {
                expected += send_seg(rank - 1, stream_tag(seq, seg, true), result);
            }
        }
    }

    sent.add_expected(expected);
    ctx.advance_until(|| sent.is_complete());
}

// ---------------------------------------------------------------------------
// Gather / Scatter / Allgather / Alltoall (software algorithms)
// ---------------------------------------------------------------------------
//
// The paper lists hardware acceleration of these as future work ("we would
// like to explore performance optimizations for other collective operations
// such as all-to-all, scatter and gather"); PAMI ships software algorithms
// over point-to-point, which is what these are: binomial gather/scatter, a
// ring allgather, and pairwise-exchange alltoall, all flat over the
// geometry's ranks.

/// Gather `blk` bytes from every member's (`src`) into rank `root`'s `dst`
/// (laid out by rank). Binomial tree: log₂(n) rounds, each parent
/// accumulating its subtree's contiguous relative block.
pub fn gather(
    geom: &Geometry,
    ctx: &Context,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    geom.machine().coll_probes().gathers.incr();
    let seq = geom.next_seq(ctx.task());
    if geom.size() == 1 {
        dst.0.copy_from(dst.1, src.0, src.1, blk);
        return;
    }
    match lookup(geom, CollKind::Gather, None).exec() {
        AlgExec::Block(f) => f(geom, ctx, seq, root_rank, src, dst, blk),
        _ => unreachable!("gather entry with a non-block body"),
    }
}

fn sw_gather(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let relative = (rank + n - root_rank) % n;

    // Accumulate my subtree's blocks (relative block x at offset x·blk).
    let mut subtree = 1usize;
    {
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                break;
            }
            if relative + mask < n {
                subtree += (n - relative - mask).min(mask);
            }
            mask <<= 1;
        }
    }
    let accum = MemRegion::zeroed(subtree * blk);
    accum.copy_from(0, src.0, src.1, blk);

    let mut mask = 1usize;
    let mut level = 0u64;
    loop {
        let tag = (seq << 8) | (2 << 4) | level;
        if relative & mask != 0 {
            // Send my accumulated subtree to my parent and stop.
            let parent = (relative - mask + root_rank) % n;
            let done = Counter::new();
            done.add_expected((subtree * blk).max(1) as u64);
            geom.send_sw(
                ctx,
                parent,
                tag,
                PayloadSource::Region { region: accum.clone(), offset: 0, len: subtree * blk },
                Some(done.clone()),
            );
            ctx.advance_until(|| done.is_complete());
            break;
        }
        if mask >= n {
            break;
        }
        let child = relative + mask;
        if child < n {
            let child_blocks = (n - child).min(mask);
            let data = geom.recv_sw(ctx, (child + root_rank) % n, tag);
            assert_eq!(data.len(), child_blocks * blk, "gather subtree size");
            accum.write((child - relative) * blk, &data);
        }
        mask <<= 1;
        level += 1;
    }

    if relative == 0 {
        // Unrotate: relative block x belongs to absolute rank (x+root)%n.
        for x in 0..n {
            let abs = (x + root_rank) % n;
            let mut tmp = vec![0u8; blk];
            accum.read(x * blk, &mut tmp);
            dst.0.write(dst.1 + abs * blk, &tmp);
        }
    }
}

/// Scatter `blk` bytes per rank from `root`'s `src` (laid out by rank) into
/// every member's `dst`. Binomial: the inverse of [`gather`].
pub fn scatter(
    geom: &Geometry,
    ctx: &Context,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    geom.machine().coll_probes().scatters.incr();
    let seq = geom.next_seq(ctx.task());
    if geom.size() == 1 {
        dst.0.copy_from(dst.1, src.0, src.1, blk);
        return;
    }
    match lookup(geom, CollKind::Scatter, None).exec() {
        AlgExec::Block(f) => f(geom, ctx, seq, root_rank, src, dst, blk),
        _ => unreachable!("scatter entry with a non-block body"),
    }
}

fn sw_scatter(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let relative = (rank + n - root_rank) % n;

    // Receive my subtree's blocks from my parent (root starts with all,
    // rotated so relative block x is at x·blk).
    #[allow(clippy::needless_late_init)] // else-branch assigns inside a loop and returns
    let accum;
    let mut recv_mask = n.next_power_of_two();
    if relative == 0 {
        let buf = MemRegion::zeroed(n * blk);
        for x in 0..n {
            let abs = (x + root_rank) % n;
            let mut tmp = vec![0u8; blk];
            src.0.read(src.1 + abs * blk, &mut tmp);
            buf.write(x * blk, &tmp);
        }
        accum = buf;
    } else {
        let mut mask = 1usize;
        let mut level = 0u64;
        while mask < n {
            if relative & mask != 0 {
                let parent = (relative - mask + root_rank) % n;
                let tag = (seq << 8) | (3 << 4) | level;
                let data = geom.recv_sw(ctx, parent, tag);
                let buf = MemRegion::from_vec(data);
                recv_mask = mask;
                accum = buf;
                // Forward sub-blocks to my children below.
                scatter_forward(geom, ctx, seq, root_rank, relative, recv_mask, &accum, blk);
                dst.0.copy_from(dst.1, &accum, 0, blk);
                return;
            }
            mask <<= 1;
            level += 1;
        }
        unreachable!("non-root rank has a set bit");
    }
    scatter_forward(geom, ctx, seq, root_rank, relative, recv_mask, &accum, blk);
    dst.0.copy_from(dst.1, &accum, 0, blk);
}

/// Send each child its slice of `accum` (which holds relative blocks
/// [relative, relative + extent)).
#[allow(clippy::too_many_arguments)] // mirrors the recursive scatter state
fn scatter_forward(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    root_rank: usize,
    relative: usize,
    top_mask: usize,
    accum: &MemRegion,
    blk: usize,
) {
    let n = geom.size();
    let done = Counter::new();
    let mut mask = top_mask >> 1;
    while mask > 0 {
        let child = relative + mask;
        if child < n {
            let child_blocks = (n - child).min(mask);
            let level = mask.trailing_zeros() as u64;
            let tag = (seq << 8) | (3 << 4) | level;
            done.add_expected((child_blocks * blk).max(1) as u64);
            geom.send_sw(
                ctx,
                (child + root_rank) % n,
                tag,
                PayloadSource::Region {
                    region: accum.clone(),
                    offset: (child - relative) * blk,
                    len: child_blocks * blk,
                },
                Some(done.clone()),
            );
        }
        mask >>= 1;
    }
    ctx.advance_until(|| done.is_complete());
}

/// Allgather: every member contributes `blk` bytes and receives all `n`
/// blocks, rank-ordered, via the ring algorithm (n−1 steps, each member
/// forwarding the newest block to its right neighbor).
pub fn allgather(
    geom: &Geometry,
    ctx: &Context,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    geom.machine().coll_probes().allgathers.incr();
    let seq = geom.next_seq(ctx.task());
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    dst.0.copy_from(dst.1 + rank * blk, src.0, src.1, blk);
    if geom.size() == 1 {
        return;
    }
    match lookup(geom, CollKind::Allgather, None).exec() {
        AlgExec::Exchange(f) => f(geom, ctx, seq, src, dst, blk),
        _ => unreachable!("allgather entry with a non-exchange body"),
    }
}

/// Ring allgather body (the caller has already deposited its own block).
fn sw_allgather(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    _src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    for step in 0..n - 1 {
        let tag = (seq << 8) | (4 << 4) | step as u64;
        // Forward the block that originated `step` ranks to my left.
        let outgoing = (rank + n - step) % n;
        let done = Counter::new();
        done.add_expected(blk.max(1) as u64);
        geom.send_sw(
            ctx,
            right,
            tag,
            PayloadSource::Region { region: dst.0.clone(), offset: dst.1 + outgoing * blk, len: blk },
            Some(done.clone()),
        );
        let data = geom.recv_sw(ctx, left, tag);
        assert_eq!(data.len(), blk);
        let incoming = (rank + n - step - 1) % n;
        dst.0.write(dst.1 + incoming * blk, &data);
        ctx.advance_until(|| done.is_complete());
    }
}

/// Alltoall: member `i`'s block `j` (at `j·blk` in `src`) lands at block
/// `i` of member `j`'s `dst`. Pairwise exchange over n−1 steps (plus the
/// local block copy) — the pattern whose aggregate bandwidth the 5D torus
/// bisection accelerates (the paper's FFT motivation).
pub fn alltoall(
    geom: &Geometry,
    ctx: &Context,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    geom.machine().coll_probes().alltoalls.incr();
    let seq = geom.next_seq(ctx.task());
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    dst.0.copy_from(dst.1 + rank * blk, src.0, src.1 + rank * blk, blk);
    if geom.size() == 1 {
        return;
    }
    match lookup(geom, CollKind::Alltoall, None).exec() {
        AlgExec::Exchange(f) => f(geom, ctx, seq, src, dst, blk),
        _ => unreachable!("alltoall entry with a non-exchange body"),
    }
}

/// Pairwise-exchange alltoall body (the caller has already copied the local
/// block).
fn sw_alltoall(
    geom: &Geometry,
    ctx: &Context,
    seq: u64,
    src: (&MemRegion, usize),
    dst: (&MemRegion, usize),
    blk: usize,
) {
    let n = geom.size();
    let rank = geom.rank_of(ctx.task()).expect("caller is a member");
    for step in 1..n {
        let to = (rank + step) % n;
        let from = (rank + n - step) % n;
        let tag = (seq << 8) | (5 << 4) | step as u64;
        let done = Counter::new();
        done.add_expected(blk.max(1) as u64);
        geom.send_sw(
            ctx,
            to,
            tag,
            PayloadSource::Region { region: src.0.clone(), offset: src.1 + to * blk, len: blk },
            Some(done.clone()),
        );
        let data = geom.recv_sw(ctx, from, tag);
        assert_eq!(data.len(), blk);
        dst.0.write(dst.1 + from * blk, &data);
        ctx.advance_until(|| done.is_complete());
    }
}
