//! The per-geometry collective algorithm registry — the reproduction of
//! PAMI's *algorithm lists* (`PAMI_Geometry_algorithms_query`).
//!
//! Every collective algorithm the stack knows — the GI/classroute hardware
//! paths, the shared-address intra-node scheme they ride on, the software
//! binomial/ring/pairwise fallbacks, and layered additions like the MPI
//! rectangle broadcast — registers here as one [`AlgEntry`]: a name, an
//! *availability predicate* over a geometry (the logic the old ad-hoc
//! `use_hw` checks encoded), a *cost hint*, and the executable body. The
//! public collective entry points select the cheapest available entry;
//! `*_with` forcing becomes a lookup by name. Adding an algorithm is now a
//! `register` call instead of another `if` in every operation.
//!
//! The registry is machine-wide (one per [`crate::machine::Machine`], like
//! the dispatch tables): availability is evaluated *per geometry* at query
//! and selection time, so one registry serves every communicator.

use std::sync::Arc;

use bgq_collnet::{CollOp, DataType};
use bgq_hw::MemRegion;
use parking_lot::RwLock;

use crate::context::Context;
use crate::geometry::Geometry;

/// The collective operation an algorithm implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    Barrier,
    Broadcast,
    Allreduce,
    Reduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
}

/// Availability predicate: can this algorithm run on this geometry *right
/// now*? (Classroute-backed entries answer with route presence, so
/// `optimize`/`deoptimize` flips them live.)
pub type AvailFn = Arc<dyn Fn(&Geometry) -> bool + Send + Sync>;

/// Executable body of a barrier algorithm. Every exec receives the
/// already-consumed collective sequence number: the public wrappers own
/// sequencing, probes, and trivial-case handling.
pub type BarrierExec = Arc<dyn Fn(&Geometry, &Context, u64) + Send + Sync>;

/// Broadcast body: `(geom, ctx, seq, root_rank, region, offset, len)`.
pub type BroadcastExec =
    Arc<dyn Fn(&Geometry, &Context, u64, usize, &MemRegion, usize, usize) + Send + Sync>;

/// Allreduce body: `(geom, ctx, seq, src, dst, count, op, dtype)`.
pub type AllreduceExec = Arc<
    dyn Fn(&Geometry, &Context, u64, (&MemRegion, usize), (&MemRegion, usize), usize, CollOp, DataType)
        + Send
        + Sync,
>;

/// Reduce body: `(geom, ctx, seq, root_rank, src, dst, count, op, dtype)`.
pub type ReduceExec = Arc<
    dyn Fn(
            &Geometry,
            &Context,
            u64,
            usize,
            (&MemRegion, usize),
            (&MemRegion, usize),
            usize,
            CollOp,
            DataType,
        ) + Send
        + Sync,
>;

/// Rooted block-move body (gather/scatter):
/// `(geom, ctx, seq, root_rank, src, dst, blk)`.
pub type BlockExec = Arc<
    dyn Fn(&Geometry, &Context, u64, usize, (&MemRegion, usize), (&MemRegion, usize), usize)
        + Send
        + Sync,
>;

/// Unrooted exchange body (allgather/alltoall):
/// `(geom, ctx, seq, src, dst, blk)`.
pub type ExchangeExec = Arc<
    dyn Fn(&Geometry, &Context, u64, (&MemRegion, usize), (&MemRegion, usize), usize)
        + Send
        + Sync,
>;

/// The executable body of an entry, one variant per operation signature.
#[derive(Clone)]
pub enum AlgExec {
    Barrier(BarrierExec),
    Broadcast(BroadcastExec),
    Allreduce(AllreduceExec),
    Reduce(ReduceExec),
    /// Gather/scatter (rooted, `blk` bytes per rank).
    Block(BlockExec),
    /// Allgather/alltoall (unrooted, `blk` bytes per rank).
    Exchange(ExchangeExec),
}

/// One registered collective algorithm.
#[derive(Clone)]
pub struct AlgEntry {
    /// Stable name (`"gi-barrier"`, `"hw-collnet-bcast"`, `"rect-bcast"`…).
    pub name: &'static str,
    /// The operation implemented.
    pub kind: CollKind,
    /// Relative cost hint: among available entries the lowest wins
    /// auto-selection. Hardware paths ship at 10–20, software fallbacks at
    /// 100; layered specialists that should only run when forced register
    /// higher.
    pub cost: u32,
    available: AvailFn,
    exec: AlgExec,
}

impl AlgEntry {
    /// Build an entry (layers above PAMI use this to register their own
    /// algorithms, e.g. MPI's rectangle broadcast).
    pub fn new(name: &'static str, kind: CollKind, cost: u32, available: AvailFn, exec: AlgExec) -> AlgEntry {
        AlgEntry { name, kind, cost, available, exec }
    }

    /// Whether the algorithm can run on `geom` right now.
    pub fn available(&self, geom: &Geometry) -> bool {
        (self.available)(geom)
    }

    /// The executable body.
    pub fn exec(&self) -> &AlgExec {
        &self.exec
    }
}

/// One row of an algorithms query — what `PAMI_Geometry_algorithms_query`
/// returns per geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgInfo {
    pub name: &'static str,
    pub kind: CollKind,
    pub cost: u32,
    /// Whether the entry's availability predicate holds for the queried
    /// geometry.
    pub available: bool,
}

/// The machine-wide registry of collective algorithms.
pub struct CollRegistry {
    entries: RwLock<Vec<Arc<AlgEntry>>>,
}

impl CollRegistry {
    /// An empty registry.
    pub fn new() -> CollRegistry {
        CollRegistry { entries: RwLock::new(Vec::new()) }
    }

    /// A registry pre-populated with every algorithm the core crate ships.
    pub(crate) fn with_builtins() -> CollRegistry {
        let reg = CollRegistry::new();
        super::register_builtins(&reg);
        reg
    }

    /// Register an entry. Idempotent by `(kind, name)`: re-registering an
    /// existing pair is a no-op (layers call this once per context/task).
    /// Returns whether the entry was inserted.
    pub fn register(&self, entry: AlgEntry) -> bool {
        let mut entries = self.entries.write();
        if entries.iter().any(|e| e.kind == entry.kind && e.name == entry.name) {
            return false;
        }
        entries.push(Arc::new(entry));
        true
    }

    /// Every registered entry for `kind`, in registration order.
    pub fn entries(&self, kind: CollKind) -> Vec<Arc<AlgEntry>> {
        self.entries.read().iter().filter(|e| e.kind == kind).cloned().collect()
    }

    /// The algorithms-query: every entry, with its availability evaluated
    /// against `geom` (the `PAMI_Geometry_algorithms_query` analogue).
    pub fn query(&self, geom: &Geometry) -> Vec<AlgInfo> {
        self.entries
            .read()
            .iter()
            .map(|e| AlgInfo {
                name: e.name,
                kind: e.kind,
                cost: e.cost,
                available: e.available(geom),
            })
            .collect()
    }

    /// Auto-selection: the lowest-cost entry of `kind` available on `geom`
    /// (ties broken by registration order).
    ///
    /// # Panics
    /// If no entry of `kind` is available — every operation ships a
    /// software fallback whose predicate is `true`, so this means a
    /// misconfigured registry.
    pub fn select(&self, kind: CollKind, geom: &Geometry) -> Arc<AlgEntry> {
        self.entries
            .read()
            .iter()
            .filter(|e| e.kind == kind && e.available(geom))
            .min_by_key(|e| e.cost)
            .cloned()
            .unwrap_or_else(|| {
                panic!("no available {kind:?} algorithm registered for geometry {}", geom.id())
            })
    }

    /// Forced lookup by name (the `*_with` path). Availability is *not*
    /// checked here — forcing an unavailable algorithm panics inside the
    /// algorithm with its own message, exactly as the pre-registry code
    /// did; callers that want to fall back check
    /// [`AlgEntry::available`] first.
    ///
    /// # Panics
    /// If no entry of `kind` is registered under `name`.
    pub fn forced(&self, kind: CollKind, name: &str) -> Arc<AlgEntry> {
        self.entries
            .read()
            .iter()
            .find(|e| e.kind == kind && e.name == name)
            .cloned()
            .unwrap_or_else(|| panic!("no {kind:?} algorithm registered under {name:?}"))
    }
}

impl Default for CollRegistry {
    fn default() -> Self {
        Self::new()
    }
}
