//! Protocol plumbing shared by the MU and shared-memory devices: message
//! envelopes, the shared-memory mailbox, and the send argument bundle.
//!
//! Wire format note: MU packets carry a PAMI *envelope* in their metadata —
//! the source task (packets only know the source node, and with multiple
//! processes per node the task must travel with the message) followed by
//! the user's dispatch metadata. Rendezvous RTS messages additionally carry
//! the real dispatch id, total length, and the rendezvous key under an
//! internal dispatch id.

use bgq_hw::{Counter, GlobalAddress, WakeupRegion, WorkQueue};
use bgq_mu::PayloadSource;
use bgq_upc::Stamp;
use bytes::{BufMut, Bytes, BytesMut};

use crate::endpoint::Endpoint;

/// Internal dispatch id: rendezvous request-to-send.
pub(crate) const DISPATCH_RZV_RTS: u16 = 0xFF00;

/// Internal dispatch id: persistent-channel buffer offer (each side
/// advertises its pre-registered receive window once; all subsequent
/// traffic is fixed-descriptor direct puts with no per-message protocol).
pub(crate) const DISPATCH_CHAN_REQ: u16 = 0xFF01;

/// Internal dispatch id: an aggregated frame — one packet carrying a train
/// of coalesced small active messages ([`crate::aggr`]); the receive path
/// unbatches it and dispatches each record through the handler memo.
pub(crate) const DISPATCH_AGGR: u16 = 0xFF02;

/// First user-forbidden dispatch id; user dispatch ids must be below this.
pub const DISPATCH_INTERNAL_BASE: u16 = 0xFF00;

/// Arguments to [`crate::context::Context::send`].
pub struct SendArgs {
    /// Destination endpoint.
    pub dest: Endpoint,
    /// Active-message dispatch id at the destination (< 0xFF00).
    pub dispatch: u16,
    /// Dispatch metadata delivered with the message header.
    pub metadata: Vec<u8>,
    /// Payload.
    pub payload: PayloadSource,
    /// Local-completion counter: decremented (by the payload's completion
    /// credit) once the payload bytes have left the source buffer.
    pub local_done: Option<Counter>,
}

/// A typed slot in local registered memory — where a get's bytes or an
/// rmw's prior value land. Replaces the bare `(MemRegion, usize)` tuples
/// the one-sided API used to take.
#[derive(Clone)]
pub struct MemSlot {
    /// Local region.
    pub region: bgq_hw::MemRegion,
    /// Byte offset within the region.
    pub offset: usize,
}

impl MemSlot {
    /// `region` at byte offset 0.
    pub fn base(region: bgq_hw::MemRegion) -> Self {
        MemSlot { region, offset: 0 }
    }

    /// `region` at `offset`.
    pub fn at(region: bgq_hw::MemRegion, offset: usize) -> Self {
        MemSlot { region, offset }
    }
}

/// Arguments to [`crate::context::Context::put`] — an RDMA write into a
/// remote window. Mirrors [`SendArgs`].
pub struct PutArgs {
    /// Destination task.
    pub dest_task: u32,
    /// Target location: a registered window key plus byte offset.
    pub window: crate::machine::WindowRef,
    /// Payload to write.
    pub payload: PayloadSource,
    /// Local-completion counter: decremented by the byte count once the
    /// payload has been placed (the window's own reception counter, if
    /// armed, signals the remote side).
    pub local_done: Option<Counter>,
}

/// Arguments to [`crate::context::Context::get`] — an RDMA read out of a
/// remote window.
pub struct GetArgs {
    /// Task whose window is read.
    pub dest_task: u32,
    /// Source location in the remote window.
    pub window: crate::machine::WindowRef,
    /// Local destination slot the bytes land in.
    pub dst: MemSlot,
    /// Bytes to fetch.
    pub len: usize,
    /// Completion counter: decremented by the byte count once the data has
    /// landed locally.
    pub done: Option<Counter>,
}

/// Arguments to [`crate::context::Context::rmw`] — a remote atomic
/// (fetch-add / compare-swap / min / max) against an 8-byte little-endian
/// word in a remote window, returning the prior value.
pub struct RmwArgs {
    /// Task whose window is updated.
    pub dest_task: u32,
    /// The word's location in the remote window.
    pub window: crate::machine::WindowRef,
    /// The atomic operation.
    pub op: bgq_mu::RmwOp,
    /// Operand (addend / swap value / min-max candidate).
    pub operand: u64,
    /// Comparand for [`bgq_mu::RmwOp::CompareSwap`]; ignored otherwise.
    pub compare: u64,
    /// Optional local slot the prior value is written to (8 bytes LE).
    pub result: Option<MemSlot>,
    /// Completion counter: decremented by
    /// [`bgq_mu::Descriptor::ZERO_LEN_CREDIT`] once the atomic has applied
    /// and the prior value (if requested) is in place.
    pub done: Option<Counter>,
}

impl RmwArgs {
    /// A fetch-add of `operand` at `window` on `dest_task`; add result
    /// slot / completion with the struct-update syntax.
    pub fn fetch_add(dest_task: u32, window: crate::machine::WindowRef, operand: u64) -> Self {
        RmwArgs {
            dest_task,
            window,
            op: bgq_mu::RmwOp::FetchAdd,
            operand,
            compare: 0,
            result: None,
            done: None,
        }
    }
}

/// How a shared-memory message carries its payload.
pub enum ShmPayload {
    /// Short path: payload copied into the message (one copy in, one copy
    /// out — the L2-cache bounce the paper's intra-node eager path takes).
    Inline(Bytes),
    /// Large path: a *global virtual address* of the source buffer,
    /// published in the node's CNK translation table; the receiver
    /// resolves it and copies directly from the peer's memory (exactly one
    /// copy). `done` is the sender's completion counter, decremented by
    /// the receiver after the copy.
    GlobalVa {
        /// The published source address.
        addr: GlobalAddress,
        /// Payload length.
        len: usize,
        /// Sender completion, fired by the receiver.
        done: Option<Counter>,
    },
}

impl ShmPayload {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            ShmPayload::Inline(b) => b.len(),
            ShmPayload::GlobalVa { len, .. } => *len,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message in a shared-memory mailbox.
pub struct ShmMsg {
    /// Source endpoint.
    pub src: Endpoint,
    /// Dispatch id.
    pub dispatch: u16,
    /// User metadata (no envelope — shm messages carry the task natively).
    pub metadata: Bytes,
    /// Send-side timestamp, fed back to the sender's protocol policy on
    /// delivery. Zero-sized with telemetry off.
    pub stamp: Stamp,
    /// Payload.
    pub payload: ShmPayload,
}

/// A context's shared-memory reception queue: the lockless structure "each
/// process owns only one queue to which others atomically write into"
/// (paper section III.F).
pub struct ShmMailbox {
    /// The queue (multi-producer: every peer on the node; single consumer:
    /// the owning context).
    pub queue: WorkQueue<ShmMsg>,
    /// Touched on delivery; the owning context's commthread parks on it.
    pub wakeup: WakeupRegion,
}

impl ShmMailbox {
    pub(crate) fn new(capacity: usize, wakeup: WakeupRegion) -> Self {
        ShmMailbox { queue: WorkQueue::with_capacity(capacity), wakeup }
    }

    /// Deliver a message (peer side): enqueue and wake.
    pub fn deliver(&self, msg: ShmMsg) {
        self.queue.push(msg);
        self.wakeup.touch();
    }
}

/// Envelope/RTS wire helpers.
pub(crate) mod wire {
    use super::*;

    /// Prepend the source task and the send-side timestamp to user
    /// metadata. The stamp lets the receiver measure delivery latency on
    /// the shared process clock and feed it back to the sender's protocol
    /// policy; with telemetry off it serializes as zero.
    pub fn envelope(src_task: u32, stamp: Stamp, user_metadata: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + user_metadata.len());
        buf.put_u32_le(src_task);
        buf.put_u64_le(stamp.ns());
        buf.put_slice(user_metadata);
        buf.freeze()
    }

    /// Split an envelope back into (source task, send stamp, user metadata).
    pub fn open_envelope(metadata: &Bytes) -> (u32, Stamp, Bytes) {
        assert!(metadata.len() >= 12, "malformed PAMI envelope");
        let task = u32::from_le_bytes(metadata[..4].try_into().unwrap());
        let ns = u64::from_le_bytes(metadata[4..12].try_into().unwrap());
        (task, Stamp::from_ns(ns), metadata.slice(12..))
    }

    /// RTS body: real dispatch, payload length, rendezvous key, then the
    /// user metadata.
    pub fn rts(dispatch: u16, len: u64, key: u64, user_metadata: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(18 + user_metadata.len());
        buf.extend_from_slice(&dispatch.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(user_metadata);
        buf
    }

    /// Parse an RTS body.
    pub fn open_rts(body: &Bytes) -> (u16, u64, u64, Bytes) {
        assert!(body.len() >= 18, "malformed rendezvous RTS");
        let dispatch = u16::from_le_bytes(body[..2].try_into().unwrap());
        let len = u64::from_le_bytes(body[2..10].try_into().unwrap());
        let key = u64::from_le_bytes(body[10..18].try_into().unwrap());
        (dispatch, len, key, body.slice(18..))
    }

    /// Persistent-channel offer body: pairing ordinal, slot size, and the
    /// offering side's receive-window key.
    pub fn chan_req(ordinal: u64, size: u64, mem_key: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(&ordinal.to_le_bytes());
        buf.extend_from_slice(&size.to_le_bytes());
        buf.extend_from_slice(&mem_key.to_le_bytes());
        buf
    }

    /// Parse a persistent-channel offer body into (ordinal, size, mem_key).
    pub fn open_chan_req(body: &Bytes) -> (u64, u64, u64) {
        assert!(body.len() >= 24, "malformed persistent-channel offer");
        let ordinal = u64::from_le_bytes(body[..8].try_into().unwrap());
        let size = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let mem_key = u64::from_le_bytes(body[16..24].try_into().unwrap());
        (ordinal, size, mem_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let env = wire::envelope(0xDEAD, Stamp::from_ns(987_654), b"meta");
        let (task, stamp, meta) = wire::open_envelope(&env);
        assert_eq!(task, 0xDEAD);
        assert_eq!(&meta[..], b"meta");
        // With telemetry on the stamp survives the wire; off, it is zero.
        if bgq_upc::ENABLED {
            assert_eq!(stamp.ns(), 987_654);
        } else {
            assert_eq!(stamp.ns(), 0);
        }
    }

    #[test]
    fn envelope_with_empty_metadata() {
        let env = wire::envelope(7, Stamp::now(), b"");
        let (task, _stamp, meta) = wire::open_envelope(&env);
        assert_eq!(task, 7);
        assert!(meta.is_empty());
    }

    #[test]
    fn rts_round_trips() {
        let body = Bytes::from(wire::rts(42, 1 << 33, 0xABCD, b"user"));
        let (dispatch, len, key, meta) = wire::open_rts(&body);
        assert_eq!(dispatch, 42);
        assert_eq!(len, 1 << 33);
        assert_eq!(key, 0xABCD);
        assert_eq!(&meta[..], b"user");
    }

    #[test]
    fn chan_req_round_trips() {
        let body = Bytes::from(wire::chan_req(3, 4096, 0x55AA));
        assert_eq!(wire::open_chan_req(&body), (3, 4096, 0x55AA));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn truncated_envelope_panics() {
        wire::open_envelope(&Bytes::from_static(b"abcdefgh"));
    }

    #[test]
    fn mailbox_delivery_touches_wakeup() {
        let unit = bgq_hw::WakeupUnit::new();
        let region = unit.region();
        let mb = ShmMailbox::new(8, region.clone());
        mb.deliver(ShmMsg {
            src: Endpoint::of_task(3),
            dispatch: 1,
            metadata: Bytes::new(),
            stamp: Stamp::now(),
            payload: ShmPayload::Inline(Bytes::from_static(b"hi")),
        });
        assert_eq!(region.epoch(), 1);
        let msg = mb.queue.pop().expect("message queued");
        assert_eq!(msg.src.task, 3);
        assert_eq!(msg.payload.len(), 2);
    }
}
