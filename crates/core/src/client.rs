//! PAMI clients — independent network instances.
//!
//! "A client can be thought of as an independent network interface with its
//! own set of network and communication resources" (paper section III.A).
//! Each programming-model runtime creates its own client; clients of the
//! same name across tasks form one network instance, and different names
//! are fully isolated — separate FIFOs, separate dispatch tables, separate
//! endpoints — which is what lets MPI and (say) a UPC runtime coexist in
//! one job.

use std::sync::Arc;

use crate::context::Context;
use crate::endpoint::Endpoint;
use crate::machine::Machine;

/// One task's handle to a named network instance, owning that task's
/// contexts.
pub struct Client {
    machine: Arc<Machine>,
    id: u16,
    name: String,
    task: u32,
    contexts: Vec<Arc<Context>>,
}

impl Client {
    /// Create (this task's part of) the client `name` with `num_contexts`
    /// communication contexts.
    ///
    /// Every task intending to communicate over this client must create it
    /// — with the same context count — before any task sends (the endpoint
    /// table is filled at creation).
    ///
    /// # Panics
    /// If the node has too few MU FIFOs left for the requested contexts.
    pub fn create(
        machine: &Arc<Machine>,
        task: u32,
        name: &str,
        num_contexts: usize,
    ) -> Arc<Client> {
        assert!(num_contexts >= 1, "a client needs at least one context");
        let id = machine.client_id(name);
        let contexts = (0..num_contexts as u16)
            .map(|offset| Context::create(machine, id, task, offset))
            .collect();
        Arc::new(Client {
            machine: Arc::clone(machine),
            id,
            name: name.to_string(),
            task,
            contexts,
        })
    }

    /// The machine this client runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Client name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning task.
    pub fn task(&self) -> u32 {
        self.task
    }

    /// Numeric client id (shared by same-named clients on all tasks).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Number of contexts.
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Context by offset.
    pub fn context(&self, offset: usize) -> &Arc<Context> {
        &self.contexts[offset]
    }

    /// All contexts.
    pub fn contexts(&self) -> &[Arc<Context>] {
        &self.contexts
    }

    /// This task's endpoint for context `offset`.
    pub fn endpoint(&self, offset: u16) -> Endpoint {
        Endpoint { task: self.task, context: offset }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_creates_contexts_with_distinct_endpoints() {
        let machine = Machine::with_nodes(2).build();
        let c0 = Client::create(&machine, 0, "test", 3);
        let c1 = Client::create(&machine, 1, "test", 3);
        assert_eq!(c0.id(), c1.id(), "same name, same instance");
        assert_eq!(c0.num_contexts(), 3);
        assert_ne!(c0.endpoint(0), c0.endpoint(1));
        assert_eq!(c0.context(2).offset(), 2);
    }

    #[test]
    fn different_names_are_isolated_instances() {
        let machine = Machine::with_nodes(1).build();
        let mpi = Client::create(&machine, 0, "MPI", 1);
        let upc = Client::create(&machine, 0, "UPC", 1);
        assert_ne!(mpi.id(), upc.id());
    }

    #[test]
    fn contexts_consume_node_fifo_budget() {
        let machine = Machine::with_nodes(1).build();
        let _c = Client::create(&machine, 0, "greedy", 8);
        // 8 contexts × 1 rec fifo: the node must have handed out 8.
        let stats_remaining = machine
            .fabric()
            .alloc_rec_fifos(0, (bgq_mu::REC_FIFOS_PER_NODE - 8) as u16);
        assert!(stats_remaining.is_some(), "exactly 8 consumed so far");
        assert!(machine.fabric().alloc_rec_fifos(0, 1).is_none());
    }
}
