//! Persistent channels — pre-negotiated buffer pairs with zero-matching,
//! fixed-descriptor message passing.
//!
//! The paper's protocol ladder pays a per-message software cost even on
//! its fastest rungs: a protocol decision, an envelope build, a dispatch
//! lookup at the receiver. Regular communication patterns (halo
//! exchanges, pipelined stencils) send the *same size to the same peer
//! every iteration*, so all of that work can be hoisted out of the loop.
//! A [`PersistentChannel`] does exactly that:
//!
//! 1. **Handshake (once)** — each side registers a double-buffered
//!    receive window and advertises it to the peer over the existing
//!    internal-dispatch lane ([`crate::proto::DISPATCH_CHAN_REQ`]).
//!    Channels pair in per-peer creation order: the n-th channel this
//!    context opens to a peer binds to the n-th the peer opens back.
//! 2. **Steady state (every message)** — [`PersistentChannel::post`] is a
//!    slot write plus the injection of a *pre-built* direct-put
//!    descriptor: no protocol selection, no matching, no completion
//!    allocation, no metadata. [`PersistentChannel::wait`] arms the
//!    receive counter and copies the slot out once the put lands.
//!
//! The channel is double-buffered (two slots, used alternately), so a
//! peer may run one full step ahead without overwriting data the local
//! side has not consumed yet. The usage contract is the classic
//! persistent-halo loop: each side alternates `post(step)` / `wait(step)`
//! — a side may post step *i+1* before waiting step *i*, but must wait
//! step *i* before posting step *i+2* (the arrival of the peer's message
//! *i+1* implies the peer consumed our message *i*, freeing its slot).
//!
//! Failure behaves like every other transfer: a dead link fails the
//! channel's counters with a typed [`bgq_hw::DeliveryFault`], `post` /
//! `wait` surface it as `Err`, and [`PersistentChannel::renegotiate`]
//! rebuilds the channel (fresh windows, fresh counters, fresh handshake)
//! once the fabric heals — both sides must renegotiate so pairing
//! ordinals stay matched.

use std::sync::Arc;

use bgq_hw::{Counter, MemRegion};
use bgq_mu::{Descriptor, PayloadSource, XferKind};

use crate::context::Context;
use crate::endpoint::Endpoint;
use crate::error::{PamiError, PamiResult};
use crate::machine::MemKey;
use crate::proto::wire;

/// A buffer offer received from a peer (the body of a
/// [`crate::proto::DISPATCH_CHAN_REQ`] message): the peer's slot size and
/// its registered receive-window key.
#[derive(Debug, Clone, Copy)]
pub struct ChanOffer {
    /// Peer's slot size in bytes.
    pub size: u64,
    /// Peer's receive-window key.
    pub mem_key: MemKey,
}

/// The peer-dependent half of a channel, built lazily once the peer's
/// offer arrives.
struct Bound {
    /// Pre-built direct-put descriptors, one per slot. `post` clones one
    /// and injects it — the entire per-message protocol.
    slots: [Descriptor; 2],
    /// Local staging buffer the descriptors' payloads point into.
    send_region: MemRegion,
}

/// A persistent, fixed-size, double-buffered message channel to one peer
/// endpoint. Created with [`Context::channel`]; see the module docs for
/// the pairing and flow-control contract.
pub struct PersistentChannel {
    ctx: Arc<Context>,
    /// The peer as the application named it — the stable identity the
    /// failover generation is tracked against.
    origin: Endpoint,
    /// The live peer: `origin`, or its standby once machine-level endpoint
    /// failover fired and [`Self::renegotiate`] re-targeted the channel.
    peer: Endpoint,
    /// [`crate::machine::Machine::failover_generation`] of `origin.task`
    /// when the channel last (re)negotiated; a mismatch at `renegotiate`
    /// means the peer moved and the channel must follow.
    peer_gen: u64,
    /// Slot size: every message on the channel is exactly this long.
    size: usize,
    /// Pairing ordinal (n-th channel from this context to `peer`).
    ordinal: u64,
    /// Local receive buffer (2 slots) the peer's puts land in.
    recv_region: MemRegion,
    /// Reception counter: armed by `wait`, credited by the peer's puts.
    recv_counter: Counter,
    /// Window key for `recv_region`, advertised to the peer.
    recv_key: MemKey,
    /// Injection counter shared by every `post`: credited when payload
    /// bytes leave `send_region`, failed (typed) when the channel dies.
    send_counter: Counter,
    /// Peer half; `None` until the peer's offer is claimed.
    bound: Option<Bound>,
    /// Next step to post / wait (independent cursors).
    post_step: u64,
    wait_step: u64,
}

impl PersistentChannel {
    /// Register the local receive window and send the offer. Returns
    /// without waiting for the peer: binding completes lazily on first
    /// `post`/`wait`, so a ring of tasks can all open channels before any
    /// of them advances.
    pub(crate) fn create(
        ctx: &Arc<Context>,
        peer: Endpoint,
        size: usize,
    ) -> PamiResult<PersistentChannel> {
        if size == 0 {
            return Err(PamiError::Invalid("persistent channel slot size must be non-zero"));
        }
        // A peer that already failed over is targeted at its standby from
        // the start; the generation snapshot lets later failovers be
        // detected in `renegotiate`.
        let peer_gen = ctx.machine().failover_generation(peer.task);
        let live = Endpoint { task: ctx.machine().resolve_task(peer.task), ..peer };
        let ordinal = ctx.next_chan_ordinal(live);
        let recv_region = MemRegion::zeroed(2 * size);
        let recv_counter = Counter::new();
        let recv_key =
            ctx.machine().create_window(recv_region.clone(), Some(recv_counter.clone()));
        ctx.send_chan_offer(live, wire::chan_req(ordinal, size as u64, recv_key.0))?;
        Ok(PersistentChannel {
            ctx: Arc::clone(ctx),
            origin: peer,
            peer: live,
            peer_gen,
            size,
            ordinal,
            recv_region,
            recv_counter,
            recv_key,
            send_counter: Counter::new(),
            bound: None,
            post_step: 0,
            wait_step: 0,
        })
    }

    /// The live peer endpoint: the one named at creation, or its standby
    /// once endpoint failover re-targeted the channel.
    pub fn peer(&self) -> Endpoint {
        self.peer
    }

    /// The channel's fixed message size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Complete the handshake if it has not completed yet: claim the
    /// peer's offer (advancing the context until it arrives) and pre-build
    /// the two per-slot descriptors.
    fn ensure_bound(&mut self) -> PamiResult<()> {
        if self.bound.is_some() {
            return Ok(());
        }
        let offer = loop {
            if let Some(offer) = self.ctx.take_chan_offer(self.peer, self.ordinal) {
                break offer;
            }
            if self.ctx.advance() == 0 {
                std::thread::yield_now();
            }
        };
        if offer.size != self.size as u64 {
            return Err(PamiError::Invalid("persistent channel size mismatch with peer"));
        }
        let window = self
            .ctx
            .machine()
            .window(offer.mem_key)
            .ok_or(PamiError::UnknownWindow(offer.mem_key.0))?;
        let send_region = MemRegion::zeroed(2 * self.size);
        let peer_node = self.ctx.machine().task_node(self.peer.task);
        let slots = [0usize, 1].map(|slot| Descriptor {
            dst_node: peer_node,
            dst_context: self.peer.context,
            src_context: self.ctx.offset(),
            routing: bgq_torus::Routing::Dynamic,
            payload: PayloadSource::Region {
                region: send_region.clone(),
                offset: slot * self.size,
                len: self.size,
            },
            kind: XferKind::DirectPut {
                dst_region: window.region.clone(),
                dst_offset: slot * self.size,
                rec_counter: window.counter.clone(),
            },
            inj_counter: Some(self.send_counter.clone()),
        });
        self.bound = Some(Bound { slots, send_region });
        Ok(())
    }

    /// Surface a channel fault as the typed error it carries.
    fn fault_err(&self) -> Option<PamiError> {
        self.send_counter.fault().map(PamiError::from)
    }

    /// Send one message: copy `data` into the current slot and inject its
    /// pre-built descriptor. `data` must be at most [`Self::size`] bytes
    /// (shorter messages leave the slot tail as the previous step wrote
    /// it). Fails fast — without touching the wire — if the channel has
    /// already faulted.
    pub fn post(&mut self, data: &[u8]) -> PamiResult<()> {
        self.ensure_bound()?;
        if let Some(err) = self.fault_err() {
            return Err(err);
        }
        assert!(
            data.len() <= self.size,
            "persistent channel post of {} bytes exceeds slot size {}",
            data.len(),
            self.size
        );
        let slot = (self.post_step % 2) as usize;
        let bound = self.bound.as_ref().expect("ensure_bound succeeded");
        bound.send_region.write(slot * self.size, data);
        self.send_counter.add_expected(self.size as u64);
        self.ctx
            .machine()
            .fabric()
            .execute_now(self.ctx.node(), bound.slots[slot].clone());
        self.post_step += 1;
        // The put executed synchronously (or died trying): a fault raised
        // by it surfaces here, not on the next call.
        if let Some(err) = self.fault_err() {
            return Err(err);
        }
        Ok(())
    }

    /// Receive one message: advance until the peer's put for this step has
    /// landed, then copy the slot into `out` (`out` may be shorter than
    /// the slot). Returns the channel's typed fault instead of hanging if
    /// the channel dies.
    pub fn wait(&mut self, out: &mut [u8]) -> PamiResult<()> {
        self.ensure_bound()?;
        assert!(
            out.len() <= self.size,
            "persistent channel wait into {} bytes exceeds slot size {}",
            out.len(),
            self.size
        );
        self.recv_counter.add_expected(self.size as u64);
        // The counter wraps: if the peer ran ahead and its put landed
        // before we armed, outstanding is `0 - size` wrapped — reading it
        // as signed makes "already delivered" and "just delivered" the
        // same `<= 0` condition.
        let caught_up = |c: &Counter| (c.outstanding() as i64) <= 0;
        let recv = self.recv_counter.clone();
        let send = self.send_counter.clone();
        self.ctx.advance_until(|| {
            caught_up(&recv) || recv.fault().is_some() || send.fault().is_some()
        });
        if !caught_up(&self.recv_counter) {
            if let Some(fault) = self.recv_counter.fault().or(self.send_counter.fault()) {
                return Err(PamiError::from(fault));
            }
        }
        let slot = (self.wait_step % 2) as usize;
        self.recv_region.read(slot * self.size, out);
        self.wait_step += 1;
        Ok(())
    }

    /// Rebuild a faulted channel once the fabric has healed: revive the
    /// underlying link channel if it is still marked dead, discard the old
    /// windows and counters, and run the handshake again under a fresh
    /// pairing ordinal. Both sides must renegotiate (in the same relative
    /// order) for the new ordinals to pair.
    ///
    /// If machine-level endpoint failover moved the peer since the last
    /// (re)negotiation, the channel follows: the handshake re-runs against
    /// the standby endpoint, whose per-peer ordinal counter starts fresh —
    /// the standby is assumed to be a new endpoint with no prior channel
    /// history toward this context, so creation-order pairing restarts
    /// cleanly on both sides.
    pub fn renegotiate(&mut self) -> PamiResult<()> {
        let machine = self.ctx.machine();
        let gen = machine.failover_generation(self.origin.task);
        if gen != self.peer_gen {
            self.peer_gen = gen;
            self.peer =
                Endpoint { task: machine.resolve_task(self.origin.task), ..self.origin };
        }
        let peer_node = machine.task_node(self.peer.task);
        // Idempotent: false just means the channel was never (or is no
        // longer) marked dead.
        machine.fabric().revive_channel(self.ctx.node(), peer_node);
        machine.fabric().revive_channel(peer_node, self.ctx.node());
        machine.destroy_window(self.recv_key);
        self.ordinal = self.ctx.next_chan_ordinal(self.peer);
        self.recv_region = MemRegion::zeroed(2 * self.size);
        self.recv_counter = Counter::new();
        self.recv_key =
            machine.create_window(self.recv_region.clone(), Some(self.recv_counter.clone()));
        self.send_counter = Counter::new();
        self.bound = None;
        self.post_step = 0;
        self.wait_step = 0;
        self.ctx
            .send_chan_offer(self.peer, wire::chan_req(self.ordinal, self.size as u64, self.recv_key.0))
    }
}

impl Drop for PersistentChannel {
    fn drop(&mut self) {
        self.ctx.machine().destroy_window(self.recv_key);
    }
}
