//! The simulated BG/Q partition a PAMI job runs on.
//!
//! A [`Machine`] bundles every substrate one partition offers its tasks:
//! the MU fabric, per-node wakeup units and CNK global-VA tables, the
//! classroute manager and collective-network engine, the world classroute
//! (COMM_WORLD comes up collective-enabled) and the world GI barrier. It
//! also carries the registries that stand in for things real hardware does
//! with physical addresses and keys: memory windows for one-sided
//! operations, the rendezvous source table, and the endpoint address table
//! that maps (client, task, context) to a node's reception FIFO and
//! shared-memory mailbox.
//!
//! Tasks are laid out node-major: task `t` lives on node `t / ppn` as local
//! rank `t % ppn` — the default BG/Q mapping.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bgq_collnet::{ClassRoute, ClassRouteManager, CollNet, GiBarrier};
use bgq_hw::{Counter, GlobalVa, MemRegion, WakeupUnit};
use bgq_mu::{EngineMode, FaultPlan, MuFabric, PayloadSource, RecFifoId};
use bgq_torus::{Rectangle, TorusShape};
use bgq_upc::Upc;
use parking_lot::{Mutex, RwLock};

use crate::aggr::AggrConfig;
use crate::policy::{AdaptiveConfig, AdaptivePolicy, ProtocolPolicy, StaticPolicy, SHORT_CUTOFF};
use crate::proto::ShmMailbox;

/// Key identifying a registered memory window (one-sided put/get target) or
/// a rendezvous source. Stands in for the RDMA keys/physical addresses the
/// real MU embeds in descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemKey(pub u64);

/// A typed location inside a registered window: the window's key plus a
/// byte offset. The one-sided args structs ([`crate::PutArgs`],
/// [`crate::GetArgs`], [`crate::RmwArgs`]) address remote memory with this
/// instead of a bare `MemKey` + `usize` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowRef {
    /// The registered window ([`Machine::create_window`]).
    pub key: MemKey,
    /// Byte offset within the window.
    pub offset: usize,
}

impl WindowRef {
    /// `key` at byte offset 0.
    pub fn base(key: MemKey) -> Self {
        WindowRef { key, offset: 0 }
    }

    /// The same window at `offset`.
    pub fn at(key: MemKey, offset: usize) -> Self {
        WindowRef { key, offset }
    }
}

/// A registered one-sided window: the target region plus the counter remote
/// puts decrement.
#[derive(Clone)]
pub struct Window {
    /// Target memory.
    pub region: MemRegion,
    /// Reception counter (remote puts decrement it by bytes written).
    pub counter: Option<Counter>,
}

pub(crate) struct RzvEntry {
    pub payload: PayloadSource,
    pub local_done: Option<Counter>,
}

/// Where an endpoint physically lives — filled in when its context is
/// created.
#[derive(Clone)]
pub(crate) struct EndpointAddr {
    pub rec_fifo: RecFifoId,
    pub mailbox: Arc<ShmMailbox>,
}

/// Dense endpoint-address cache sizing. Endpoints are written once (at
/// context creation, [`Machine::register_endpoint`] asserts no re-register)
/// and never removed, so a `OnceLock` slab indexed by
/// `task * ENDPOINT_CTX_SLOTS + context` resolves the send-path lookup with
/// one acquire load — no `RwLock`, no hash, no `Arc` clone. The slab covers
/// the first client and context offsets below [`ENDPOINT_CTX_SLOTS`] on
/// machines up to [`ENDPOINT_CACHE_MAX_TASKS`] tasks; everything else falls
/// back to the registry map.
const ENDPOINT_CACHE_MAX_TASKS: usize = 4096;
/// Beyond [`ENDPOINT_CACHE_MAX_TASKS`] the cache narrows to one context
/// slot per task instead of disappearing: a 100K-endpoint co-simulation
/// pays 16 bytes per endpoint, not 16 slots × 16 bytes — the O(1)
/// per-endpoint budget the scale harness enforces. Above this bound the
/// slab is dropped entirely and everything goes through the registry map.
const ENDPOINT_CACHE_MAX_TASKS_SPARSE: usize = 1 << 20;
/// Context offsets per task covered by the dense cache (16 = one per BG/Q
/// core-thread pair, the paper's max contexts-per-process sweep).
pub(crate) const ENDPOINT_CTX_SLOTS: usize = 16;

/// Machine-level endpoint failover. When the RAS layer reports a channel
/// gave up with [`bgq_mu::DeliveryFault::Unreachable`] (no route — the node
/// is cut off), traffic addressed to that node's tasks re-targets their
/// registered *standby* tasks: [`Machine::resolve_task`] remaps the
/// destination at the top of every send path, and the per-task failover
/// generation lets higher layers ([`crate::PersistentChannel`]) detect the
/// remap and renegotiate against the standby.
///
/// The fair-weather cost is one relaxed load: `generation == 0` means no
/// failover ever fired and every lookup is identity. Only after the first
/// trigger do lookups consult the `active` map.
pub(crate) struct FailoverState {
    /// Standbys registered ahead of time: primary task → standby task.
    standbys: Mutex<HashMap<u32, u32>>,
    /// Failovers that fired: primary task → (standby task, generation at
    /// which the remap took effect).
    active: RwLock<HashMap<u32, (u32, u64)>>,
    /// Global failover generation; 0 = never fired (the zero-cost gate).
    generation: AtomicU64,
    /// Staleness side-table parallel to the machine's endpoint cache: the
    /// `OnceLock` slab is write-once, so a failed-over task's slots are
    /// marked stale here and `endpoint_addr_fast` declines them (checked
    /// only when `generation != 0`, keeping the clean path branch-free).
    slot_stale: Box<[AtomicBool]>,
    cache_slots: usize,
}

impl FailoverState {
    fn new(tasks: usize, cache_slots: usize) -> Self {
        FailoverState {
            standbys: Mutex::new(HashMap::new()),
            active: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
            slot_stale: (0..tasks * cache_slots).map(|_| AtomicBool::new(false)).collect(),
            cache_slots,
        }
    }

    fn register(&self, primary: u32, standby: u32) {
        self.standbys.lock().insert(primary, standby);
    }

    /// Fire failover for `primary` if a standby is registered. Idempotent:
    /// re-triggering an already-active mapping does not bump generations,
    /// so repeated Unreachable events from draining traffic are free.
    fn trigger(&self, primary: u32) -> Option<u32> {
        let standby = *self.standbys.lock().get(&primary)?;
        let mut active = self.active.write();
        if let Some(&(cur, _)) = active.get(&primary) {
            if cur == standby {
                return Some(standby);
            }
        }
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        active.insert(primary, (standby, gen));
        drop(active);
        let base = primary as usize * self.cache_slots;
        if let Some(slots) = self.slot_stale.get(base..base + self.cache_slots) {
            for slot in slots {
                slot.store(true, Ordering::Release);
            }
        }
        Some(standby)
    }

    /// Fire failover for every registered primary in `tasks` (one lock of
    /// the standby table, so a node-death event over an oversubscribed
    /// node's 2^20 tasks doesn't take 2^20 locks). Free when no standby
    /// was ever registered.
    fn trigger_range(&self, tasks: std::ops::Range<u32>) {
        let primaries: Vec<u32> = {
            let standbys = self.standbys.lock();
            if standbys.is_empty() {
                return;
            }
            standbys.keys().copied().filter(|t| tasks.contains(t)).collect()
        };
        for primary in primaries {
            self.trigger(primary);
        }
    }

    fn resolve(&self, task: u32) -> u32 {
        if self.generation.load(Ordering::Relaxed) == 0 {
            return task;
        }
        self.active.read().get(&task).map_or(task, |&(standby, _)| standby)
    }

    fn generation_of(&self, task: u32) -> u64 {
        if self.generation.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        self.active.read().get(&task).map_or(0, |&(_, gen)| gen)
    }

    fn slot_is_stale(&self, idx: usize) -> bool {
        self.slot_stale.get(idx).is_some_and(|b| b.load(Ordering::Acquire))
    }
}

/// Which protocol-selection policy a machine is built with.
enum PolicyChoice {
    /// Fixed eager/rendezvous crossover at the builder's `eager_limit` —
    /// today's behaviour, bit for bit.
    Static,
    /// Telemetry-driven adaptive crossover seeded from `eager_limit`; the
    /// optional config overrides the clamps/hysteresis.
    Adaptive(Option<AdaptiveConfig>),
    /// Caller-supplied policy object.
    Custom(Arc<dyn ProtocolPolicy>),
}

/// Builds a [`Machine`].
pub struct MachineBuilder {
    shape: TorusShape,
    ppn: usize,
    engine_mode: EngineMode,
    eager_limit: usize,
    policy: PolicyChoice,
    inj_fifos_per_context: u16,
    inj_fifo_capacity: usize,
    rec_fifo_capacity: usize,
    fault_plan: Option<FaultPlan>,
    packet_crc: bool,
    transport: Option<Arc<dyn bgq_mu::Transport>>,
    telemetry: Option<Upc>,
    combining: bool,
    aggregation: Option<AggrConfig>,
}

impl MachineBuilder {
    /// Processes per node, 1..=64 (default 1).
    pub fn ppn(mut self, ppn: usize) -> Self {
        assert!((1..=64).contains(&ppn), "BG/Q supports 1..=64 processes per node");
        self.ppn = ppn;
        self
    }

    /// Processes per node without the hardware 64 cap — co-simulation
    /// oversubscription, where thousands of *virtual* endpoints share one
    /// node's FIFOs and mailboxes (see `bgq-scale`). Real-machine builds
    /// should use [`MachineBuilder::ppn`], which keeps the BG/Q limit.
    pub fn oversubscribed_ppn(mut self, ppn: usize) -> Self {
        assert!(
            (1..=ENDPOINT_CACHE_MAX_TASKS_SPARSE).contains(&ppn),
            "oversubscribed ppn must be 1..=2^20"
        );
        self.ppn = ppn;
        self
    }

    /// Install a packet transport on the MU fabric: every reception-FIFO
    /// deposit is handed to it instead of being performed synchronously.
    /// The co-simulation seam — `bgq-scale` installs a DES-clocked
    /// `VirtualFabric` here so delivery order follows virtual link timing.
    pub fn transport(mut self, transport: Arc<dyn bgq_mu::Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// MU engine mode (default inline).
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// Eager/rendezvous crossover in bytes (default 4096). Under the
    /// default static policy this is the fixed threshold; under
    /// [`MachineBuilder::adaptive_policy`] it seeds the initial
    /// per-destination crossover.
    pub fn eager_limit(mut self, bytes: usize) -> Self {
        self.eager_limit = bytes;
        self
    }

    /// Select the telemetry-driven adaptive eager/rendezvous policy
    /// (default is static). The crossover starts at `eager_limit` and is
    /// tuned per destination from live `bgq-upc` readings, clamped and
    /// damped so it can never diverge. With the `telemetry` feature off it
    /// degenerates to the static policy.
    pub fn adaptive_policy(mut self) -> Self {
        self.policy = PolicyChoice::Adaptive(None);
        self
    }

    /// Adaptive policy with explicit tuning parameters.
    pub fn adaptive_policy_with(mut self, cfg: AdaptiveConfig) -> Self {
        self.policy = PolicyChoice::Adaptive(Some(cfg));
        self
    }

    /// Install a caller-supplied protocol policy object.
    pub fn protocol_policy(mut self, policy: Arc<dyn ProtocolPolicy>) -> Self {
        self.policy = PolicyChoice::Custom(policy);
        self
    }

    /// Injection FIFOs reserved per context (default 4); destinations are
    /// pinned across them by hash.
    pub fn inj_fifos_per_context(mut self, n: u16) -> Self {
        assert!(n >= 1);
        self.inj_fifos_per_context = n;
        self
    }

    /// Ring capacities of the MU FIFOs before the overflow path engages
    /// (defaults 128/512) — stress tests shrink these to exercise the
    /// mutex-guarded overflow queues.
    pub fn fifo_capacities(mut self, inj: usize, rec: usize) -> Self {
        self.inj_fifo_capacity = inj;
        self.rec_fifo_capacity = rec;
        self
    }

    /// Install a fault plan: the MU fabric routes every off-node transfer
    /// through the link-level reliability layer (CRC + sequence numbers +
    /// retransmit) with faults injected per the plan. An explicit plan
    /// takes precedence over the `PAMI_FAULT_PLAN` environment variable.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enable/disable per-packet CRC-32C stamping (default on). Turning it
    /// off isolates the integrity-check cost in benchmarks.
    pub fn packet_crc(mut self, on: bool) -> Self {
        self.packet_crc = on;
        self
    }

    /// Enable in-network combining of hot-key fetch-adds (default off):
    /// [`crate::Context::rmw`] fetch-adds to the same (window, offset)
    /// coalesce at every torus hop toward the target, which applies the
    /// combined addend once and decombines the prior values by prefix sum.
    /// Off, every rmw is its own packet — the A/B control the hotspot
    /// bench compares against.
    pub fn combining(mut self, on: bool) -> Self {
        self.combining = on;
        self
    }

    /// Enable destination-aware small-message aggregation (`pami::aggr`,
    /// default off): sends the policy routes to [`crate::Protocol::Aggregated`]
    /// append into per-destination coalescing buckets and travel as
    /// multi-message packet trains. Installing a config also arms the
    /// policy's aggregation tier: a static-policy build gets a fixed
    /// `cutoff`-byte aggregation tier; an adaptive build gets its
    /// `aggr_cutoff` seeded from `cutoff` (unless the caller's
    /// [`AdaptiveConfig`] already set one), so the arrival-rate EWMA decides
    /// per destination. A custom policy is left alone — it opts in by
    /// returning [`crate::Protocol::Aggregated`] itself.
    pub fn aggregation(mut self, cfg: AggrConfig) -> Self {
        assert!(cfg.cutoff >= 1, "aggregation cutoff must be at least 1 byte");
        assert!(cfg.max_frame >= 64, "aggregated frames below 64 bytes cannot amortize anything");
        self.aggregation = Some(cfg);
        self
    }

    /// Share a caller-owned UPC registry instead of creating a fresh one.
    /// Counters registered by several machines under the same name sum in
    /// the snapshot, so one report can cover a multi-machine workload
    /// (`pamistat` uses this to fold a fault-injected side segment into
    /// the main sample's `ras.*` counters).
    pub fn telemetry(mut self, upc: Upc) -> Self {
        self.telemetry = Some(upc);
        self
    }

    /// Build the machine.
    pub fn build(self) -> Arc<Machine> {
        let nodes = self.shape.num_nodes();
        let telemetry = self.telemetry.unwrap_or_default();
        let coll_probes = crate::coll::CollProbes::new(&telemetry);
        let coll_registry = crate::coll::CollRegistry::with_builtins();
        // A frame that fits one short-tier packet rides it whole; a larger
        // frame rides the eager packet train. Cap the frame budget at a
        // sane multiple of the packet payload (it bounds per-destination
        // bucket memory), and keep the record cutoff below the frame so at
        // least one record always fits.
        let aggregation = self.aggregation.map(|mut cfg| {
            cfg.max_frame = cfg.max_frame.min(16 * bgq_torus::packet::MAX_PAYLOAD_BYTES);
            cfg.cutoff = cfg.cutoff.min(cfg.max_frame / 2);
            cfg
        });
        let policy: Arc<dyn ProtocolPolicy> = match self.policy {
            PolicyChoice::Static => match aggregation {
                Some(cfg) => Arc::new(StaticPolicy::with_aggr(
                    cfg.cutoff,
                    SHORT_CUTOFF.min(self.eager_limit),
                    self.eager_limit,
                )),
                None => Arc::new(StaticPolicy::new(self.eager_limit)),
            },
            PolicyChoice::Adaptive(cfg) => {
                let mut cfg = cfg.unwrap_or(AdaptiveConfig {
                    initial: self.eager_limit,
                    ..AdaptiveConfig::default()
                });
                if let Some(aggr) = aggregation {
                    if cfg.aggr_cutoff == 0 {
                        cfg.aggr_cutoff = aggr.cutoff.min(cfg.short_max);
                    }
                }
                Arc::new(AdaptivePolicy::new(cfg, &telemetry))
            }
            PolicyChoice::Custom(p) => p,
        };
        // Chaos runs: an explicitly installed plan wins; otherwise the
        // PAMI_FAULT_PLAN environment variable (inline JSON or a file
        // path) arms the reliability layer for reproducible runs without
        // touching the program.
        let fault_plan = self.fault_plan.or_else(|| {
            FaultPlan::from_env().unwrap_or_else(|e| panic!("PAMI_FAULT_PLAN: {e}"))
        });
        let mut fabric_builder = MuFabric::builder(self.shape)
            .engine_mode(self.engine_mode)
            .inj_fifo_capacity(self.inj_fifo_capacity)
            .rec_fifo_capacity(self.rec_fifo_capacity)
            .crc(self.packet_crc)
            .telemetry(telemetry.clone());
        if let Some(plan) = fault_plan {
            fabric_builder = fabric_builder.fault_plan(plan);
        }
        if let Some(transport) = self.transport {
            fabric_builder = fabric_builder.transport(transport);
        }
        if self.combining {
            fabric_builder = fabric_builder.combining(true);
        }
        let fabric = fabric_builder.build();
        let tasks = nodes * self.ppn;
        let cache_slots = if tasks <= ENDPOINT_CACHE_MAX_TASKS {
            ENDPOINT_CTX_SLOTS
        } else if tasks <= ENDPOINT_CACHE_MAX_TASKS_SPARSE {
            1
        } else {
            0
        };
        let failover = Arc::new(FailoverState::new(tasks, cache_slots));
        // RAS→policy feedback: retransmit and delivery-failure events are
        // recorded per link (node pair); fan each out to the destination
        // node's tasks so the per-destination protocol state sees them.
        // Policies that ignore feedback get a cheap early return. Under
        // co-simulation oversubscription the fan-out would be thousands of
        // tasks per event, so it collapses to the node's lead task.
        // Unreachable channel deaths additionally fire machine-level
        // endpoint failover for the dead node's tasks.
        {
            let pol = Arc::clone(&policy);
            let fo = Arc::clone(&failover);
            let ppn = self.ppn as u32;
            let fanout = if ppn <= 64 { ppn } else { 1 };
            fabric.set_ras_observer(Arc::new(move |ev: &bgq_mu::RasEvent| {
                use bgq_mu::RasEventKind as K;
                let (retransmits, sack_retransmits, failures) = match ev.kind {
                    K::Retransmit => (1, 0, 0),
                    // SACK fast retransmits and reorder-buffer evictions
                    // are both "loss recovered without an RTO stall" —
                    // half-weight trouble in the policy's eyes.
                    K::SackRetransmit | K::ReorderEvict => (0, 1, 0),
                    K::DeliveryFailure => (0, 0, 1),
                    _ => return,
                };
                if failures > 0 && ev.detail == bgq_mu::DeliveryFault::Unreachable as u64 {
                    fo.trigger_range(ev.dst_node * ppn..(ev.dst_node + 1) * ppn);
                }
                let first = ev.dst_node * ppn;
                for task in first..first + fanout {
                    pol.observe(crate::policy::ProtoEvent::DeliveryTrouble {
                        dest: task,
                        retransmits,
                        sack_retransmits,
                        failures,
                    });
                }
            }));
        }
        let classroutes = ClassRouteManager::new(self.shape);
        let world_route = classroutes
            .allocate(Rectangle::full(self.shape), None)
            .expect("fresh machine always has a classroute for COMM_WORLD");
        Arc::new(Machine {
            telemetry,
            coll_probes,
            coll_registry,
            shape: self.shape,
            ppn: self.ppn,
            policy,
            aggregation,
            inj_fifos_per_context: self.inj_fifos_per_context,
            fabric,
            wakeups: (0..nodes).map(|_| WakeupUnit::new()).collect(),
            global_va: (0..nodes).map(|_| GlobalVa::new()).collect(),
            sys_pump: (0..nodes).map(|_| Mutex::new(())).collect(),
            classroutes,
            collnet: CollNet::new(),
            world_route: Arc::new(world_route),
            world_gi: GiBarrier::new(nodes),
            clients: Mutex::new(HashMap::new()),
            endpoints: RwLock::new(HashMap::new()),
            endpoint_cache: (0..tasks * cache_slots).map(|_| OnceLock::new()).collect(),
            cache_slots,
            failover,
            windows: Mutex::new(HashMap::new()),
            rzv: Mutex::new(HashMap::new()),
            next_key: AtomicU64::new(1),
            shared: Mutex::new(HashMap::new()),
            init_fence: (Mutex::new((0, 0)), parking_lot::Condvar::new()),
        })
    }
}

/// One simulated partition: substrates plus registries, shared by every
/// task thread.
pub struct Machine {
    /// The partition's UPC telemetry registry: every layer (MU fabric,
    /// contexts, commthreads, matching, collectives) registers its probes
    /// here so one snapshot covers the whole stack.
    telemetry: Upc,
    /// Collective-operation probes (`coll.*`), registered once so repeated
    /// collectives don't grow the registry.
    coll_probes: crate::coll::CollProbes,
    /// Per-geometry collective algorithm registry: every barrier/broadcast/
    /// allreduce/… algorithm is a queryable entry with an availability
    /// predicate and a cost hint; geometries select through it.
    coll_registry: crate::coll::CollRegistry,
    shape: TorusShape,
    ppn: usize,
    /// Point-to-point protocol selection: every `send` asks this policy
    /// eager-vs-rendezvous and feeds completion outcomes back. The default
    /// [`StaticPolicy`] reproduces the old bare `eager_limit` threshold.
    policy: Arc<dyn ProtocolPolicy>,
    /// Small-message aggregation config (`pami::aggr`), `None` when the
    /// layer is off. Every context builds its own [`crate::aggr::Aggregator`]
    /// from this at creation.
    aggregation: Option<AggrConfig>,
    pub(crate) inj_fifos_per_context: u16,
    pub(crate) fabric: MuFabric,
    wakeups: Vec<WakeupUnit>,
    global_va: Vec<GlobalVa>,
    /// Per-node guard so only one context at a time services the node's
    /// system FIFO (remote gets) in inline engine mode.
    pub(crate) sys_pump: Vec<Mutex<()>>,
    classroutes: ClassRouteManager,
    collnet: CollNet,
    world_route: Arc<ClassRoute>,
    world_gi: GiBarrier,
    clients: Mutex<HashMap<String, u16>>,
    endpoints: RwLock<HashMap<(u16, u32, u16), EndpointAddr>>,
    /// Lock-free send-path view of `endpoints` (client 0, context offsets
    /// below `cache_slots`): a `task * cache_slots + context` slab.
    endpoint_cache: Box<[OnceLock<EndpointAddr>]>,
    /// Context slots per task in `endpoint_cache`: [`ENDPOINT_CTX_SLOTS`]
    /// up to [`ENDPOINT_CACHE_MAX_TASKS`] tasks, 1 up to
    /// [`ENDPOINT_CACHE_MAX_TASKS_SPARSE`] (context 0 only — the co-sim
    /// envelope), 0 beyond (registry map only).
    cache_slots: usize,
    /// Endpoint failover registry (standbys, active remaps, generations).
    /// `Arc` because the fabric's RAS observer holds a clone — it must
    /// outlive neither and is installed before the machine exists.
    failover: Arc<FailoverState>,
    windows: Mutex<HashMap<u64, Window>>,
    rzv: Mutex<HashMap<u64, RzvEntry>>,
    next_key: AtomicU64,
    /// Named shared state for layers built on PAMI (geometry registries,
    /// MPI node boards, …): the stand-in for structures those layers would
    /// place in CNK shared memory.
    shared: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    /// Blocking all-task rendezvous used as an initialization fence.
    init_fence: (Mutex<(usize, u64)>, parking_lot::Condvar),
}

/// What a task thread receives from [`Machine::run`].
#[derive(Clone)]
pub struct TaskEnv {
    /// The machine.
    pub machine: Arc<Machine>,
    /// This thread's global task index.
    pub task: u32,
}

impl Machine {
    /// Start building a machine over an explicit torus shape.
    pub fn builder(shape: TorusShape) -> MachineBuilder {
        MachineBuilder {
            shape,
            ppn: 1,
            engine_mode: EngineMode::Inline,
            eager_limit: 4096,
            policy: PolicyChoice::Static,
            inj_fifos_per_context: 4,
            inj_fifo_capacity: 128,
            rec_fifo_capacity: 512,
            fault_plan: None,
            packet_crc: true,
            transport: None,
            telemetry: None,
            combining: false,
            aggregation: None,
        }
    }

    /// Convenience: a machine over `nodes` nodes (auto-factored shape).
    pub fn with_nodes(nodes: usize) -> MachineBuilder {
        Self::builder(TorusShape::for_nodes(nodes))
    }

    /// Torus shape of the partition.
    pub fn shape(&self) -> TorusShape {
        self.shape
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.shape.num_nodes()
    }

    /// Processes per node.
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    /// Total tasks (nodes × ppn).
    pub fn num_tasks(&self) -> usize {
        self.num_nodes() * self.ppn
    }

    /// Node hosting `task`.
    #[inline]
    pub fn task_node(&self, task: u32) -> u32 {
        // One process per node is the dominant shape (and every bench's):
        // skip the runtime division, which is on the per-send critical path.
        if self.ppn == 1 { task } else { task / self.ppn as u32 }
    }

    /// `task`'s local rank within its node.
    pub fn task_local_rank(&self, task: u32) -> usize {
        task as usize % self.ppn
    }

    /// The tasks co-located on `node`, in rank order.
    pub fn node_tasks(&self, node: u32) -> std::ops::Range<u32> {
        let first = node * self.ppn as u32;
        first..first + self.ppn as u32
    }

    /// The MU fabric (low-level access for tests and benchmarks).
    pub fn fabric(&self) -> &MuFabric {
        &self.fabric
    }

    /// The machine-wide telemetry registry (`bgq-upc`). Snapshot it for a
    /// `pamistat`-style report over every layer's probes; no-op when the
    /// `telemetry` feature is off.
    pub fn telemetry(&self) -> &Upc {
        &self.telemetry
    }

    /// The machine's `coll.*` probes (shared by every geometry).
    pub(crate) fn coll_probes(&self) -> &crate::coll::CollProbes {
        &self.coll_probes
    }

    /// The point-to-point protocol-selection policy. `Context::send`
    /// consults it per message and feeds delivery outcomes back through
    /// [`ProtocolPolicy::observe`].
    pub fn policy(&self) -> &Arc<dyn ProtocolPolicy> {
        &self.policy
    }

    /// The small-message aggregation config (`pami::aggr`), `None` when
    /// the layer is off. Frame and cutoff budgets already clamped sane.
    pub fn aggregation(&self) -> Option<&AggrConfig> {
        self.aggregation.as_ref()
    }

    /// The per-geometry collective algorithm registry (the analogue of
    /// `PAMI_Geometry_algorithms_query`). Layers above PAMI (MPI's rect
    /// broadcast) register additional entries here.
    pub fn coll_registry(&self) -> &crate::coll::CollRegistry {
        &self.coll_registry
    }

    /// The wakeup unit of `node`.
    pub fn wakeup_unit(&self, node: u32) -> &WakeupUnit {
        &self.wakeups[node as usize]
    }

    /// The CNK global-VA table of `node`.
    pub fn global_va(&self, node: u32) -> &GlobalVa {
        &self.global_va[node as usize]
    }

    /// The classroute manager.
    pub fn classroutes(&self) -> &ClassRouteManager {
        &self.classroutes
    }

    /// The collective-network engine.
    pub fn collnet(&self) -> &CollNet {
        &self.collnet
    }

    /// The COMM_WORLD classroute (always programmed).
    pub fn world_route(&self) -> &Arc<ClassRoute> {
        &self.world_route
    }

    /// The world GI barrier (one slot per node).
    pub fn world_gi(&self) -> &GiBarrier {
        &self.world_gi
    }

    /// Spawn one thread per task running `f`, and join them all. Panics in
    /// task threads propagate.
    ///
    /// Caveat: propagation happens after *all* tasks finish. If one task
    /// panics while its peers wait on it (a barrier, a receive), the run
    /// hangs rather than failing fast — wrap suspect code in timeouts when
    /// debugging collective protocols.
    pub fn run<F>(self: &Arc<Self>, f: F)
    where
        F: Fn(TaskEnv) + Send + Sync,
    {
        let tasks = self.num_tasks() as u32;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for task in 0..tasks {
                let env = TaskEnv { machine: Arc::clone(self), task };
                let f = &f;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("task-{task}"))
                        .spawn_scoped(s, move || f(env))
                        .expect("spawn task thread"),
                );
            }
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
    }

    // ---- registries -----------------------------------------------------

    /// Numeric id for a client name, allocating on first sight. Clients of
    /// the same name on different tasks are the same network instance.
    pub(crate) fn client_id(&self, name: &str) -> u16 {
        let mut clients = self.clients.lock();
        let next = clients.len() as u16;
        *clients.entry(name.to_string()).or_insert(next)
    }

    pub(crate) fn register_endpoint(
        &self,
        client: u16,
        task: u32,
        context: u16,
        addr: EndpointAddr,
    ) {
        let prev = self.endpoints.write().insert((client, task, context), addr.clone());
        assert!(prev.is_none(), "endpoint ({client},{task},{context}) registered twice");
        // Publish into the dense cache too (write-once by the assert above).
        if client == 0 && (context as usize) < self.cache_slots {
            let idx = task as usize * self.cache_slots + context as usize;
            if let Some(slot) = self.endpoint_cache.get(idx) {
                let _ = slot.set(addr);
            }
        }
    }

    /// Register a *virtual* endpoint: (client, `task`, `context`) resolves
    /// to the reception FIFO and mailbox of an existing real context, `ctx`.
    /// The co-simulation harness uses this to multiplex thousands of
    /// simulated ranks onto one advancing context per node — traffic
    /// addressed to the virtual endpoint lands in `ctx`'s queues, and the
    /// scenario demultiplexes by metadata. `ctx` must live on the node that
    /// owns `task` (node-major layout), or delivery timing would be wrong.
    pub fn register_virtual_endpoint(&self, task: u32, context: u16, ctx: &crate::Context) {
        assert_eq!(
            self.task_node(task),
            ctx.node(),
            "virtual endpoint must alias a context on its own node"
        );
        self.register_endpoint(ctx.client_id(), task, context, ctx.endpoint_addr());
    }

    /// Resolve an endpoint's physical address. `None` when the endpoint
    /// was never created — surfaced to callers as
    /// [`crate::PamiError::UnknownEndpoint`] rather than a panic.
    pub(crate) fn endpoint_addr(
        &self,
        client: u16,
        task: u32,
        context: u16,
    ) -> Option<EndpointAddr> {
        self.endpoints.read().get(&(client, task, context)).cloned()
    }

    /// Lock-free endpoint resolution through the dense cache: one index
    /// computation plus one acquire load, returning a *reference* (no `Arc`
    /// refcount traffic on the sender's hot path). `None` means "not in the
    /// cache" — absent *or* outside the cached (client, context, machine
    /// size) envelope — and callers fall back to [`Machine::endpoint_addr`].
    #[inline]
    pub(crate) fn endpoint_addr_fast(
        &self,
        client: u16,
        task: u32,
        context: u16,
    ) -> Option<&EndpointAddr> {
        if client != 0 || context as usize >= self.cache_slots {
            return None;
        }
        let idx = task as usize * self.cache_slots + context as usize;
        // The slab is write-once, so failover invalidates by side table:
        // a stale slot (its task failed over) declines into the registry
        // path. One relaxed load guards the check in fair weather.
        if self.failover.generation.load(Ordering::Relaxed) != 0
            && self.failover.slot_is_stale(idx)
        {
            return None;
        }
        self.endpoint_cache.get(idx).and_then(OnceLock::get)
    }

    /// Context slots per task in the dense endpoint cache (test hook for
    /// the O(1)-per-endpoint sizing policy).
    #[doc(hidden)]
    pub fn endpoint_cache_geometry(&self) -> (usize, usize) {
        (self.endpoint_cache.len(), self.cache_slots)
    }

    // ---- endpoint failover ----------------------------------------------

    /// Register `standby` as the failover target for `primary`: if the
    /// reliability layer ever reports `primary`'s node unreachable (a
    /// channel died with [`bgq_mu::DeliveryFault::Unreachable`]), sends
    /// addressed to `primary` re-target `standby` from then on. The standby
    /// must be a live task with its own contexts; it is assumed fresh — no
    /// prior persistent-channel history with the peers it inherits.
    pub fn register_standby(&self, primary: u32, standby: u32) {
        let tasks = self.num_tasks() as u32;
        assert!(primary < tasks && standby < tasks, "standby registration out of range");
        assert_ne!(primary, standby, "a task cannot stand by for itself");
        self.failover.register(primary, standby);
    }

    /// Fire failover of `primary` now (operator action / tests — the RAS
    /// observer calls the same path on Unreachable). Returns the standby
    /// traffic was re-targeted to, `None` when no standby is registered.
    pub fn failover(&self, primary: u32) -> Option<u32> {
        self.failover.trigger(primary)
    }

    /// The live task for `task`: itself in fair weather (one relaxed load),
    /// or its standby once failover fired. Send paths call this at the top
    /// so endpoint, node, and FIFO resolution all follow the remap.
    pub fn resolve_task(&self, task: u32) -> u32 {
        self.failover.resolve(task)
    }

    /// Monotone failover generation for `task`: 0 until its first failover,
    /// then the global generation at which its current remap took effect.
    /// [`crate::PersistentChannel`] snapshots this at creation and
    /// renegotiates when it moves.
    pub fn failover_generation(&self, task: u32) -> u64 {
        self.failover.generation_of(task)
    }

    fn fresh_key(&self) -> u64 {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a one-sided window; remote tasks address it by the returned
    /// key (the analogue of exchanging `PAMI_Memregion` handles).
    pub fn create_window(&self, region: MemRegion, counter: Option<Counter>) -> MemKey {
        let key = self.fresh_key();
        self.windows.lock().insert(key, Window { region, counter });
        MemKey(key)
    }

    /// Resolve a window key.
    pub fn window(&self, key: MemKey) -> Option<Window> {
        self.windows.lock().get(&key.0).cloned()
    }

    /// Destroy a window.
    pub fn destroy_window(&self, key: MemKey) -> bool {
        self.windows.lock().remove(&key.0).is_some()
    }

    /// Whether the fabric's in-network combining overlay is enabled
    /// ([`MachineBuilder::combining`]).
    pub fn combining_enabled(&self) -> bool {
        self.fabric.combining_enabled()
    }

    pub(crate) fn rzv_register(&self, payload: PayloadSource, local_done: Option<Counter>) -> u64 {
        let key = self.fresh_key();
        self.rzv.lock().insert(key, RzvEntry { payload, local_done });
        key
    }

    pub(crate) fn rzv_take(&self, key: u64) -> RzvEntry {
        self.rzv
            .lock()
            .remove(&key)
            .expect("rendezvous source looked up twice or never registered")
    }

    /// Block until every task of the machine has called this — the job
    /// launcher's initialization fence. Use it between resource creation
    /// (clients, contexts, windows) and first communication: endpoint
    /// addressing assumes the destination context exists.
    ///
    /// Unlike the messaging barriers this one parks the thread (nothing
    /// needs to be advanced yet during init).
    pub fn task_barrier(&self) {
        let (lock, cv) = &self.init_fence;
        let mut state = lock.lock();
        let generation = state.1;
        state.0 += 1;
        if state.0 == self.num_tasks() {
            state.0 = 0;
            state.1 += 1;
            cv.notify_all();
        } else {
            while state.1 == generation {
                cv.wait(&mut state);
            }
        }
    }

    /// Get-or-create a named piece of machine-wide shared state (the
    /// CNK-shared-memory stand-in higher layers coordinate through).
    pub fn shared_state<T, F>(&self, key: &str, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut shared = self.shared.lock();
        if let Some(existing) = shared.get(key) {
            return Arc::clone(existing).downcast::<T>().unwrap_or_else(|_| {
                panic!("shared_state key {key:?} requested with two different types")
            });
        }
        let value: Arc<T> = Arc::new(init());
        shared.insert(key.to_string(), Arc::clone(&value) as Arc<dyn Any + Send + Sync>);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_layout_is_node_major() {
        let m = Machine::with_nodes(4).ppn(4).build();
        assert_eq!(m.num_tasks(), 16);
        assert_eq!(m.task_node(0), 0);
        assert_eq!(m.task_node(5), 1);
        assert_eq!(m.task_local_rank(5), 1);
        assert_eq!(m.node_tasks(2), 8..12);
    }

    #[test]
    fn world_route_covers_machine() {
        let m = Machine::with_nodes(8).build();
        assert_eq!(m.world_route().num_nodes(), 8);
        assert_eq!(m.world_gi().members(), 8);
    }

    #[test]
    fn run_spawns_one_thread_per_task() {
        let m = Machine::with_nodes(2).ppn(3).build();
        let seen = Mutex::new(Vec::new());
        m.run(|env| {
            seen.lock().push(env.task);
        });
        let mut tasks = seen.into_inner();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn client_ids_stable_by_name() {
        let m = Machine::with_nodes(1).build();
        let a = m.client_id("MPI");
        let b = m.client_id("UPC");
        let a2 = m.client_id("MPI");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn windows_register_and_resolve() {
        let m = Machine::with_nodes(1).build();
        let region = MemRegion::zeroed(64);
        let key = m.create_window(region.clone(), None);
        let win = m.window(key).expect("window resolves");
        assert!(win.region.same_region(&region));
        assert!(m.destroy_window(key));
        assert!(m.window(key).is_none());
    }

    #[test]
    fn shared_state_returns_same_instance() {
        let m = Machine::with_nodes(1).build();
        let a: Arc<Mutex<u32>> = m.shared_state("x", || Mutex::new(1));
        let b: Arc<Mutex<u32>> = m.shared_state("x", || Mutex::new(99));
        *a.lock() += 1;
        assert_eq!(*b.lock(), 2);
    }

    #[test]
    #[should_panic(expected = "two different types")]
    fn shared_state_type_mismatch_panics() {
        let m = Machine::with_nodes(1).build();
        let _a: Arc<Mutex<u32>> = m.shared_state("x", || Mutex::new(1));
        let _b: Arc<Mutex<String>> = m.shared_state("x", || Mutex::new(String::new()));
    }

    #[test]
    fn endpoint_cache_mirrors_registry() {
        let m = Machine::with_nodes(2).ppn(2).build();
        assert!(m.endpoint_addr_fast(0, 1, 0).is_none(), "nothing registered yet");
        let wake = m.wakeup_unit(0).region();
        let addr = EndpointAddr {
            rec_fifo: m.fabric().alloc_rec_fifos(0, 1).unwrap()[0],
            mailbox: Arc::new(ShmMailbox::new(8, wake)),
        };
        m.register_endpoint(0, 1, 0, addr.clone());
        let fast = m.endpoint_addr_fast(0, 1, 0).expect("dense cache hit");
        let slow = m.endpoint_addr(0, 1, 0).expect("registry hit");
        assert_eq!(fast.rec_fifo, slow.rec_fifo);
        assert!(Arc::ptr_eq(&fast.mailbox, &slow.mailbox));
        // Outside the cached envelope: registry only, fast path declines.
        m.register_endpoint(1, 1, 0, addr.clone());
        assert!(m.endpoint_addr_fast(1, 1, 0).is_none());
        assert!(m.endpoint_addr(1, 1, 0).is_some());
        m.register_endpoint(0, 0, ENDPOINT_CTX_SLOTS as u16, addr);
        assert!(m.endpoint_addr_fast(0, 0, ENDPOINT_CTX_SLOTS as u16).is_none());
        assert!(m.endpoint_addr(0, 0, ENDPOINT_CTX_SLOTS as u16).is_some());
    }

    #[test]
    fn run_propagates_panics() {
        let m = Machine::with_nodes(1).ppn(2).build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(|env| {
                if env.task == 1 {
                    panic!("task 1 exploded");
                }
            });
        }));
        assert!(result.is_err());
    }
}
