//! PAMI contexts — the unit of thread parallelism.
//!
//! "Messaging operations are initiated and progressed in the context
//! independent of other co-existing contexts" (paper section III.B). Each
//! context owns, exclusively: a slice of the node's MU injection FIFOs
//! (destinations pinned across them by hash, preserving MPI ordering), one
//! MU reception FIFO, a shared-memory mailbox, a lock-free work queue for
//! cross-thread handoff, and a wakeup region commthreads park on.
//!
//! Thread contract, mirrored from the paper: [`Context::advance`] is
//! single-threaded per context — concurrent calls are detected with a
//! `try_lock` and simply make no progress (higher software either pins
//! threads to contexts, posts work with [`Context::post`], or brackets
//! shared use with [`Context::lock`]). Sends are initiated lock-free from
//! any thread: they only push onto MPSC queues.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bgq_hw::{Counter, L2TicketMutex, MemRegion, WakeupRegion, WorkQueue};
use bgq_mu::{
    Descriptor, EngineMode, InjFifo, InjFifoId, MuPacket, PayloadSource, RecFifo, RecFifoId,
    XferKind,
};
use bgq_upc::{Histogram, Stamp, Upc};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::aggr::{Aggregator, Frame};
use crate::endpoint::Endpoint;
use crate::error::{PamiError, PamiResult};
use crate::machine::Machine;
use crate::policy::{ProtoEvent, Protocol};
use crate::proto::{
    wire, SendArgs, ShmMailbox, ShmMsg, ShmPayload, DISPATCH_AGGR, DISPATCH_CHAN_REQ,
    DISPATCH_INTERNAL_BASE, DISPATCH_RZV_RTS,
};

thread_local! {
    /// Whether the current thread is a commthread-pool worker. Set by
    /// [`crate::commthread::CommThreadPool`]; used to split handoff-latency
    /// telemetry between `ctx.handoff_ns` (any advancing thread) and
    /// `commthread.handoff_ns` (commthread workers only).
    static IS_COMMTHREAD: Cell<bool> = const { Cell::new(false) };
}

/// Mark (or unmark) the calling thread as a commthread-pool worker.
pub(crate) fn set_commthread_marker(on: bool) {
    IS_COMMTHREAD.with(|c| c.set(on));
}

#[inline]
fn on_commthread() -> bool {
    IS_COMMTHREAD.with(|c| c.get())
}

/// Completion callback invoked on the advancing thread. The result is the
/// transfer's delivery outcome — `Ok(())` on success, `Err` when the
/// reliability layer failed the transfer (retry budget exhausted,
/// destination unreachable); the PAMI `pami_event_function` contract.
pub type CompletionFn = Box<dyn FnOnce(&Context, PamiResult<()>) + Send>;

/// Work item accepted by [`Context::post`].
pub type WorkFn = Box<dyn FnOnce(&Context) + Send>;

/// Header information handed to a dispatch handler.
#[derive(Debug, Clone)]
pub struct IncomingMsg {
    /// Originating endpoint.
    pub src: Endpoint,
    /// Dispatch id the sender targeted.
    pub dispatch: u16,
    /// Sender's dispatch metadata.
    pub metadata: Bytes,
    /// Total payload length of the message.
    pub len: u64,
}

/// A dispatch handler's decision about an incoming message.
pub enum Recv {
    /// The handler fully consumed the message from the bytes it was shown
    /// (only legal when those bytes were the whole payload).
    Done,
    /// Deposit the payload into `region` at `offset` and call `on_complete`
    /// once every byte has landed.
    Into {
        /// Destination buffer.
        region: MemRegion,
        /// Byte offset within the buffer.
        offset: usize,
        /// Completion callback (runs on the advancing thread).
        on_complete: CompletionFn,
    },
}

/// An active-message dispatch handler.
///
/// Called on the first packet of each message with the header info and the
/// payload bytes available so far (the whole payload for single-packet
/// messages; empty for rendezvous arrivals). Runs on the advancing thread;
/// it may send, post, and register state, but must not call `advance` or
/// block on communication.
pub type DispatchFn = Arc<dyn Fn(&Context, &IncomingMsg, &[u8]) -> Recv + Send + Sync>;

struct Reassembly {
    region: MemRegion,
    base_offset: usize,
    remaining: usize,
    on_complete: Option<CompletionFn>,
    /// Send-side stamp from the first packet's envelope; fed back to the
    /// protocol policy when the last byte lands.
    stamp: Stamp,
    total_len: usize,
}

/// A rendezvous receive waiting on its reception counter.
struct RzvPending {
    done: Counter,
    on_complete: Option<CompletionFn>,
    /// RTS send-side stamp — completion minus this is the full rendezvous
    /// round trip, the policy's rendezvous cost signal.
    stamp: Stamp,
    len: usize,
}

/// One-entry dispatch-handler memo: (dispatch generation, dispatch id,
/// handler). Lives in the advance state, so it is only ever touched by the
/// single advancing thread.
type HandlerMemo = (u64, u16, DispatchFn);

struct AdvanceState {
    /// Multi-packet eager messages being deposited, keyed by (source node,
    /// message id).
    reassembly: HashMap<(u32, u64), Reassembly>,
    /// Rendezvous receives waiting on their reception counters.
    rzv_pending: Vec<RzvPending>,
    /// Last handler resolved on the receive path. Flood traffic dispatches
    /// the same id back to back; the memo turns the per-message
    /// RwLock + hash + `Arc` clone into one atomic generation check.
    handler_memo: Option<HandlerMemo>,
    /// Reusable buffer for batched reception FIFO drains: packets are
    /// claimed in one queue transaction per advance, not one per packet.
    rec_scratch: Vec<MuPacket>,
}

/// Counter updates accumulated across one `advance` call and flushed once
/// at the end — batched "doorbell" updates instead of a shared-counter RMW
/// per packet.
#[derive(Default)]
struct BatchCounters {
    /// Messages dispatched to handlers (first packets, RTSs, shm messages).
    dispatched: u64,
    /// Receive-side payload copies deposited into destination buffers.
    copies: u64,
}

/// Per-advance budgets: how many items of each kind one `advance` call
/// processes before returning (keeps latency fair across devices).
const WORK_BUDGET: usize = 16;
const INJ_BUDGET: usize = 32;
const SYS_BUDGET: usize = 32;
const RECV_BUDGET: usize = 64;

/// Per-context `ctx.*` telemetry probes (plus the `commthread.handoff_ns`
/// histogram, which is *measured* here — at work execution — even though
/// commthreads are usually the ones draining the queue). Instances register
/// on the machine's [`Upc`]; snapshots sum across contexts. Every field is
/// a zero-sized no-op when the `telemetry` feature is off.
struct CtxProbes {
    /// `advance` calls (including fast-path returns).
    advance_calls: bgq_upc::Counter,
    /// `advance` calls that returned through the lock-free idle fast path.
    idle_fastpath_hits: bgq_upc::Counter,
    /// Events processed across all `advance` calls.
    advance_events: bgq_upc::Counter,
    /// Sends by protocol. The short tier and `send_immediate` share one
    /// probe — they are the same envelope path.
    sends_short: bgq_upc::Counter,
    /// Sends appended into aggregation buckets (`pami::aggr`).
    sends_aggr: bgq_upc::Counter,
    sends_eager: bgq_upc::Counter,
    sends_rzv: bgq_upc::Counter,
    sends_shm: bgq_upc::Counter,
    puts: bgq_upc::Counter,
    gets: bgq_upc::Counter,
    rmws: bgq_upc::Counter,
    /// First packets (or shm messages / RTSs) dispatched to handlers.
    messages_dispatched: bgq_upc::Counter,
    /// Posted work items executed.
    work_items: bgq_upc::Counter,
    /// Nanoseconds from `Context::post` to the work item running, when the
    /// advancing thread is a commthread-pool worker (the paper's
    /// commthread-handoff cost).
    handoff_ns: Histogram,
    /// Same post→execution latency, measured for *every* advancing thread
    /// (application threads draining their own queue included).
    ctx_handoff_ns: Histogram,
}

impl CtxProbes {
    fn new(upc: &Upc) -> Self {
        CtxProbes {
            advance_calls: upc.counter("ctx.advance_calls"),
            idle_fastpath_hits: upc.counter("ctx.idle_fastpath_hits"),
            advance_events: upc.counter("ctx.advance_events"),
            sends_short: upc.counter("ctx.sends_short"),
            sends_aggr: upc.counter("ctx.sends_aggr"),
            sends_eager: upc.counter("ctx.sends_eager"),
            sends_rzv: upc.counter("ctx.sends_rzv"),
            sends_shm: upc.counter("ctx.sends_shm"),
            puts: upc.counter("ctx.puts"),
            gets: upc.counter("ctx.gets"),
            rmws: upc.counter("ctx.rmws"),
            messages_dispatched: upc.counter("ctx.messages_dispatched"),
            work_items: upc.counter("ctx.work_items"),
            handoff_ns: upc.histogram("commthread.handoff_ns"),
            ctx_handoff_ns: upc.histogram("ctx.handoff_ns"),
        }
    }
}

/// A PAMI communication context.
pub struct Context {
    machine: Arc<Machine>,
    client: u16,
    task: u32,
    offset: u16,
    node: u32,
    rec_fifo_id: RecFifoId,
    rec_fifo: Arc<RecFifo>,
    inj_ids: Vec<InjFifoId>,
    /// Cached handles to this context's exclusive injection FIFOs —
    /// initiation and pumping never re-consult the fabric's FIFO table.
    inj_fifos: Vec<Arc<InjFifo>>,
    /// Cached handle to the node's system injection FIFO (emptiness probe
    /// for the idle fast path).
    sys_fifo: Arc<InjFifo>,
    /// Whether descriptors are executed inline from `advance` (cached from
    /// the fabric's engine mode).
    inline_engine: bool,
    mailbox: Arc<ShmMailbox>,
    wakeup: WakeupRegion,
    /// Posted work plus its post-time stamp for handoff-latency telemetry
    /// (the stamp is zero-sized with telemetry off).
    work: WorkQueue<(Stamp, WorkFn)>,
    dispatch: RwLock<HashMap<u16, DispatchFn>>,
    /// Bumped by [`Context::set_dispatch`]; invalidates the advance-side
    /// handler memo without the receive path ever taking the dispatch lock.
    dispatch_gen: AtomicU64,
    /// Pre-serialized wire envelope for the static flood case (zero stamp,
    /// empty metadata): per-send `Bytes` clone — a refcount bump on
    /// context-private memory — instead of a 12-byte heap allocation.
    flood_envelope: Bytes,
    advance_state: Mutex<AdvanceState>,
    /// Number of in-flight internal obligations (reassembly entries plus
    /// pending rendezvous receives). Written only under `advance_state`;
    /// read lock-free by [`Context::is_quiescent`] and the empty-fast-path
    /// in [`Context::advance`].
    pending_internal: AtomicUsize,
    /// Persistent-channel pairing ordinals, per peer endpoint: the n-th
    /// channel this context opens to a peer pairs with the n-th channel the
    /// peer opens back (see [`crate::channel::PersistentChannel`]).
    chan_ordinals: Mutex<HashMap<Endpoint, u64>>,
    /// Buffer offers received from peers ([`DISPATCH_CHAN_REQ`] arrivals),
    /// keyed by (peer endpoint, ordinal), waiting for the local side to
    /// bind its channel.
    chan_offers: Mutex<HashMap<(Endpoint, u64), crate::channel::ChanOffer>>,
    /// Small-message coalescing buckets (`pami::aggr`), present when the
    /// machine was built with [`crate::MachineBuilder::aggregation`].
    /// Appends run lock-free of the advance state; the age-bound flush
    /// runs inside `advance`.
    aggr: Option<Aggregator>,
    user_lock: L2TicketMutex,
    /// Cached `machine.policy().wants_feedback()`: when `false` (the
    /// static default) the send path writes a zero stamp and delivery
    /// never reads the clock or calls `observe` — zero per-message policy
    /// cost on the hot path.
    policy_feedback: bool,
    /// Snapshot of the policy's fixed `(aggr, short, limit)` ladder when it
    /// is destination-independent (the static default): `send` selects the
    /// protocol inline without the per-message virtual call.
    fixed_thresholds: Option<(usize, usize, usize)>,
    /// `ctx.*` telemetry probes, registered on the machine's UPC registry.
    probes: CtxProbes,
}

impl Context {
    pub(crate) fn create(
        machine: &Arc<Machine>,
        client: u16,
        task: u32,
        offset: u16,
    ) -> Arc<Context> {
        let node = machine.task_node(task);
        let wakeup = machine.wakeup_unit(node).region();
        let rec_fifo_id = machine
            .fabric()
            .alloc_rec_fifos(node, 1)
            .unwrap_or_else(|| panic!("node {node} out of MU reception FIFOs"))[0];
        let rec_fifo = machine.fabric().rec_fifo(node, rec_fifo_id);
        rec_fifo.set_wakeup(wakeup.clone());
        let inj_ids = machine
            .fabric()
            .alloc_inj_fifos(node, machine.inj_fifos_per_context)
            .unwrap_or_else(|| panic!("node {node} out of MU injection FIFOs"));
        let inj_fifos: Vec<Arc<InjFifo>> = inj_ids
            .iter()
            .map(|id| machine.fabric().inj_fifo(node, *id))
            .collect();
        let sys_fifo = machine.fabric().sys_fifo(node);
        let inline_engine = matches!(machine.fabric().engine_mode(), EngineMode::Inline);
        let mailbox = Arc::new(ShmMailbox::new(512, wakeup.clone()));
        machine.register_endpoint(
            client,
            task,
            offset,
            crate::machine::EndpointAddr {
                rec_fifo: rec_fifo_id,
                mailbox: Arc::clone(&mailbox),
            },
        );
        Arc::new(Context {
            machine: Arc::clone(machine),
            client,
            task,
            offset,
            node,
            rec_fifo_id,
            rec_fifo,
            inj_ids,
            inj_fifos,
            sys_fifo,
            inline_engine,
            mailbox,
            wakeup,
            work: WorkQueue::with_capacity(256),
            dispatch: RwLock::new(HashMap::new()),
            dispatch_gen: AtomicU64::new(0),
            flood_envelope: wire::envelope(task, Stamp::from_ns(0), &[]),
            advance_state: Mutex::new(AdvanceState {
                reassembly: HashMap::new(),
                rzv_pending: Vec::new(),
                handler_memo: None,
                rec_scratch: Vec::with_capacity(RECV_BUDGET),
            }),
            pending_internal: AtomicUsize::new(0),
            chan_ordinals: Mutex::new(HashMap::new()),
            chan_offers: Mutex::new(HashMap::new()),
            aggr: machine.aggregation().map(|cfg| Aggregator::new(*cfg, machine.telemetry())),
            user_lock: L2TicketMutex::new(),
            policy_feedback: bgq_upc::ENABLED && machine.policy().wants_feedback(),
            fixed_thresholds: machine.policy().fixed_thresholds(),
            probes: CtxProbes::new(machine.telemetry()),
        })
    }

    // ---- identity --------------------------------------------------------

    /// The machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Owning task.
    pub fn task(&self) -> u32 {
        self.task
    }

    /// Context offset within its client.
    pub fn offset(&self) -> u16 {
        self.offset
    }

    /// The node this context lives on.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// This context's own endpoint.
    pub fn endpoint(&self) -> Endpoint {
        Endpoint { task: self.task, context: self.offset }
    }

    /// Numeric client id (registry key component).
    pub(crate) fn client_id(&self) -> u16 {
        self.client
    }

    /// This context's physical address — what the endpoint table maps to.
    /// Virtual endpoints alias it ([`Machine::register_virtual_endpoint`]).
    pub(crate) fn endpoint_addr(&self) -> crate::machine::EndpointAddr {
        crate::machine::EndpointAddr {
            rec_fifo: self.rec_fifo_id,
            mailbox: Arc::clone(&self.mailbox),
        }
    }

    /// The wakeup region covering this context's queues (commthreads park
    /// on it; [`Context::post`] and message arrivals touch it).
    pub fn wakeup_region(&self) -> &WakeupRegion {
        &self.wakeup
    }

    /// The context lock exposed to higher software (classic-MPI style
    /// serialization). PAMI itself never takes it.
    pub fn lock(&self) -> bgq_hw::mutex::L2TicketGuard<'_> {
        self.user_lock.lock()
    }

    // ---- dispatch ---------------------------------------------------------

    /// Register the active-message handler for `dispatch`.
    ///
    /// # Panics
    /// If `dispatch` is in the internal range (≥ 0xFF00).
    pub fn set_dispatch(&self, dispatch: u16, handler: DispatchFn) {
        assert!(dispatch < DISPATCH_INTERNAL_BASE, "dispatch id {dispatch:#x} is reserved");
        self.dispatch.write().insert(dispatch, handler);
        // Invalidate any advance-side handler memo.
        self.dispatch_gen.fetch_add(1, Ordering::Release);
    }

    fn handler(&self, dispatch: u16) -> DispatchFn {
        self.dispatch
            .read()
            .get(&dispatch)
            .unwrap_or_else(|| panic!("no handler registered for dispatch {dispatch}"))
            .clone()
    }

    /// Resolve the handler for `dispatch` through the advance state's
    /// one-entry memo. On a hit (same id, same dispatch-table generation)
    /// this is one acquire load — no RwLock, no hash, no `Arc` clone. The
    /// returned reference borrows the memo slot, which only the advancing
    /// thread touches.
    #[inline]
    fn resolve_handler<'a>(&self, memo: &'a mut Option<HandlerMemo>, dispatch: u16) -> &'a DispatchFn {
        let generation = self.dispatch_gen.load(Ordering::Acquire);
        let hit = matches!(memo, Some((g, d, _)) if *g == generation && *d == dispatch);
        if !hit {
            *memo = Some((generation, dispatch, self.handler(dispatch)));
        }
        &memo.as_ref().expect("memo just filled").2
    }

    // ---- initiation --------------------------------------------------------

    /// Post a work function to be executed by whichever thread advances
    /// this context next (commthread handoff). Lock-free; wakes parked
    /// commthreads.
    pub fn post(&self, work: WorkFn) {
        self.work.push((Stamp::now(), work));
        self.wakeup.touch();
    }

    /// Latency-optimized short send: the payload is copied immediately into
    /// the message and, when injection resources allow, moved now by the
    /// calling thread (`PAMI_Send_immediate`). Completes locally before
    /// returning.
    ///
    /// # Errors
    /// [`PamiError::TooLong`] if `payload` exceeds one packet (512 bytes) —
    /// callers fall back to [`Context::send`]. [`PamiError::Invalid`] for a
    /// reserved dispatch id, [`PamiError::UnknownEndpoint`] when `dest` was
    /// never created.
    pub fn send_immediate(
        &self,
        dest: Endpoint,
        dispatch: u16,
        metadata: &[u8],
        payload: &[u8],
    ) -> PamiResult<()> {
        if payload.len() > bgq_torus::packet::MAX_PAYLOAD_BYTES {
            return Err(PamiError::TooLong {
                len: payload.len(),
                max: bgq_torus::packet::MAX_PAYLOAD_BYTES,
            });
        }
        if dispatch >= DISPATCH_INTERNAL_BASE {
            return Err(PamiError::Invalid("dispatch id in the reserved range"));
        }
        // Endpoint failover: a failed-over destination re-targets its
        // standby (identity — one relaxed load — until a failover fires).
        let dest = Endpoint { task: self.machine.resolve_task(dest.task), ..dest };
        self.probes.sends_short.incr_pinned(self.offset as usize);
        // One-packet immediates ARE short-tier sends: one inline envelope,
        // no descriptor, no injection queue — and the delivery outcome
        // feeds the policy's *short* cost model through the short-flagged
        // packet instead of polluting the eager one.
        let stamp = self.send_stamp();
        let dest_node = self.machine.task_node(dest.task);
        // An immediate must not overtake records already coalescing for
        // the same destination: cut that bucket first (no-op when empty).
        self.flush_aggr_conflict(dest, dest_node);
        if dest_node == self.node {
            let addr = self.addr_of(dest)?;
            addr.mailbox.deliver(ShmMsg {
                src: self.endpoint(),
                dispatch,
                metadata: Bytes::copy_from_slice(metadata),
                stamp,
                payload: ShmPayload::Inline(Bytes::copy_from_slice(payload)),
            });
            return Ok(());
        }
        let rec_fifo = self.rec_fifo_of(dest)?;
        self.machine.fabric().send_short_now(
            self.node,
            dest_node,
            rec_fifo,
            self.offset,
            dispatch,
            self.envelope_for(stamp, metadata),
            Bytes::copy_from_slice(payload),
            None,
        );
        Ok(())
    }

    /// Active-message send. Short messages go eager over the memory-FIFO
    /// path (or the shared-memory inline path on-node); messages above the
    /// eager limit use the rendezvous remote-get protocol (or the
    /// global-VA single-copy path on-node). `args.local_done` fires once
    /// the payload has left the source buffer; under a fault plan it can
    /// instead *fail* with a [`bgq_hw::DeliveryFault`] when the reliability
    /// layer gives up on the destination.
    ///
    /// # Errors
    /// [`PamiError::Invalid`] for a reserved dispatch id,
    /// [`PamiError::UnknownEndpoint`] when the destination was never
    /// created. Delivery failures are reported asynchronously through
    /// `args.local_done`, never from this call.
    pub fn send(&self, args: SendArgs) -> PamiResult<()> {
        if args.dispatch >= DISPATCH_INTERNAL_BASE {
            return Err(PamiError::Invalid("dispatch id in the reserved range"));
        }
        // Endpoint failover remap, ahead of node/FIFO/policy resolution.
        let mut args = args;
        args.dest.task = self.machine.resolve_task(args.dest.task);
        let dest_node = self.machine.task_node(args.dest.task);
        if dest_node == self.node {
            // On-node sends never coalesce (the mailbox is already one
            // hop), but they must not overtake a bucket a failover left
            // pointing at this node.
            self.flush_aggr_conflict(args.dest, dest_node);
            self.probes.sends_shm.incr_pinned(self.offset as usize);
            return self.send_shm(args);
        }
        let rec_fifo = self.rec_fifo_of(args.dest)?;
        let len = args.payload.len();
        let mut proto = match self.fixed_thresholds {
            // Destination-independent ladder: pick inline, no virtual call.
            Some((aggr, short, limit)) => {
                if aggr > 0 && len <= aggr {
                    Protocol::Aggregated
                } else if short > 0 && len <= short {
                    Protocol::Short
                } else if len <= limit {
                    Protocol::Eager
                } else {
                    Protocol::Rendezvous
                }
            }
            None => self.machine.policy().select(args.dest.task, len),
        };
        if proto == Protocol::Aggregated {
            match &self.aggr {
                Some(aggr) if aggr.record_fits(args.metadata.len(), len) => {
                    // Append into the destination's coalescing bucket; any
                    // frame the append cuts (fill) is injected here, under
                    // the aggregator lock, so frames leave in cut order.
                    // The payload is copied out now, so local completion
                    // is immediate — same credit rule as the inline shm
                    // path.
                    self.probes.sends_aggr.incr_pinned(self.offset as usize);
                    let key = self.aggr_key(args.dest, dest_node);
                    // Borrow the payload bytes in place: the append copies
                    // them into the bucket, so the immediate path needs no
                    // refcount round-trip and the region path materializes
                    // exactly once.
                    let region_copy;
                    let payload: &[u8] = match &args.payload {
                        PayloadSource::Immediate(b) => b,
                        other => {
                            region_copy = other.to_bytes();
                            &region_copy
                        }
                    };
                    let opened = aggr.append(
                        key,
                        args.dest,
                        args.dispatch,
                        &args.metadata,
                        payload,
                        || self.first_hop_class_of(key),
                        |f| self.send_aggr_frame(f),
                    );
                    if let Some(c) = args.local_done {
                        c.delivered(if len == 0 { 1 } else { len as u64 });
                    }
                    if opened {
                        // First record of a fresh bucket: commthreads park
                        // on the wakeup region, and one of them (or the
                        // app's own advance) must run this bucket's
                        // age-bound flush. Later appends move no deadline
                        // and skip the wakeup.
                        self.wakeup.touch();
                    }
                    return Ok(());
                }
                Some(aggr) => {
                    // Record too big for a frame (oversize metadata): take
                    // the direct short path. The generic conflict flush
                    // below keeps it behind the bucket.
                    aggr.probes.oversize.incr();
                    proto = Protocol::Short;
                }
                // A custom policy said "aggregate" on a machine without
                // the layer: degrade to short.
                None => proto = Protocol::Short,
            }
        }
        // Ordering: a non-aggregated send must not overtake records still
        // coalescing for the same destination — cut that bucket first.
        self.flush_aggr_conflict(args.dest, dest_node);
        let stamp = self.send_stamp();
        match proto {
            Protocol::Short if len <= bgq_torus::packet::MAX_PAYLOAD_BYTES => {
                self.probes.sends_short.incr_pinned(self.offset as usize);
                let fifo = &self.inj_fifos[args.dest.task as usize % self.inj_fifos.len()];
                let metadata = self.envelope_for(stamp, &args.metadata);
                if fifo.is_quiescent() {
                    // Short tier: the destination's pinned FIFO has nothing
                    // queued and no engine mid-pop, so ordering lets the
                    // message skip the injection queue entirely — one
                    // inline envelope, no descriptor, no completion-counter
                    // allocation, no fragment loop.
                    self.machine.fabric().send_short(
                        self.node,
                        fifo,
                        dest_node,
                        rec_fifo,
                        self.offset,
                        args.dispatch,
                        metadata,
                        args.payload.to_bytes(),
                        args.local_done,
                    );
                } else {
                    // Earlier traffic is still queued on this FIFO: keep
                    // the per-destination ordering rule by queueing a
                    // short-flagged descriptor behind it.
                    let desc = Descriptor {
                        dst_node: dest_node,
                        dst_context: args.dest.context,
                        src_context: self.offset,
                        routing: bgq_torus::Routing::Deterministic,
                        payload: args.payload,
                        kind: XferKind::MemoryFifo {
                            rec_fifo,
                            dispatch: args.dispatch,
                            metadata,
                            short: true,
                        },
                        inj_counter: args.local_done,
                    };
                    self.machine.fabric().inject_handle(self.node, fifo, desc);
                }
            }
            Protocol::Short | Protocol::Eager => {
                self.probes.sends_eager.incr_pinned(self.offset as usize);
                let desc = Descriptor {
                    dst_node: dest_node,
                    dst_context: args.dest.context,
                    src_context: self.offset,
                    routing: bgq_torus::Routing::Deterministic,
                    payload: args.payload,
                    kind: XferKind::MemoryFifo {
                        rec_fifo,
                        dispatch: args.dispatch,
                        metadata: self.envelope_for(stamp, &args.metadata),
                        short: false,
                    },
                    inj_counter: args.local_done,
                };
                self.inject_to(args.dest.task, desc);
            }
            Protocol::Rendezvous => {
                // Rendezvous: register the source, send an RTS; the target
                // pulls the payload with a remote get.
                self.probes.sends_rzv.incr_pinned(self.offset as usize);
                let key = self.machine.rzv_register(args.payload, args.local_done);
                let rts = wire::rts(args.dispatch, len as u64, key, &args.metadata);
                let desc = Descriptor {
                    dst_node: dest_node,
                    dst_context: args.dest.context,
                    src_context: self.offset,
                    routing: bgq_torus::Routing::Deterministic,
                    payload: PayloadSource::Immediate(Bytes::new()),
                    kind: XferKind::MemoryFifo {
                        rec_fifo,
                        dispatch: DISPATCH_RZV_RTS,
                        metadata: wire::envelope(self.task, stamp, &rts),
                        short: false,
                    },
                    inj_counter: None,
                };
                self.inject_to(args.dest.task, desc);
            }
            Protocol::Aggregated => unreachable!("aggregated sends return from the append arm"),
        }
        Ok(())
    }

    /// One-sided put into a registered window on another task's node — an
    /// RDMA write. `args.local_done` fires when the source bytes have been
    /// read; the window's own counter fires on the target as bytes land.
    ///
    /// # Errors
    /// [`PamiError::UnknownWindow`] when `args.window` does not resolve.
    pub fn put(&self, args: crate::proto::PutArgs) -> PamiResult<()> {
        let crate::proto::PutArgs { dest_task, window, payload, local_done } = args;
        let dest_task = self.machine.resolve_task(dest_task);
        self.probes.puts.incr_pinned(self.offset as usize);
        let win =
            self.machine.window(window.key).ok_or(PamiError::UnknownWindow(window.key.0))?;
        let desc = Descriptor {
            dst_node: self.machine.task_node(dest_task),
            dst_context: 0,
            src_context: self.offset,
            routing: bgq_torus::Routing::Dynamic,
            payload,
            kind: XferKind::DirectPut {
                dst_region: win.region,
                dst_offset: window.offset,
                rec_counter: win.counter,
            },
            inj_counter: local_done,
        };
        self.inject_to(dest_task, desc);
        Ok(())
    }

    /// One-sided get from a registered window on another task's node into
    /// a local slot — an RDMA read. `args.done` fires (by `len`, or 1 for
    /// empty) when the data has landed locally.
    ///
    /// # Errors
    /// [`PamiError::UnknownWindow`] when `args.window` does not resolve.
    pub fn get(&self, args: crate::proto::GetArgs) -> PamiResult<()> {
        let crate::proto::GetArgs { dest_task, window, dst, len, done } = args;
        let dest_task = self.machine.resolve_task(dest_task);
        self.probes.gets.incr_pinned(self.offset as usize);
        let win =
            self.machine.window(window.key).ok_or(PamiError::UnknownWindow(window.key.0))?;
        let put_back = Descriptor {
            dst_node: self.node,
            dst_context: self.offset,
            src_context: self.offset,
            routing: bgq_torus::Routing::Dynamic,
            payload: PayloadSource::Region { region: win.region, offset: window.offset, len },
            kind: XferKind::DirectPut {
                dst_region: dst.region,
                dst_offset: dst.offset,
                rec_counter: done,
            },
            inj_counter: None,
        };
        let desc = Descriptor {
            dst_node: self.machine.task_node(dest_task),
            dst_context: 0,
            src_context: self.offset,
            routing: bgq_torus::Routing::Deterministic,
            payload: PayloadSource::Immediate(Bytes::new()),
            kind: XferKind::RemoteGet { payload: Box::new(put_back) },
            inj_counter: None,
        };
        self.inject_to(dest_task, desc);
        Ok(())
    }

    /// Remote atomic read-modify-write (fetch-add / compare-swap / min /
    /// max) against an 8-byte little-endian word in a registered window on
    /// another task's node. The operation applies atomically at the
    /// target; the prior value is written to `args.result` (when given)
    /// and `args.done` fires by [`Descriptor::ZERO_LEN_CREDIT`] once both
    /// are in place.
    ///
    /// With [`crate::MachineBuilder::combining`] enabled, fetch-adds to
    /// the same (window, offset) coalesce at every torus hop on the way to
    /// the target — N hot-key requesters reach the root as O(log N)
    /// combined packets, and each still observes a prior value consistent
    /// with some serial order (the overlay decombines by prefix sum).
    ///
    /// # Errors
    /// [`PamiError::UnknownWindow`] when `args.window` does not resolve.
    pub fn rmw(&self, args: crate::proto::RmwArgs) -> PamiResult<()> {
        let crate::proto::RmwArgs { dest_task, window, op, operand, compare, result, done } =
            args;
        let dest_task = self.machine.resolve_task(dest_task);
        self.probes.rmws.incr_pinned(self.offset as usize);
        let win =
            self.machine.window(window.key).ok_or(PamiError::UnknownWindow(window.key.0))?;
        let desc = Descriptor {
            dst_node: self.machine.task_node(dest_task),
            dst_context: 0,
            src_context: self.offset,
            routing: bgq_torus::Routing::Deterministic,
            payload: PayloadSource::Immediate(Bytes::new()),
            kind: XferKind::Rmw {
                win_key: window.key.0,
                dst_region: win.region,
                dst_offset: window.offset,
                op,
                operand,
                compare,
                reply: result.map(|s| bgq_mu::RmwReply { region: s.region, offset: s.offset }),
            },
            inj_counter: done,
        };
        self.inject_to(dest_task, desc);
        Ok(())
    }

    // ---- aggregation ------------------------------------------------------

    /// Cut every open coalescing bucket now and inject the frames
    /// (`pami::aggr`'s explicit flush). Frames leave grouped by the
    /// dimension-ordered first hop of their destination. Returns the
    /// number of frames injected; 0 when aggregation is off or idle.
    pub fn flush_aggr(&self) -> usize {
        match &self.aggr {
            Some(aggr) => aggr.flush_all(|f| self.send_aggr_frame(f)),
            None => 0,
        }
    }

    /// Buffered (appended, not yet injected) aggregated records.
    pub fn aggr_pending(&self) -> usize {
        self.aggr.as_ref().map_or(0, |a| a.pending())
    }

    /// The bucket key a send to `dest` coalesces under: the endpoint
    /// itself, or — in node-bucket (TRAM intermediate) mode — the lead
    /// endpoint of the destination node, so every task behind the same
    /// dimension-ordered first hop shares one bucket.
    fn aggr_key(&self, dest: Endpoint, dest_node: u32) -> Endpoint {
        match &self.aggr {
            Some(a) if a.config().node_buckets => {
                Endpoint { task: self.machine.node_tasks(dest_node).start, context: 0 }
            }
            _ => dest,
        }
    }

    /// Conflict flush: cut `dest`'s bucket (if open) so a non-aggregated
    /// message cannot overtake records buffered before it. One lock-free
    /// load when nothing is buffered anywhere.
    #[inline]
    fn flush_aggr_conflict(&self, dest: Endpoint, dest_node: u32) {
        if let Some(aggr) = &self.aggr {
            if aggr.pending() > 0 {
                let key = self.aggr_key(dest, dest_node);
                aggr.flush_conflict(key, |f| self.send_aggr_frame(f));
            }
        }
    }

    /// Dimension-ordered first-hop class of the route to `dest` — the
    /// TRAM-style grouping key for flush emission order.
    fn first_hop_class_of(&self, dest: Endpoint) -> u8 {
        let shape = self.machine.shape();
        let dst_node = self.machine.task_node(self.machine.resolve_task(dest.task));
        bgq_torus::first_hop_class(
            shape,
            shape.coords_of(self.node as usize),
            shape.coords_of(dst_node as usize),
        )
    }

    /// Inject one cut frame: a single short-tier packet under the internal
    /// [`DISPATCH_AGGR`] id, on the destination's pinned injection FIFO —
    /// the same FIFO (and, under a fault plan, the same selective-repeat
    /// channel) direct sends to that destination use, which is what keeps
    /// per-(src,dst) order and exactly-once for every record inside.
    /// Failover is resolved at emit time, so a bucket opened before a
    /// failover lands on the standby; an unknown destination drops the
    /// frame (its records were accepted against an endpoint that no longer
    /// exists).
    fn send_aggr_frame(&self, frame: Frame) {
        let addressed =
            self.aggr.as_ref().expect("frame emitted without an aggregator").config().node_buckets;
        let task = self.machine.resolve_task(frame.dest.task);
        let dest = Endpoint { task, context: frame.dest.context };
        let dest_node = self.machine.task_node(task);
        let stamp = self.send_stamp();
        let hdr = crate::aggr::frame_header(frame.count, addressed);
        if dest_node == self.node {
            // Post-failover edge: the bucket's destination now lives on
            // this node. The frame rides the mailbox; `handle_shm`
            // unbatches it.
            if let Ok(addr) = self.addr_of(dest) {
                addr.mailbox.deliver(ShmMsg {
                    src: self.endpoint(),
                    dispatch: DISPATCH_AGGR,
                    metadata: Bytes::copy_from_slice(&hdr),
                    stamp,
                    payload: ShmPayload::Inline(frame.payload),
                });
            }
            return;
        }
        let Ok(rec_fifo) = self.rec_fifo_of(dest) else { return };
        let fifo = &self.inj_fifos[task as usize % self.inj_fifos.len()];
        let metadata = wire::envelope(self.task, stamp, &hdr);
        // A frame that fits one short-tier packet rides it whole (with the
        // cut-through when the FIFO is quiescent); a larger frame rides the
        // eager packet train and is reassembled before unbatching.
        let single_packet = frame.payload.len() <= bgq_torus::packet::MAX_PAYLOAD_BYTES;
        if single_packet && fifo.is_quiescent() {
            self.machine.fabric().send_short(
                self.node,
                fifo,
                dest_node,
                rec_fifo,
                self.offset,
                DISPATCH_AGGR,
                metadata,
                frame.payload,
                None,
            );
        } else {
            let quiescent = fifo.is_quiescent();
            let desc = Descriptor {
                dst_node: dest_node,
                dst_context: dest.context,
                src_context: self.offset,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(frame.payload),
                kind: XferKind::MemoryFifo {
                    rec_fifo,
                    dispatch: DISPATCH_AGGR,
                    metadata,
                    short: single_packet,
                },
                inj_counter: None,
            };
            if quiescent {
                // Multi-packet train with nothing queued ahead of it: the
                // `PAMI_Send_immediate` path executes the descriptor here,
                // skipping the queue round trip without overtaking anything.
                self.machine.fabric().execute_now(self.node, desc);
            } else {
                self.machine.fabric().inject_handle(self.node, fifo, desc);
            }
        }
    }

    /// Unbatch one aggregated frame: walk its records and dispatch each
    /// through the handler memo exactly as if it had arrived as its own
    /// short message. Addressed (node-bucket) records whose endpoint is
    /// not this context forward over the node's shared-memory mailboxes.
    /// Returns the number of records dispatched inline.
    fn unbatch_aggr_frame(
        &self,
        memo: &mut Option<HandlerMemo>,
        src: Endpoint,
        stamp: Stamp,
        hdr: &[u8],
        payload: Bytes,
    ) -> u64 {
        let (count, addressed) = crate::aggr::open_frame_header(hdr);
        let mut inline = 0u64;
        let mut forwarded = 0u64;
        // Borrowed record walk: handlers dispatch straight from the frame
        // buffer with zero refcount traffic; only forwarded records (and
        // non-empty metadata) pay a zero-copy `Bytes::slice`.
        bgq_mu::batch::walk_records(&payload, count, addressed, |rec| {
            match rec.dest {
                Some((task, context))
                    if !(task == self.task && context == self.offset) =>
                {
                    // A sibling endpoint's record: one mailbox hop.
                    let dest = Endpoint { task, context };
                    if let Ok(addr) = self.addr_of(dest) {
                        let meta_end = rec.meta_at + rec.metadata.len();
                        addr.mailbox.deliver(ShmMsg {
                            src,
                            dispatch: rec.dispatch,
                            metadata: payload.slice(rec.meta_at..meta_end),
                            stamp,
                            payload: ShmPayload::Inline(
                                payload.slice(meta_end..meta_end + rec.payload.len()),
                            ),
                        });
                        forwarded += 1;
                    }
                }
                _ => {
                    let msg = IncomingMsg {
                        src,
                        dispatch: rec.dispatch,
                        metadata: if rec.metadata.is_empty() {
                            Bytes::new()
                        } else {
                            payload.slice(rec.meta_at..rec.meta_at + rec.metadata.len())
                        },
                        len: rec.payload.len() as u64,
                    };
                    let handler = self.resolve_handler(memo, rec.dispatch);
                    match handler(self, &msg, rec.payload) {
                        Recv::Done => {}
                        Recv::Into { region, offset, on_complete } => {
                            region.write(offset, rec.payload);
                            on_complete(self, Ok(()));
                        }
                    }
                    inline += 1;
                }
            }
        });
        if let Some(aggr) = &self.aggr {
            aggr.probes.unbatched.add(inline + forwarded);
            if forwarded > 0 {
                aggr.probes.forwarded.add(forwarded);
            }
        }
        inline
    }

    /// Injection-FIFO pinning: every message to `dest_task` from this
    /// context uses the same FIFO, "so that the same FIFO is used every
    /// time for a given destination" — the ordering rule.
    fn inject_to(&self, dest_task: u32, desc: Descriptor) {
        // Cached-handle injection: no FIFO-table lookup on the send path.
        let fifo = &self.inj_fifos[dest_task as usize % self.inj_fifos.len()];
        self.machine.fabric().inject_handle(self.node, fifo, desc);
    }

    /// Resolve `dest` to its physical address, typed-error on miss. The
    /// machine's dense endpoint cache answers without the registry RwLock;
    /// only out-of-envelope endpoints (clients beyond the first, context
    /// offsets ≥ 16, very large machines) fall back to the map.
    fn addr_of(&self, dest: Endpoint) -> PamiResult<crate::machine::EndpointAddr> {
        if let Some(addr) = self.machine.endpoint_addr_fast(self.client, dest.task, dest.context) {
            return Ok(addr.clone());
        }
        self.machine
            .endpoint_addr(self.client, dest.task, dest.context)
            .ok_or(PamiError::UnknownEndpoint { task: dest.task, context: dest.context })
    }

    /// Resolve just the destination's reception FIFO id — the only piece of
    /// the address the off-node eager/rendezvous path needs. Cache hits are
    /// one index + acquire load and copy out a plain id: no lock, no hash,
    /// and no `Arc` refcount RMW on a cacheline shared with other senders.
    #[inline]
    fn rec_fifo_of(&self, dest: Endpoint) -> PamiResult<RecFifoId> {
        if let Some(addr) = self.machine.endpoint_addr_fast(self.client, dest.task, dest.context) {
            return Ok(addr.rec_fifo);
        }
        self.machine
            .endpoint_addr(self.client, dest.task, dest.context)
            .map(|a| a.rec_fifo)
            .ok_or(PamiError::UnknownEndpoint { task: dest.task, context: dest.context })
    }

    /// Wire envelope for `metadata`. Under a feedback-free policy the stamp
    /// is always zero, so the empty-metadata envelope is a per-context
    /// constant — clone the pre-built one instead of serializing 12 bytes
    /// into a fresh allocation per message.
    #[inline]
    fn envelope_for(&self, stamp: Stamp, metadata: &[u8]) -> Bytes {
        if metadata.is_empty() && !self.policy_feedback {
            self.flood_envelope.clone()
        } else {
            wire::envelope(self.task, stamp, metadata)
        }
    }

    fn send_shm(&self, args: SendArgs) -> PamiResult<()> {
        let addr = self.addr_of(args.dest)?;
        let len = args.payload.len();
        let stamp = self.send_stamp();
        // On-node, short, eager and would-be-aggregated are the same
        // inline mailbox path; only rendezvous-class payloads take the
        // global-VA single-copy route.
        let eager = matches!(
            self.machine.policy().select(args.dest.task, len),
            Protocol::Short | Protocol::Eager | Protocol::Aggregated
        );
        let payload = if eager {
            let bytes = args.payload.to_bytes();
            if let Some(c) = args.local_done {
                c.delivered(if len == 0 { 1 } else { len as u64 });
            }
            ShmPayload::Inline(bytes)
        } else {
            match args.payload {
                PayloadSource::Region { region, offset, len } => {
                    // Publish the source buffer in the CNK global-VA table;
                    // the receiver resolves and copies directly from it.
                    let local_rank = self.machine.task_local_rank(self.task);
                    let va = self.machine.global_va(self.node);
                    let id = va.publish(local_rank, region);
                    ShmPayload::GlobalVa {
                        addr: bgq_hw::GlobalAddress { local_rank, region: id, offset },
                        len,
                        done: args.local_done,
                    }
                }
                PayloadSource::Immediate(b) => {
                    if let Some(c) = args.local_done {
                        c.delivered(b.len().max(1) as u64);
                    }
                    ShmPayload::Inline(b)
                }
            }
        };
        addr.mailbox.deliver(ShmMsg {
            src: self.endpoint(),
            dispatch: args.dispatch,
            metadata: Bytes::from(args.metadata),
            stamp,
            payload,
        });
        Ok(())
    }

    // ---- progress ---------------------------------------------------------

    /// Advance this context: run posted work, pump injection, service the
    /// node's system FIFO, dispatch received MU packets and shared-memory
    /// messages, and fire completed rendezvous callbacks. Returns the
    /// number of events processed. Concurrent calls are safe; the loser
    /// makes no progress and returns 0.
    pub fn advance(&self) -> usize {
        // Empty fast path: when every queue this context drains is
        // observably empty, return without taking the advance lock at all —
        // the polling-loop cost the paper's latency numbers depend on.
        let pin = self.offset as usize;
        self.probes.advance_calls.incr_pinned(pin);
        if self.observably_idle() {
            self.probes.idle_fastpath_hits.incr_pinned(pin);
            return 0;
        }
        let Some(mut st) = self.advance_state.try_lock() else {
            return 0;
        };
        let events = self.advance_locked(&mut st);
        self.probes.advance_events.add_pinned(pin, events as u64);
        events
    }

    /// Lock-free probe of every queue `advance` would drain. `true` means a
    /// full `advance` would process zero events right now.
    #[inline]
    fn observably_idle(&self) -> bool {
        self.work.is_empty()
            && self.rec_fifo.is_empty()
            && self.mailbox.queue.is_empty()
            && self.pending_internal.load(Ordering::Acquire) == 0
            // Buffered-but-young aggregation buckets do NOT defeat the
            // fast path: nothing to do until the age deadline lapses, and
            // treating every pending record as work would put the whole
            // advance walk on the per-send cost of an aggregated flood.
            && self.aggr.as_ref().is_none_or(|a| !a.due_now())
            && (!self.inline_engine
                || (self.inj_fifos.iter().all(|f| f.queue.is_empty())
                    && self.sys_fifo.queue.is_empty()
                    && self.machine.fabric().links_idle(self.node)))
    }

    /// Keep advancing (yielding the CPU in between) until `cond` is true.
    pub fn advance_until(&self, mut cond: impl FnMut() -> bool) {
        while !cond() {
            if self.advance() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Whether the context believes it has nothing to do (used by
    /// commthreads to decide to park). Non-blocking: reads only lock-free
    /// queue-emptiness probes and the `pending_internal` counter, so a
    /// commthread can poll it while another thread holds the advance lock.
    pub fn is_quiescent(&self) -> bool {
        self.work.is_empty()
            && self.rec_fifo.is_empty()
            && self.mailbox.queue.is_empty()
            && self.pending_internal.load(Ordering::Acquire) == 0
            && self.aggr.as_ref().is_none_or(|a| a.pending() == 0)
            && self.machine.fabric().links_idle(self.node)
    }

    fn advance_locked(&self, st: &mut AdvanceState) -> usize {
        let mut events = 0usize;
        let pin = self.offset as usize;
        let mut bc = BatchCounters::default();

        // 1. Posted work (commthread handoff path). The handoff latency —
        //    post() to here — is the cost the paper's commthread design
        //    tries to hide; record it before running the item.
        let mut work_done = 0u64;
        for _ in 0..WORK_BUDGET {
            match self.work.pop() {
                Some((posted, work)) => {
                    self.probes.ctx_handoff_ns.record_since(posted);
                    if on_commthread() {
                        self.probes.handoff_ns.record_since(posted);
                    }
                    work(self);
                    work_done += 1;
                    events += 1;
                }
                None => break,
            }
        }
        if work_done > 0 {
            self.probes.work_items.add_pinned(pin, work_done);
        }

        // 1b. Aggregation age bound: when the earliest open bucket's µs
        //     budget has lapsed (one lock-free probe + one clock read),
        //     cut due buckets grouped by first-hop class so the frames are
        //     injected (and pumped just below) this advance.
        if let Some(aggr) = &self.aggr {
            if aggr.due_now() {
                events += aggr.flush_due(|f| self.send_aggr_frame(f));
            }
        }

        // 2. Pump this context's own injection FIFOs (inline engine mode;
        //    with threaded engines this finds them empty).
        if self.inline_engine {
            for fifo in &self.inj_fifos {
                events += self.machine.fabric().pump_inj_handle(self.node, fifo, INJ_BUDGET);
            }
            // 3. Service the node's system FIFO (remote gets targeting any
            //    context on this node) and, under a fault plan, the node's
            //    link channels (retransmit timers, delayed frames); one
            //    context at a time. Gated on observable work so the common
            //    (no remote gets, no faults) case costs two lock-free
            //    emptiness probes, not a try_lock RMW on a mutex cacheline
            //    shared by every context on the node.
            if !self.sys_fifo.queue.is_empty() || !self.machine.fabric().links_idle(self.node) {
                if let Some(_guard) = self.machine.sys_pump[self.node as usize].try_lock() {
                    events += self.machine.fabric().pump_sys(self.node, SYS_BUDGET);
                    events += self.machine.fabric().pump_links(self.node, SYS_BUDGET);
                }
            }
        }

        // 4. MU reception, drained in one queue transaction: the batch
        //    claim publishes the consumer cursor (and re-opens producer
        //    ring space) once per advance instead of once per packet, so
        //    a flood ping-pongs the producer-shared cachelines per batch.
        //    The scratch buffer is moved out of `st` while packets are
        //    handled (handlers borrow `st` mutably) and moved back after.
        let mut batch = std::mem::take(&mut st.rec_scratch);
        let received = self.rec_fifo.poll_batch(RECV_BUDGET, &mut batch);
        for pkt in batch.drain(..) {
            self.handle_mu_packet(st, &mut bc, pkt);
        }
        events += received;
        st.rec_scratch = batch;

        // 5. Shared-memory mailbox.
        for _ in 0..RECV_BUDGET {
            match self.mailbox.queue.pop() {
                Some(msg) => {
                    self.handle_shm(&mut st.handler_memo, msg);
                    bc.dispatched += 1;
                    events += 1;
                }
                None => break,
            }
        }

        // 6. Rendezvous receive completions (poll the counters).
        if !st.rzv_pending.is_empty() {
            let mut i = 0;
            while i < st.rzv_pending.len() {
                if st.rzv_pending[i].done.is_complete() {
                    let pending = st.rzv_pending.swap_remove(i);
                    self.pending_internal.fetch_sub(1, Ordering::AcqRel);
                    // A failed counter still reads complete — that is what
                    // keeps this poll (and advance) from hanging when the
                    // reliability layer gives up on the pull. The fault
                    // becomes the callback's typed result.
                    let result = match pending.done.fault() {
                        None => Ok(()),
                        Some(fault) => Err(PamiError::from(fault)),
                    };
                    if result.is_ok() {
                        self.observe(|| ProtoEvent::RzvComplete {
                            dest: self.task,
                            len: pending.len,
                            ns: pending.stamp.elapsed_ns(),
                        });
                    }
                    if let Some(cb) = pending.on_complete {
                        cb(self, result);
                    }
                    events += 1;
                } else {
                    i += 1;
                }
            }
        }

        // Flush the advance-batched counters: one striped add per probe per
        // advance call instead of a shared-counter RMW per packet.
        if bc.dispatched > 0 {
            self.probes.messages_dispatched.add_pinned(pin, bc.dispatched);
        }
        if bc.copies > 0 {
            self.machine.fabric().note_payload_copies(self.node, pin, bc.copies);
        }

        events
    }

    /// Send-side stamp for the wire envelope: a real clock read only when
    /// the policy consumes delivery feedback (zero otherwise, and always
    /// zero-sized with telemetry off).
    #[inline]
    fn send_stamp(&self) -> Stamp {
        if self.policy_feedback {
            Stamp::now()
        } else {
            Stamp::from_ns(0)
        }
    }

    /// Feed a delivery outcome back to the machine's protocol policy. The
    /// policy is machine-wide and the stamp rides the process-global clock,
    /// so the receiving context can report on the sender's behalf. The
    /// event is built lazily so the delivery path never reads the clock
    /// under a feedback-free (static) policy; compiles away entirely with
    /// telemetry off.
    #[inline]
    fn observe(&self, ev: impl FnOnce() -> ProtoEvent) {
        if self.policy_feedback {
            self.machine.policy().observe(ev());
        }
    }

    fn handle_mu_packet(&self, st: &mut AdvanceState, bc: &mut BatchCounters, mut pkt: MuPacket) {
        if pkt.is_first() {
            let (src_task, stamp, body) = wire::open_envelope(&pkt.metadata);
            let src = Endpoint { task: src_task, context: pkt.src_context };
            if pkt.dispatch == DISPATCH_RZV_RTS {
                self.handle_rts(st, bc, src, stamp, &body);
                return;
            }
            if pkt.dispatch == DISPATCH_CHAN_REQ {
                self.handle_chan_req(src, &body);
                bc.dispatched += 1;
                return;
            }
            if pkt.dispatch == DISPATCH_AGGR {
                if pkt.is_last() {
                    // A single-packet frame: unbatch and dispatch every
                    // record straight from the packet buffer.
                    let payload = match &pkt.payload {
                        bgq_mu::PacketPayload::Inline(b) => b.clone(),
                        _ => Bytes::copy_from_slice(pkt.payload.view()),
                    };
                    bc.dispatched += self.unbatch_aggr_frame(
                        &mut st.handler_memo,
                        src,
                        stamp,
                        &body,
                        payload,
                    );
                    return;
                }
                // A multi-packet frame (eager train): stage the packets in
                // a scratch region and unbatch once the last one lands —
                // the records need the full contiguous frame.
                let total = pkt.msg_len as usize;
                let region = MemRegion::zeroed(total);
                let pkt_len = pkt.payload.len();
                pkt.payload.deposit(&region, 0);
                bc.copies += 1;
                let hdr = body.clone();
                let frame_region = region.clone();
                st.reassembly.insert(
                    (pkt.src_node, pkt.msg_id),
                    Reassembly {
                        region,
                        base_offset: 0,
                        remaining: total - pkt_len,
                        on_complete: Some(Box::new(move |ctx: &Context, res| {
                            if res.is_ok() {
                                let payload = Bytes::from(frame_region.to_vec());
                                ctx.unbatch_aggr_frame(
                                    &mut None,
                                    src,
                                    stamp,
                                    &hdr,
                                    payload,
                                );
                            }
                        })),
                        stamp,
                        total_len: total,
                    },
                );
                self.pending_internal.fetch_add(1, Ordering::AcqRel);
                return;
            }
            let msg = IncomingMsg {
                src,
                dispatch: pkt.dispatch,
                metadata: body,
                len: pkt.msg_len as u64,
            };
            bc.dispatched += 1;
            // Split the advance state into disjoint fields: the handler is
            // borrowed from the memo while the reassembly map stays
            // mutable for the Into arm.
            let AdvanceState { handler_memo, reassembly, .. } = st;
            let handler = self.resolve_handler(handler_memo, pkt.dispatch);
            // The handler sees the bytes staged in the packet buffer —
            // everything for an inline payload, nothing for a zero-copy
            // window (the data is still in source memory and must be
            // deposited).
            match handler(self, &msg, pkt.payload.view()) {
                Recv::Done => {
                    assert!(
                        pkt.is_last() && pkt.payload.view().len() == pkt.payload.len(),
                        "Recv::Done on a partial payload ({} of {} bytes)",
                        pkt.payload.view().len(),
                        pkt.msg_len
                    );
                    // The short flag, not the packet count, picks the cost
                    // model: an exploration-eager single packet must feed
                    // the eager EWMA, and vice versa.
                    self.observe(|| {
                        let (dest, len, ns) =
                            (self.task, pkt.msg_len as usize, stamp.elapsed_ns());
                        if pkt.short {
                            ProtoEvent::ShortDelivered { dest, len, ns }
                        } else {
                            ProtoEvent::EagerDelivered { dest, len, ns }
                        }
                    });
                }
                Recv::Into { region, offset, on_complete } => {
                    // The receive-side copy: packet buffer (or source
                    // window) straight into the destination buffer.
                    let pkt_len = pkt.payload.len();
                    pkt.payload.deposit(&region, offset);
                    bc.copies += 1;
                    if pkt.is_last() {
                        self.observe(|| {
                            let (dest, len, ns) =
                                (self.task, pkt.msg_len as usize, stamp.elapsed_ns());
                            if pkt.short {
                                ProtoEvent::ShortDelivered { dest, len, ns }
                            } else {
                                ProtoEvent::EagerDelivered { dest, len, ns }
                            }
                        });
                        on_complete(self, Ok(()));
                    } else {
                        reassembly.insert(
                            (pkt.src_node, pkt.msg_id),
                            Reassembly {
                                region,
                                base_offset: offset,
                                remaining: pkt.msg_len as usize - pkt_len,
                                on_complete: Some(on_complete),
                                stamp,
                                total_len: pkt.msg_len as usize,
                            },
                        );
                        self.pending_internal.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
        } else {
            let key = (pkt.src_node, pkt.msg_id);
            let entry = st
                .reassembly
                .get_mut(&key)
                .expect("continuation packet without a first packet (ordering violated)");
            let pkt_len = pkt.payload.len();
            let dst_offset = entry.base_offset + pkt.offset as usize;
            pkt.payload.deposit(&entry.region, dst_offset);
            bc.copies += 1;
            entry.remaining -= pkt_len;
            if entry.remaining == 0 {
                let mut entry = st.reassembly.remove(&key).expect("entry present");
                self.pending_internal.fetch_sub(1, Ordering::AcqRel);
                self.observe(|| ProtoEvent::EagerDelivered {
                    dest: self.task,
                    len: entry.total_len,
                    ns: entry.stamp.elapsed_ns(),
                });
                if let Some(cb) = entry.on_complete.take() {
                    cb(self, Ok(()));
                }
            }
        }
    }

    fn handle_rts(
        &self,
        st: &mut AdvanceState,
        bc: &mut BatchCounters,
        src: Endpoint,
        stamp: Stamp,
        body: &Bytes,
    ) {
        let (dispatch, len, key, metadata) = wire::open_rts(body);
        let msg = IncomingMsg { src, dispatch, metadata, len };
        bc.dispatched += 1;
        let AdvanceState { handler_memo, rzv_pending, .. } = st;
        let handler = self.resolve_handler(handler_memo, dispatch);
        match handler(self, &msg, &[]) {
            Recv::Done => panic!("rendezvous arrival of {len} bytes cannot be Recv::Done"),
            Recv::Into { region, offset, on_complete } => {
                let entry = self.machine.rzv_take(key);
                let done = Counter::new();
                done.add_expected(len.max(1));
                let src_node = self.machine.task_node(src.task);
                let put_back = Descriptor {
                    dst_node: self.node,
                    dst_context: self.offset,
                    src_context: self.offset,
                    routing: bgq_torus::Routing::Dynamic,
                    payload: entry.payload,
                    kind: XferKind::DirectPut {
                        dst_region: region,
                        dst_offset: offset,
                        rec_counter: Some(done.clone()),
                    },
                    inj_counter: entry.local_done,
                };
                let get = Descriptor {
                    dst_node: src_node,
                    dst_context: src.context,
                    src_context: self.offset,
                    routing: bgq_torus::Routing::Deterministic,
                    payload: PayloadSource::Immediate(Bytes::new()),
                    kind: XferKind::RemoteGet { payload: Box::new(put_back) },
                    inj_counter: None,
                };
                self.inject_to(src.task, get);
                rzv_pending.push(RzvPending {
                    done,
                    on_complete: Some(on_complete),
                    stamp,
                    len: len as usize,
                });
                self.pending_internal.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    fn handle_shm(&self, memo: &mut Option<HandlerMemo>, msg: ShmMsg) {
        if msg.dispatch == DISPATCH_CHAN_REQ {
            // On-node channel offers ride the mailbox with the body as raw
            // metadata (no envelope — shm messages carry the source
            // endpoint natively).
            self.handle_chan_req(msg.src, &msg.metadata);
            return;
        }
        if msg.dispatch == DISPATCH_AGGR {
            // An aggregated frame delivered through the mailbox (node-
            // bucket forwarding never nests, so this is the post-failover
            // on-node emit path): the header rides the metadata field.
            let ShmPayload::Inline(payload) = msg.payload else {
                panic!("aggregated frames are always inline");
            };
            self.unbatch_aggr_frame(memo, msg.src, msg.stamp, &msg.metadata, payload);
            return;
        }
        let info = IncomingMsg {
            src: msg.src,
            dispatch: msg.dispatch,
            metadata: msg.metadata,
            len: msg.payload.len() as u64,
        };
        let handler = self.resolve_handler(memo, msg.dispatch);
        let stamp = msg.stamp;
        match msg.payload {
            ShmPayload::Inline(bytes) => {
                let msg_len = bytes.len();
                match handler(self, &info, &bytes) {
                    Recv::Done => {}
                    Recv::Into { region, offset, on_complete } => {
                        region.write(offset, &bytes);
                        on_complete(self, Ok(()));
                    }
                }
                self.observe(|| ProtoEvent::EagerDelivered {
                    dest: self.task,
                    len: msg_len,
                    ns: stamp.elapsed_ns(),
                });
            }
            ShmPayload::GlobalVa { addr, len, done } => {
                // Resolve the peer's buffer through the CNK global virtual
                // address table (the message-scoped mapping is withdrawn
                // after the copy).
                let va = self.machine.global_va(self.node);
                let (src_region, src_off) = va
                    .resolve_addr(addr)
                    .expect("global-VA payload withdrawn before delivery");
                match handler(self, &info, &[]) {
                    Recv::Done => {
                        assert_eq!(len, 0, "Recv::Done on unread {len}-byte global-VA payload");
                        if let Some(c) = done {
                            c.delivered(1);
                        }
                    }
                    Recv::Into { region, offset, on_complete } => {
                        // The single-copy path: read the peer's memory
                        // through the global virtual address space.
                        region.copy_from(offset, &src_region, src_off, len);
                        if let Some(c) = done {
                            c.delivered(len.max(1) as u64);
                        }
                        self.observe(|| ProtoEvent::RzvComplete {
                            dest: self.task,
                            len,
                            ns: stamp.elapsed_ns(),
                        });
                        on_complete(self, Ok(()));
                    }
                }
                va.unpublish(addr.local_rank, addr.region);
            }
        }
    }

    // ---- persistent channels ----------------------------------------------

    /// Open a persistent channel to `dest`: pre-negotiate a pinned buffer
    /// pair once, then move fixed-size messages with
    /// [`crate::channel::PersistentChannel::post`] /
    /// [`crate::channel::PersistentChannel::wait`] — prebuilt-descriptor
    /// injections with zero matching and zero per-message protocol
    /// decisions. The peer must open a matching channel back (channels
    /// pair in per-peer creation order); this call sends the local buffer
    /// offer and returns immediately — the handshake completes lazily on
    /// first use.
    pub fn channel(
        self: &Arc<Self>,
        dest: Endpoint,
        size: usize,
    ) -> PamiResult<crate::channel::PersistentChannel> {
        crate::channel::PersistentChannel::create(self, dest, size)
    }

    /// Next pairing ordinal for channels to `dest` (the n-th channel this
    /// context opens to a peer pairs with the n-th the peer opens back).
    pub(crate) fn next_chan_ordinal(&self, dest: Endpoint) -> u64 {
        let mut m = self.chan_ordinals.lock();
        let slot = m.entry(dest).or_insert(0);
        let ordinal = *slot;
        *slot += 1;
        ordinal
    }

    /// Send a persistent-channel buffer offer to `dest` over the system
    /// lane (mailbox on-node, an internal-dispatch memory-FIFO message
    /// off-node).
    pub(crate) fn send_chan_offer(&self, dest: Endpoint, body: Vec<u8>) -> PamiResult<()> {
        let dest = Endpoint { task: self.machine.resolve_task(dest.task), ..dest };
        let dest_node = self.machine.task_node(dest.task);
        if dest_node == self.node {
            let addr = self.addr_of(dest)?;
            addr.mailbox.deliver(ShmMsg {
                src: self.endpoint(),
                dispatch: DISPATCH_CHAN_REQ,
                metadata: Bytes::from(body),
                stamp: Stamp::from_ns(0),
                payload: ShmPayload::Inline(Bytes::new()),
            });
            return Ok(());
        }
        let rec_fifo = self.rec_fifo_of(dest)?;
        self.machine.fabric().execute_now(
            self.node,
            Descriptor {
                dst_node: dest_node,
                dst_context: dest.context,
                src_context: self.offset,
                routing: bgq_torus::Routing::Deterministic,
                payload: PayloadSource::Immediate(Bytes::new()),
                kind: XferKind::MemoryFifo {
                    rec_fifo,
                    dispatch: DISPATCH_CHAN_REQ,
                    metadata: wire::envelope(self.task, Stamp::from_ns(0), &body),
                    short: false,
                },
                inj_counter: None,
            },
        );
        Ok(())
    }

    fn handle_chan_req(&self, src: Endpoint, body: &Bytes) {
        let (ordinal, size, mem_key) = wire::open_chan_req(body);
        self.chan_offers.lock().insert(
            (src, ordinal),
            crate::channel::ChanOffer { size, mem_key: crate::machine::MemKey(mem_key) },
        );
    }

    /// Claim the peer's buffer offer for (peer, ordinal), if it has
    /// arrived.
    pub(crate) fn take_chan_offer(
        &self,
        peer: Endpoint,
        ordinal: u64,
    ) -> Option<crate::channel::ChanOffer> {
        self.chan_offers.lock().remove(&(peer, ordinal))
    }

    // ---- statistics --------------------------------------------------------

    /// Sends initiated through this context, across every protocol
    /// (telemetry aggregate; 0 with the `telemetry` feature off).
    pub fn sends_initiated(&self) -> u64 {
        self.probes.sends_short.value()
            + self.probes.sends_aggr.value()
            + self.probes.sends_eager.value()
            + self.probes.sends_rzv.value()
            + self.probes.sends_shm.value()
            + self.probes.puts.value()
            + self.probes.gets.value()
            + self.probes.rmws.value()
    }

    /// Messages dispatched (first packets seen) by this context
    /// (telemetry aggregate; 0 with the `telemetry` feature off).
    pub fn messages_dispatched(&self) -> u64 {
        self.probes.messages_dispatched.value()
    }

    /// Posted work items executed (telemetry aggregate; 0 with the
    /// `telemetry` feature off).
    pub fn work_items_run(&self) -> u64 {
        self.probes.work_items.value()
    }

    /// The reception FIFO id (diagnostics).
    pub fn rec_fifo_id(&self) -> RecFifoId {
        self.rec_fifo_id
    }

    /// This context's exclusive injection FIFO ids (diagnostics).
    pub fn inj_fifo_ids(&self) -> &[InjFifoId] {
        &self.inj_ids
    }

    /// This context's shared-memory mailbox (exposed for tests).
    pub fn mailbox(&self) -> &Arc<ShmMailbox> {
        &self.mailbox
    }
}
