//! Communication threads.
//!
//! "Communication threads are helper threads that perform background
//! advance on one or more PAMI contexts" (paper section III.C). They are
//! the consumers of the work queues that [`Context::post`] feeds, and they
//! realize the CNK commthread discipline: park in the wakeup unit while
//! their contexts are quiescent (consuming no resources, like the PPC
//! `wait` state), wake on the first posted work item or arriving packet,
//! and get out of the way when application threads want the hardware
//! thread ([`CommThreadPool::pause`] models the voluntary drop to the
//! extended-low priority).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bgq_hw::Waiter;
use bgq_upc::Counter;

use crate::context::Context;

/// How long a parked commthread sleeps before rechecking shutdown/pause.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// `commthread.*` telemetry probes, shared by every thread of a pool.
/// (The companion `commthread.handoff_ns` histogram is recorded in
/// `Context::advance`, where posted work actually runs.)
#[derive(Clone)]
struct CommProbes {
    /// Times a commthread entered the parked (wakeup-wait) state.
    parks: Counter,
    /// Times a commthread returned from a park (timeout or wakeup touch).
    wakeups: Counter,
    /// Advance events processed by the pool's threads.
    advances: Counter,
}

struct PoolShared {
    shutdown: AtomicBool,
    paused: AtomicBool,
    advances: AtomicU64,
    parked_threads: AtomicU64,
}

/// A pool of communication threads advancing a set of contexts.
pub struct CommThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    contexts: Vec<Arc<Context>>,
}

/// Whether commthreads bracket each advance with the context user lock.
///
/// The classic MPI library serializes everything through locks, so its
/// commthreads "must acquire the PAMI context locks to make progress" —
/// which is exactly why Table 2 shows the classic library *slower* with
/// commthreads enabled. The thread-optimized library advances lock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockDiscipline {
    /// Advance without the context lock (thread-optimized flavor).
    LockFree,
    /// Take the context user lock around every advance (classic flavor).
    ContextLock,
}

impl CommThreadPool {
    /// Spawn `threads` commthreads over `contexts`, distributed round-robin
    /// (thread `i` owns contexts `i, i+threads, …` — exclusive ownership,
    /// so no advance contention).
    ///
    /// # Panics
    /// If `threads == 0` or `contexts` is empty.
    pub fn spawn(contexts: Vec<Arc<Context>>, threads: usize) -> CommThreadPool {
        Self::spawn_with(contexts, threads, LockDiscipline::LockFree)
    }

    /// Spawn with an explicit lock discipline (see [`LockDiscipline`]).
    pub fn spawn_with(
        contexts: Vec<Arc<Context>>,
        threads: usize,
        discipline: LockDiscipline,
    ) -> CommThreadPool {
        assert!(threads > 0, "a commthread pool needs at least one thread");
        assert!(!contexts.is_empty(), "a commthread pool needs contexts to advance");
        let upc = contexts[0].machine().telemetry();
        let probes = CommProbes {
            parks: upc.counter("commthread.parks"),
            wakeups: upc.counter("commthread.wakeups"),
            advances: upc.counter("commthread.advances"),
        };
        let shared = Arc::new(PoolShared {
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            advances: AtomicU64::new(0),
            parked_threads: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let my: Vec<Arc<Context>> =
                contexts.iter().skip(t).step_by(threads).cloned().collect();
            let shared = Arc::clone(&shared);
            let probes = probes.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("commthread-{t}"))
                    .spawn(move || run_commthread(my, shared, probes, discipline))
                    .expect("spawn commthread"),
            );
        }
        CommThreadPool { shared, handles, contexts }
    }

    /// Contexts served by this pool.
    pub fn contexts(&self) -> &[Arc<Context>] {
        &self.contexts
    }

    /// Ask the commthreads to yield the hardware threads (drop to extended
    /// low priority): they stop advancing and park until [`Self::resume`].
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Let the commthreads run again.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
        // Parked threads notice on their park timeout.
    }

    /// Total advance events the pool has processed.
    pub fn advances(&self) -> u64 {
        self.shared.advances.load(Ordering::Relaxed)
    }

    /// How many of the pool's threads are currently parked in the wakeup
    /// unit (the "consume no resources" state).
    pub fn parked_threads(&self) -> u64 {
        self.shared.parked_threads.load(Ordering::Relaxed)
    }

    /// Stop and join all commthreads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for ctx in &self.contexts {
            ctx.wakeup_region().touch();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CommThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for ctx in &self.contexts {
            ctx.wakeup_region().touch();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn run_commthread(
    contexts: Vec<Arc<Context>>,
    shared: Arc<PoolShared>,
    probes: CommProbes,
    discipline: LockDiscipline,
) {
    // Mark this thread so handoff latencies it measures land in
    // `commthread.handoff_ns` in addition to `ctx.handoff_ns`.
    crate::context::set_commthread_marker(true);
    let mut waiter = Waiter::new();
    for ctx in &contexts {
        waiter.subscribe(ctx.wakeup_region());
    }
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if shared.paused.load(Ordering::Acquire) {
            // Extended-low priority: completely out of the way.
            shared.parked_threads.fetch_add(1, Ordering::Relaxed);
            waiter.wait_timeout(PARK_TIMEOUT);
            shared.parked_threads.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let mut worked = 0usize;
        for ctx in &contexts {
            worked += match discipline {
                LockDiscipline::LockFree => ctx.advance(),
                LockDiscipline::ContextLock => {
                    let _guard = ctx.lock();
                    ctx.advance()
                }
            };
        }
        if worked > 0 {
            shared.advances.fetch_add(worked as u64, Ordering::Relaxed);
            probes.advances.add(worked as u64);
        } else {
            // Nothing to do: enter the wakeup-wait state until a producer
            // touches one of our regions.
            probes.parks.incr();
            shared.parked_threads.fetch_add(1, Ordering::Relaxed);
            waiter.wait_timeout(PARK_TIMEOUT);
            shared.parked_threads.fetch_sub(1, Ordering::Relaxed);
            probes.wakeups.incr();
        }
    }
}
