//! Endpoints — PAMI's communication addresses.
//!
//! "Addressing is not based on processes or tasks but rather on Endpoints
//! within the process. This can be used to provide finer grain addressing
//! within a process that allows different threads to be pinned or attached
//! to specific endpoints" (paper section III.B). An endpoint is a (task,
//! context-offset) pair; the context half is what lets two threads on the
//! same pair of processes communicate over independent channels.

/// A PAMI communication address: task (global process index) plus context
/// offset within that task's client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// Global task (process) index.
    pub task: u32,
    /// Context offset within the destination client.
    pub context: u16,
}

impl Endpoint {
    /// Endpoint for `task`'s context 0 — the address processes without
    /// endpoint awareness use.
    pub fn of_task(task: u32) -> Endpoint {
        Endpoint { task, context: 0 }
    }

    /// Pack into a u64 (hash keys, compact tables).
    pub fn pack(self) -> u64 {
        ((self.task as u64) << 16) | self.context as u64
    }

    /// Inverse of [`Endpoint::pack`].
    pub fn unpack(v: u64) -> Endpoint {
        Endpoint { task: (v >> 16) as u32, context: (v & 0xFFFF) as u16 }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.task, self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for ep in [
            Endpoint { task: 0, context: 0 },
            Endpoint { task: 12345, context: 17 },
            Endpoint { task: u32::MAX >> 8, context: u16::MAX },
        ] {
            assert_eq!(Endpoint::unpack(ep.pack()), ep);
        }
    }

    #[test]
    fn of_task_uses_context_zero() {
        assert_eq!(Endpoint::of_task(9), Endpoint { task: 9, context: 0 });
    }
}
