//! PAMI — the Parallel Active Messaging Interface (IPDPS 2012 reproduction).
//!
//! PAMI is the messaging runtime that underlies MPI on Blue Gene/Q and can
//! host other programming models (UPC, ARMCI, Charm++) at the same time.
//! Its design answers one question: *how do you let millions of threads
//! drive a network without serializing on locks?* The answers this crate
//! reproduces:
//!
//! * **Clients** ([`client::Client`]) — independent network instances; one
//!   per programming-model runtime, each with its own contexts, FIFOs and
//!   dispatch space, so several runtimes coexist in one process.
//! * **Contexts** ([`context::Context`]) — units of thread parallelism.
//!   Each context owns an exclusive partition of the node's MU injection
//!   and reception FIFOs plus a shared-memory mailbox, so advancing a
//!   context never takes a lock. Threads either pin themselves to distinct
//!   contexts, bracket shared use with the context lock, or hand work off
//!   through the lock-free [`bgq_hw::WorkQueue`] via [`context::Context::post`].
//! * **Endpoints** ([`endpoint::Endpoint`]) — (task, context) addresses,
//!   the finer-than-a-process addressing MPI-3 endpoints proposals wanted.
//! * **Protocols** — `send_immediate` for latency, eager memory-FIFO sends
//!   for short messages, rendezvous remote-get for bandwidth, one-sided
//!   put/get over registered windows (paper section III.E), and TRAM-style
//!   small-message aggregation ([`aggr`]) for fine-grained message rate.
//! * **Communication threads** ([`commthread::CommThreadPool`]) — helper
//!   threads that park on the wakeup unit and advance contexts in the
//!   background, giving communication/computation overlap and the message
//!   rate speedups of Figure 5.
//! * **Geometries and collectives** ([`geometry::Geometry`], [`coll`]) —
//!   task groups with hardware-accelerated barrier/broadcast/allreduce via
//!   classroutes and the shared-address intra-node scheme (Figures 3–4),
//!   plus software binomial fallbacks for non-rectangular groups.
//!
//! Everything runs over the simulated BG/Q substrates (`bgq-hw`, `bgq-mu`,
//! `bgq-collnet`, `bgq-torus`); the [`machine::Machine`] bundles them into
//! one partition that application threads (one per task) attach to.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use pami::{Client, Endpoint, Machine, Recv};
//!
//! // A 2-node partition; tasks are threads.
//! let machine = Machine::with_nodes(2).build();
//! let got = Arc::new(AtomicU64::new(0));
//! let got2 = Arc::clone(&got);
//! machine.run(move |env| {
//!     let client = Client::create(&env.machine, env.task, "demo", 1);
//!     let ctx = client.context(0);
//!     if env.task == 1 {
//!         let got = Arc::clone(&got2);
//!         ctx.set_dispatch(1, Arc::new(move |_ctx, _msg, payload| {
//!             assert_eq!(payload, b"hello");
//!             got.fetch_add(1, Ordering::SeqCst);
//!             Recv::Done
//!         }));
//!     }
//!     env.machine.task_barrier(); // all endpoints exist
//!     if env.task == 0 {
//!         ctx.send_immediate(Endpoint::of_task(1), 1, b"", b"hello").unwrap();
//!         ctx.advance(); // drive our side
//!     } else {
//!         ctx.advance_until(|| got2.load(Ordering::SeqCst) == 1);
//!     }
//! });
//! assert_eq!(got.load(Ordering::SeqCst), 1);
//! ```

pub mod aggr;
pub mod channel;
pub mod client;
pub mod coll;
pub mod commthread;
pub mod context;
pub mod endpoint;
pub mod error;
pub mod geometry;
pub mod machine;
pub mod policy;
pub mod proto;
pub mod topology;

pub use aggr::AggrConfig;
pub use channel::PersistentChannel;
pub use client::Client;
pub use commthread::{CommThreadPool, LockDiscipline};
pub use context::{Context, IncomingMsg, Recv};
pub use endpoint::Endpoint;
pub use error::{PamiError, PamiResult};
pub use geometry::Geometry;
pub use coll::{AlgInfo, CollKind, CollRegistry};
pub use machine::{Machine, MachineBuilder, MemKey, TaskEnv, WindowRef};
pub use policy::{
    AdaptiveConfig, AdaptivePolicy, ProtoEvent, Protocol, ProtocolPolicy, StaticPolicy,
};
pub use proto::{GetArgs, MemSlot, PutArgs, RmwArgs, SendArgs};
pub use topology::Topology;

// Re-export the substrate types the public API traffics in.
pub use bgq_collnet::{CollOp, DataType};
pub use bgq_hw::{Counter, DeliveryFault, MemRegion};
pub use bgq_mu::{
    CombCounters, EngineMode, FaultPlan, FaultRates, LinkFault, LinkProtocol, PayloadSource,
    RasCounters, RasEvent, RasEventKind, RetryConfig, RmwOp,
};
pub use bgq_torus::TorusShape;
