//! The typed PAMI error surface — the simulation's `pami_result_t`.
//!
//! Real PAMI reports every operation's outcome as a `pami_result_t`
//! (`PAMI_SUCCESS`, `PAMI_INVAL`, `PAMI_ERROR`, …) and delivers
//! asynchronous failures to completion callbacks through the `result`
//! argument of `pami_event_function`. The simulation mirrors both halves:
//!
//! * **Initiation errors** — bad arguments, unknown endpoints/windows,
//!   over-long immediates — return `Err(PamiError)` from the initiating
//!   call ([`crate::Context::send`], [`crate::Context::send_immediate`],
//!   [`crate::Context::put`], [`crate::Context::get`]) without touching
//!   the network.
//! * **Delivery errors** — a reliability-layer channel dying after its
//!   retry budget, an unreachable destination after link failures — fail
//!   the transfer's completion [`bgq_hw::Counter`] with a
//!   [`DeliveryFault`], which surfaces to completion callbacks as
//!   `Err(PamiError::Timeout)` / `Err(PamiError::Unreachable)` instead of
//!   a hang.
//!
//! Programmer-contract violations (registering an endpoint twice, a
//! handler returning `Recv::Done` for a partial payload) remain panics:
//! they are bugs in the caller, not runtime conditions a correct program
//! can encounter and handle.

use bgq_hw::DeliveryFault;

/// Everything a PAMI operation can report, mirroring `pami_result_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PamiError {
    /// `PAMI_INVAL`: an argument violates the call's contract in a way a
    /// correct program may probe for (reserved dispatch id, zero-length
    /// window, …).
    Invalid(&'static str),
    /// The payload exceeds what the operation can carry (`send_immediate`
    /// beyond one packet). Callers fall back to [`crate::Context::send`].
    TooLong {
        /// Offered payload length.
        len: usize,
        /// The operation's ceiling.
        max: usize,
    },
    /// The destination endpoint was never created — `PAMI_ERROR` at
    /// initiation time.
    UnknownEndpoint {
        /// Destination task.
        task: u32,
        /// Destination context offset.
        context: u16,
    },
    /// A one-sided operation addressed a window key that does not resolve
    /// (never created, or already destroyed).
    UnknownWindow(u64),
    /// No active-message handler is registered for this dispatch id on the
    /// receiving context.
    UnknownDispatch(u16),
    /// The reliability layer exhausted its retry budget: the link-level
    /// channel to the destination is dead (`PAMI_ERROR`, RAS class
    /// *timeout*).
    Timeout,
    /// Link failures disconnected the destination: no healthy route
    /// exists (RAS class *unreachable*).
    Unreachable,
    /// The payload failed its integrity check terminally (RAS class
    /// *corrupt*; transient CRC failures are retransmitted and never
    /// surface here).
    Corrupt,
    /// The transfer was administratively aborted.
    Aborted,
}

/// Result alias used across the PAMI surface — the simulation's
/// `pami_result_t` (`Ok(())` is `PAMI_SUCCESS`).
pub type PamiResult<T> = Result<T, PamiError>;

impl PamiError {
    /// The `pami_result_t` constant this error mirrors.
    pub fn code(&self) -> &'static str {
        match self {
            PamiError::Invalid(_) => "PAMI_INVAL",
            PamiError::TooLong { .. } => "PAMI_INVAL",
            PamiError::UnknownEndpoint { .. } => "PAMI_INVAL",
            PamiError::UnknownWindow(_) => "PAMI_INVAL",
            PamiError::UnknownDispatch(_) => "PAMI_INVAL",
            PamiError::Timeout => "PAMI_ERROR",
            PamiError::Unreachable => "PAMI_ERROR",
            PamiError::Corrupt => "PAMI_ERROR",
            PamiError::Aborted => "PAMI_ERROR",
        }
    }

    /// Whether the error was produced by the delivery path (asynchronous,
    /// reported through completion callbacks) rather than rejected at
    /// initiation.
    pub fn is_delivery(&self) -> bool {
        matches!(
            self,
            PamiError::Timeout | PamiError::Unreachable | PamiError::Corrupt | PamiError::Aborted
        )
    }
}

impl From<DeliveryFault> for PamiError {
    fn from(f: DeliveryFault) -> Self {
        match f {
            DeliveryFault::Timeout => PamiError::Timeout,
            DeliveryFault::Unreachable => PamiError::Unreachable,
            DeliveryFault::Corrupt => PamiError::Corrupt,
            DeliveryFault::Aborted => PamiError::Aborted,
        }
    }
}

impl std::fmt::Display for PamiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PamiError::Invalid(what) => write!(f, "{}: {what}", self.code()),
            PamiError::TooLong { len, max } => {
                write!(f, "{}: payload of {len} bytes exceeds the {max}-byte limit", self.code())
            }
            PamiError::UnknownEndpoint { task, context } => write!(
                f,
                "{}: endpoint (task {task}, context {context}) not registered",
                self.code()
            ),
            PamiError::UnknownWindow(key) => {
                write!(f, "{}: window key {key} does not resolve", self.code())
            }
            PamiError::UnknownDispatch(id) => {
                write!(f, "{}: no handler registered for dispatch {id}", self.code())
            }
            PamiError::Timeout => {
                write!(f, "{}: retry budget exhausted, link channel dead", self.code())
            }
            PamiError::Unreachable => {
                write!(f, "{}: no healthy route to destination", self.code())
            }
            PamiError::Corrupt => write!(f, "{}: payload integrity failure", self.code()),
            PamiError::Aborted => write!(f, "{}: transfer aborted", self.code()),
        }
    }
}

impl std::error::Error for PamiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_mirror_pami_result_t() {
        assert_eq!(PamiError::Invalid("x").code(), "PAMI_INVAL");
        assert_eq!(PamiError::Timeout.code(), "PAMI_ERROR");
        assert_eq!(PamiError::TooLong { len: 600, max: 512 }.code(), "PAMI_INVAL");
    }

    #[test]
    fn delivery_faults_convert() {
        assert_eq!(PamiError::from(DeliveryFault::Timeout), PamiError::Timeout);
        assert_eq!(PamiError::from(DeliveryFault::Unreachable), PamiError::Unreachable);
        assert_eq!(PamiError::from(DeliveryFault::Corrupt), PamiError::Corrupt);
        assert_eq!(PamiError::from(DeliveryFault::Aborted), PamiError::Aborted);
        assert!(PamiError::Timeout.is_delivery());
        assert!(!PamiError::Invalid("x").is_delivery());
    }

    #[test]
    fn display_is_informative() {
        let s = PamiError::TooLong { len: 600, max: 512 }.to_string();
        assert!(s.contains("600") && s.contains("512"));
        assert!(PamiError::Timeout.to_string().contains("retry budget"));
    }
}
