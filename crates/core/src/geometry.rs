//! Geometries: task groups that collectives run over.
//!
//! A geometry is PAMI's communicator-shaped object: an ordered task set
//! ([`Topology`]) plus the machinery collectives need — per-node groups
//! with a leader, an L2-atomic local barrier and a shared-memory "board"
//! for the shared-address protocols, a GI barrier across the member nodes,
//! and (after [`Geometry::optimize`]) a classroute on the collective
//! network. Classroutes are scarce, so optimize can fail with
//! [`bgq_collnet::ClassRouteError::Exhausted`] until some other geometry
//! [`Geometry::deoptimize`]s — exactly the MPIX scheme of section III.D.

use std::collections::HashMap;
use std::sync::Arc;

use bgq_collnet::{ClassRoute, ClassRouteError};
use bgq_hw::{L2Counter, MemRegion};
use bgq_torus::Rectangle;
use bytes::Bytes;
use parking_lot::Mutex;

use crate::context::{Context, IncomingMsg, Recv};
use crate::machine::Machine;
use crate::proto::SendArgs;
use crate::topology::Topology;

/// Dispatch id geometries claim on every context that participates in
/// collectives (reserved by convention; do not register user handlers on
/// it).
pub const DISPATCH_GEOMETRY: u16 = 0xFE00;

/// A sense-reversing barrier over the tasks of one node, built on a single
/// L2 load-increment counter — "the local barrier is implemented via the
/// scalable L2 atomic increment operation".
pub struct LocalBarrier {
    members: u64,
    count: L2Counter,
}

impl LocalBarrier {
    /// A barrier over `members` tasks.
    pub fn new(members: usize) -> Self {
        LocalBarrier { members: members as u64, count: L2Counter::new(0) }
    }

    /// Arrive; returns the generation to poll with
    /// [`LocalBarrier::is_released`].
    pub fn arrive(&self) -> u64 {
        let ticket = self.count.load_increment();
        ticket / self.members
    }

    /// Whether generation `generation` has been fully arrived.
    pub fn is_released(&self, generation: u64) -> bool {
        self.count.load() >= (generation + 1) * self.members
    }
}

/// A value posted on a node board.
#[derive(Clone)]
pub enum BoardEntry {
    /// A reference to a member's buffer, readable by peers through the
    /// global virtual address space.
    Region {
        /// The buffer.
        region: MemRegion,
        /// Payload offset.
        offset: usize,
        /// Payload length.
        len: usize,
    },
    /// Immediate bytes.
    Data(Arc<Vec<u8>>),
}

/// The per-node coordination board for shared-address collectives: members
/// post buffer references under (sequence, slot) keys and read each
/// other's. Stands in for control structures in CNK shared memory.
#[derive(Default)]
pub struct Board {
    slots: Mutex<HashMap<(u64, u32), BoardEntry>>,
}

impl Board {
    /// Post an entry.
    pub fn post(&self, seq: u64, slot: u32, entry: BoardEntry) {
        let prev = self.slots.lock().insert((seq, slot), entry);
        debug_assert!(prev.is_none(), "board slot ({seq},{slot}) posted twice");
    }

    /// Read an entry if present (clones the handle).
    pub fn get(&self, seq: u64, slot: u32) -> Option<BoardEntry> {
        self.slots.lock().get(&(seq, slot)).cloned()
    }

    /// Drop every entry of `seq` (the leader's cleanup after the closing
    /// barrier).
    pub fn clear_seq(&self, seq: u64) {
        self.slots.lock().retain(|(s, _), _| *s != seq);
    }

    /// Entries currently held (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

/// The member tasks of one node, with their leader and local coordination
/// structures.
pub struct NodeGroup {
    /// Member tasks on this node, ascending; index is the "local slot".
    pub tasks: Vec<u32>,
    /// The leader (lowest member task) — the one that talks to the
    /// collective network.
    pub leader: u32,
    /// The L2 local barrier.
    pub barrier: LocalBarrier,
    /// The shared-address coordination board.
    pub board: Board,
}

impl NodeGroup {
    /// The local slot of `task`.
    pub fn slot_of(&self, task: u32) -> u32 {
        self.tasks.iter().position(|&t| t == task).expect("task in its node group") as u32
    }
}

struct GeometryRegistry {
    map: Mutex<HashMap<u32, Arc<Geometry>>>,
}

/// A task group plus its collective machinery. Shared (one `Arc`) by every
/// member task; create collectively with [`Geometry::create`].
pub struct Geometry {
    id: u32,
    topology: Topology,
    machine: Arc<Machine>,
    /// Distinct member nodes, ascending; index = GI slot.
    nodes: Vec<u32>,
    groups: HashMap<u32, NodeGroup>,
    gi: bgq_collnet::GiBarrier,
    /// The exact node rectangle, when the member nodes form one.
    node_rect: Option<Rectangle>,
    route: Mutex<Option<Arc<ClassRoute>>>,
    /// Per-task next collective sequence number.
    seqs: Mutex<HashMap<u32, u64>>,
    /// Software-collective receive store: (dst task, tag, src task) → data.
    sw_store: Mutex<HashMap<(u32, u64, u32), Vec<u8>>>,
}

impl Geometry {
    /// Create (or look up) geometry `id` over `topology`, attaching the
    /// collective dispatch to `ctx`. Collective: every member task calls
    /// this with the same id and an equivalent topology before using the
    /// geometry.
    pub fn create(ctx: &Context, id: u32, topology: Topology) -> Arc<Geometry> {
        let machine = Arc::clone(ctx.machine());
        let registry = machine.shared_state("pami.geometry.registry", || GeometryRegistry {
            map: Mutex::new(HashMap::new()),
        });
        let geometry = {
            let mut map = registry.map.lock();
            if let Some(existing) = map.get(&id) {
                assert_eq!(
                    existing.topology.size(),
                    topology.size(),
                    "geometry {id} re-created with a different topology"
                );
                Arc::clone(existing)
            } else {
                let g = Arc::new(Self::build(&machine, id, topology));
                map.insert(id, Arc::clone(&g));
                g
            }
        };
        Self::attach_dispatch(ctx, &machine);
        geometry
    }

    /// Look up an already-created geometry by id. Registered collective
    /// algorithm bodies receive `&Geometry` and use this to recover the
    /// shared handle when they need to retain it past the call.
    pub fn lookup(machine: &Arc<Machine>, id: u32) -> Option<Arc<Geometry>> {
        let registry = machine.shared_state("pami.geometry.registry", || GeometryRegistry {
            map: Mutex::new(HashMap::new()),
        });
        let map = registry.map.lock();
        map.get(&id).cloned()
    }

    fn build(machine: &Arc<Machine>, id: u32, topology: Topology) -> Geometry {
        let mut node_tasks: HashMap<u32, Vec<u32>> = HashMap::new();
        for task in topology.iter() {
            node_tasks.entry(machine.task_node(task)).or_default().push(task);
        }
        let mut nodes: Vec<u32> = node_tasks.keys().copied().collect();
        nodes.sort_unstable();
        let groups: HashMap<u32, NodeGroup> = node_tasks
            .into_iter()
            .map(|(node, mut tasks)| {
                tasks.sort_unstable();
                let leader = tasks[0];
                let barrier = LocalBarrier::new(tasks.len());
                (node, NodeGroup { tasks, leader, barrier, board: Board::default() })
            })
            .collect();
        let coords: Vec<_> = nodes
            .iter()
            .map(|&n| machine.shape().coords_of(n as usize))
            .collect();
        let node_rect = Rectangle::exactly_covers(&coords);
        let gi = bgq_collnet::GiBarrier::new(nodes.len());
        Geometry {
            id,
            topology,
            machine: Arc::clone(machine),
            nodes,
            groups,
            gi,
            node_rect,
            route: Mutex::new(None),
            seqs: Mutex::new(HashMap::new()),
            sw_store: Mutex::new(HashMap::new()),
        }
    }

    /// Register the geometry message router on `ctx` (idempotent).
    fn attach_dispatch(ctx: &Context, machine: &Arc<Machine>) {
        let machine = Arc::clone(machine);
        ctx.set_dispatch(
            DISPATCH_GEOMETRY,
            Arc::new(move |ctx: &Context, msg: &IncomingMsg, first: &[u8]| {
                let (geom_id, tag) = wire_open(&msg.metadata);
                let registry: Arc<GeometryRegistry> =
                    machine.shared_state("pami.geometry.registry", || GeometryRegistry {
                        map: Mutex::new(HashMap::new()),
                    });
                let geometry = Arc::clone(
                    registry.map.lock().get(&geom_id).expect("geometry message for unknown id"),
                );
                let src = msg.src.task;
                let dst = ctx.task();
                if first.len() as u64 == msg.len {
                    // Whole payload available inline: stash now.
                    geometry.sw_store.lock().insert((dst, tag, src), first.to_vec());
                    return Recv::Done;
                }
                let region = MemRegion::zeroed(msg.len as usize);
                let stash_region = region.clone();
                Recv::Into {
                    region,
                    offset: 0,
                    on_complete: Box::new(move |ctx2: &Context, result| {
                        result.expect("geometry control message failed delivery");
                        geometry
                            .sw_store
                            .lock()
                            .insert((ctx2.task(), tag, src), stash_region.to_vec());
                    }),
                }
            }),
        );
    }

    /// Geometry id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The task set.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Member count.
    pub fn size(&self) -> usize {
        self.topology.size()
    }

    /// Member index ("rank within the geometry") of `task`.
    pub fn rank_of(&self, task: u32) -> Option<usize> {
        self.topology.index_of(task)
    }

    /// Distinct member nodes, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// This geometry's group on `node`.
    pub fn group(&self, node: u32) -> &NodeGroup {
        self.groups.get(&node).expect("node has no members in this geometry")
    }

    /// The GI barrier across member nodes.
    pub fn gi(&self) -> &bgq_collnet::GiBarrier {
        &self.gi
    }

    /// The machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The node rectangle, if the member nodes form one (a prerequisite for
    /// classroute acceleration).
    pub fn node_rect(&self) -> Option<Rectangle> {
        self.node_rect
    }

    /// The classroute, if optimized.
    pub fn route(&self) -> Option<Arc<ClassRoute>> {
        self.route.lock().clone()
    }

    /// Give this geometry a classroute ("optimize the communicator for the
    /// collective network"). Idempotent; any member may call it, typically
    /// all do. Fails when the node set is not rectangular or no route id is
    /// free on every member node.
    pub fn optimize(&self) -> Result<(), ClassRouteError> {
        let mut route = self.route.lock();
        if route.is_some() {
            return Ok(());
        }
        let rect = self.node_rect.ok_or(ClassRouteError::NotRectangular)?;
        let r = self.machine.classroutes().allocate(rect, None)?;
        *route = Some(Arc::new(r));
        Ok(())
    }

    /// Query the collective algorithm list for this geometry — the
    /// `PAMI_Geometry_algorithms_query` analogue. Every registered entry is
    /// returned with its availability evaluated *now*, so the answer flips
    /// live with [`Self::optimize`]/[`Self::deoptimize`].
    pub fn algorithms_query(&self) -> Vec<crate::coll::AlgInfo> {
        self.machine.coll_registry().query(self)
    }

    /// Release the classroute ("deoptimize") so another geometry can use
    /// the id. Collectives fall back to the software algorithms.
    pub fn deoptimize(&self) {
        if let Some(route) = self.route.lock().take() {
            self.machine.classroutes().free(&route);
        }
    }

    /// Next collective sequence number for `task`. Every member consumes
    /// sequence numbers in the same (program) order, which is what matches
    /// their contributions up.
    pub fn next_seq(&self, task: u32) -> u64 {
        let mut seqs = self.seqs.lock();
        let s = seqs.entry(task).or_insert(0);
        let v = *s;
        *s += 1;
        v
    }

    // ---- software-collective point-to-point helpers ----------------------

    /// Send `payload` to geometry member `dst_rank` tagged `tag` (software
    /// collective path).
    pub(crate) fn send_sw(
        &self,
        ctx: &Context,
        dst_rank: usize,
        tag: u64,
        payload: bgq_mu::PayloadSource,
        local_done: Option<bgq_hw::Counter>,
    ) {
        let dest_task = self.topology.task_at(dst_rank);
        ctx.send(SendArgs {
            dest: crate::endpoint::Endpoint::of_task(dest_task),
            dispatch: DISPATCH_GEOMETRY,
            metadata: wire_make(self.id, tag),
            payload,
            local_done,
        })
        .expect("software-collective send to a geometry member");
    }

    /// Receive the message tagged `tag` from geometry member `src_rank`,
    /// advancing `ctx` until it arrives.
    pub(crate) fn recv_sw(&self, ctx: &Context, src_rank: usize, tag: u64) -> Vec<u8> {
        let src_task = self.topology.task_at(src_rank);
        let key = (ctx.task(), tag, src_task);
        loop {
            if let Some(data) = self.sw_store.lock().remove(&key) {
                return data;
            }
            if ctx.advance() == 0 {
                std::thread::yield_now();
            }
        }
    }
}

fn wire_make(geom_id: u32, tag: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&geom_id.to_le_bytes());
    v.extend_from_slice(&tag.to_le_bytes());
    v
}

fn wire_open(metadata: &Bytes) -> (u32, u64) {
    assert!(metadata.len() >= 12, "malformed geometry metadata");
    let id = u32::from_le_bytes(metadata[..4].try_into().unwrap());
    let tag = u64::from_le_bytes(metadata[4..12].try_into().unwrap());
    (id, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_barrier_generations() {
        let b = LocalBarrier::new(2);
        let g0 = b.arrive();
        assert_eq!(g0, 0);
        assert!(!b.is_released(g0));
        let g0b = b.arrive();
        assert_eq!(g0b, 0);
        assert!(b.is_released(g0));
        let g1 = b.arrive();
        assert_eq!(g1, 1);
        assert!(!b.is_released(g1));
    }

    #[test]
    fn board_post_get_clear() {
        let board = Board::default();
        board.post(3, 1, BoardEntry::Data(Arc::new(vec![1, 2, 3])));
        assert!(board.get(3, 0).is_none());
        match board.get(3, 1) {
            Some(BoardEntry::Data(d)) => assert_eq!(*d, vec![1, 2, 3]),
            _ => panic!("expected data entry"),
        }
        board.post(4, 1, BoardEntry::Data(Arc::new(vec![9])));
        board.clear_seq(3);
        assert!(board.get(3, 1).is_none());
        assert!(board.get(4, 1).is_some());
        assert_eq!(board.len(), 1);
    }
}
