//! Space-efficient task-set descriptions.
//!
//! "To reduce the memory requirements, we've developed space efficient
//! *topology* structures in the PAMI library to handle a range of ranks and
//! importantly defined an *axial topology*" (paper section III.G). At
//! 16 million tasks, a communicator cannot afford an explicit rank list;
//! most communicators are ranges, rectangles of nodes, or axes of the
//! torus, all of which need O(1) storage. [`Topology`] keeps those compact
//! forms and falls back to an explicit list only when it must.

use std::sync::Arc;

use bgq_torus::rect::AxialRange;
use bgq_torus::{Rectangle, TorusShape};

/// An ordered set of tasks.
#[derive(Debug, Clone)]
pub enum Topology {
    /// `first, first+stride, … , first+(count-1)*stride` — O(1) storage.
    Range {
        /// First task.
        first: u32,
        /// Number of tasks.
        count: u32,
        /// Stride between consecutive tasks (≥ 1).
        stride: u32,
    },
    /// Every task of every node in a rectangle, node-major — O(1) storage.
    /// This is the form classroute-accelerated communicators take.
    Rect {
        /// The node rectangle.
        rect: Rectangle,
        /// Machine shape (for node indexing).
        shape: TorusShape,
        /// Tasks per node.
        ppn: u32,
    },
    /// Tasks of the nodes along one torus axis from an origin — O(1)
    /// storage (the paper's "axial topology").
    Axial {
        /// The node range.
        axis: AxialRange,
        /// Machine shape.
        shape: TorusShape,
        /// Tasks per node.
        ppn: u32,
    },
    /// Explicit task list — the fallback for irregular sets.
    List(Arc<[u32]>),
}

impl Topology {
    /// The whole machine as a range.
    pub fn world(num_tasks: u32) -> Topology {
        Topology::Range { first: 0, count: num_tasks, stride: 1 }
    }

    /// Number of member tasks.
    pub fn size(&self) -> usize {
        match self {
            Topology::Range { count, .. } => *count as usize,
            Topology::Rect { rect, ppn, .. } => rect.num_nodes() * *ppn as usize,
            Topology::Axial { axis, ppn, .. } => axis.len as usize * *ppn as usize,
            Topology::List(tasks) => tasks.len(),
        }
    }

    /// The `index`-th member task.
    ///
    /// # Panics
    /// If `index >= size()`.
    pub fn task_at(&self, index: usize) -> u32 {
        assert!(index < self.size(), "topology index {index} out of range");
        match self {
            Topology::Range { first, stride, .. } => first + index as u32 * stride,
            Topology::Rect { rect, shape, ppn } => {
                let node_member = index / *ppn as usize;
                let local = (index % *ppn as usize) as u32;
                let node = shape.node_index(rect.member_coords(node_member)) as u32;
                node * ppn + local
            }
            Topology::Axial { axis, shape, ppn } => {
                let node_member = index / *ppn as usize;
                let local = (index % *ppn as usize) as u32;
                // O(1): step `node_member` hops along the axis arithmetically.
                let extent = shape.extent(axis.dim);
                let x = (axis.origin.get(axis.dim) + node_member as u16) % extent;
                let coords = axis.origin.with(axis.dim, x);
                shape.node_index(coords) as u32 * ppn + local
            }
            Topology::List(tasks) => tasks[index],
        }
    }

    /// The member index of `task`, or `None` if not a member.
    pub fn index_of(&self, task: u32) -> Option<usize> {
        match self {
            Topology::Range { first, count, stride } => {
                if task < *first {
                    return None;
                }
                let delta = task - first;
                (delta.is_multiple_of(*stride) && delta / stride < *count)
                    .then(|| (delta / stride) as usize)
            }
            Topology::Rect { rect, shape, ppn } => {
                let node = task / ppn;
                if node as usize >= shape.num_nodes() {
                    return None;
                }
                let coords = shape.coords_of(node as usize);
                rect.contains(coords).then(|| {
                    rect.member_index(coords) * *ppn as usize + (task % ppn) as usize
                })
            }
            Topology::Axial { axis, shape, ppn } => {
                let node = task / ppn;
                if node as usize >= shape.num_nodes() {
                    return None;
                }
                let coords = shape.coords_of(node as usize);
                if !axis.contains(*shape, coords) {
                    return None;
                }
                axis.iter(*shape)
                    .position(|c| c == coords)
                    .map(|i| i * *ppn as usize + (task % ppn) as usize)
            }
            Topology::List(tasks) => tasks.iter().position(|&t| t == task),
        }
    }

    /// Whether `task` is a member.
    pub fn contains(&self, task: u32) -> bool {
        self.index_of(task).is_some()
    }

    /// Iterate the member tasks in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.size()).map(move |i| self.task_at(i))
    }

    /// Approximate heap bytes this description costs — the quantity the
    /// paper's memory optimization is about.
    pub fn storage_bytes(&self) -> usize {
        match self {
            Topology::List(tasks) => tasks.len() * 4,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::{Coords, Dim};

    #[test]
    fn range_topology_round_trips() {
        let t = Topology::Range { first: 4, count: 5, stride: 3 };
        let tasks: Vec<u32> = t.iter().collect();
        assert_eq!(tasks, vec![4, 7, 10, 13, 16]);
        for (i, task) in tasks.iter().enumerate() {
            assert_eq!(t.index_of(*task), Some(i));
        }
        assert_eq!(t.index_of(5), None);
        assert_eq!(t.index_of(19), None);
        assert_eq!(t.storage_bytes(), 0);
    }

    #[test]
    fn rect_topology_is_node_major() {
        let shape = TorusShape::new([2, 2, 1, 1, 1]);
        let rect = Rectangle::full(shape);
        let t = Topology::Rect { rect, shape, ppn: 2 };
        assert_eq!(t.size(), 8);
        let tasks: Vec<u32> = t.iter().collect();
        assert_eq!(tasks, (0..8).collect::<Vec<u32>>());
        for (i, task) in tasks.iter().enumerate() {
            assert_eq!(t.index_of(*task), Some(i), "task {task}");
        }
    }

    #[test]
    fn sub_rect_topology_excludes_outsiders() {
        let shape = TorusShape::new([4, 1, 1, 1, 1]);
        let rect = Rectangle::new(Coords([1, 0, 0, 0, 0]), Coords([2, 0, 0, 0, 0]));
        let t = Topology::Rect { rect, shape, ppn: 1 };
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!t.contains(0));
        assert!(!t.contains(3));
    }

    #[test]
    fn axial_topology_walks_one_dimension() {
        let shape = TorusShape::new([4, 2, 1, 1, 1]);
        let axis = AxialRange { origin: Coords([2, 1, 0, 0, 0]), dim: Dim::A, len: 3 };
        let t = Topology::Axial { axis, shape, ppn: 1 };
        // Nodes <2,1>, <3,1>, <0,1> → node indices 5, 7, 1.
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![5, 7, 1]);
        assert_eq!(t.index_of(7), Some(1));
        assert_eq!(t.index_of(3), None);
        assert_eq!(t.storage_bytes(), 0);
    }

    #[test]
    fn list_topology_exact() {
        let t = Topology::List(vec![9, 3, 7].into());
        assert_eq!(t.size(), 3);
        assert_eq!(t.task_at(1), 3);
        assert_eq!(t.index_of(7), Some(2));
        assert_eq!(t.index_of(8), None);
        assert_eq!(t.storage_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn task_at_out_of_range_panics() {
        Topology::world(4).task_at(4);
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;

    /// The paper's section III.G claim: compact topologies keep
    /// communicator membership at O(1) storage even at machine scale —
    /// sixteen million tasks as a range or rectangle cost nothing, while
    /// the explicit list would cost 64 MB.
    #[test]
    fn compact_topologies_are_constant_space() {
        const SIXTEEN_MILLION: u32 = 16 * 1024 * 1024;
        let world = Topology::world(SIXTEEN_MILLION);
        assert_eq!(world.storage_bytes(), 0);
        assert_eq!(world.size(), SIXTEEN_MILLION as usize);
        assert_eq!(world.task_at(12_345_678), 12_345_678);

        let shape = TorusShape::new([16, 16, 16, 32, 2]); // full BG/Q
        let rect = Topology::Rect { rect: Rectangle::full(shape), shape, ppn: 64 };
        assert_eq!(rect.size(), 262_144 * 64);
        assert_eq!(rect.storage_bytes(), 0);

        // The fallback list really does pay per member.
        let list = Topology::List((0..100_000u32).collect::<Vec<_>>().into());
        assert_eq!(list.storage_bytes(), 400_000);
    }
}
