//! The protocol-selection layer: one object decides, per message, whether a
//! send goes **eager** (payload travels with the message, delivered through
//! the memory-FIFO or inline shared-memory path) or **rendezvous** (an RTS
//! travels, the target pulls the payload with a remote get / global-VA
//! single-copy read).
//!
//! Real PAMI picks the protocol per message inside the send call; our
//! reproduction used to hard-code one machine-wide `eager_limit` read at two
//! call sites. This module lifts the decision behind the [`ProtocolPolicy`]
//! trait so the crossover can be *tuned at runtime* from live `bgq-upc`
//! readings — the "telemetry-driven adaptive protocols" item of the roadmap,
//! and the per-transport protocol selection that pMR-style transport layers
//! show paying off.
//!
//! Two implementations ship:
//!
//! * [`StaticPolicy`] — today's behaviour, bit for bit: `len <= limit` goes
//!   eager, everything else rendezvous. No state, no probes, no locks.
//! * [`AdaptivePolicy`] — keeps per-destination crossover state and walks
//!   the eager/rendezvous threshold toward whichever protocol live
//!   telemetry says is cheaper near the crossover. Inputs: the measured
//!   eager delivery time and rendezvous round-trip cost (stamped on the
//!   wire envelope by the sender, observed by the receiver), plus periodic
//!   `Upc` snapshot readings of `match.unexpected_depth` (a receiver
//!   falling behind) and `mu.payload_copies` (eager staging pressure).
//!   Movement is multiplicative with hysteresis, and the crossover is
//!   clamped to `[min, max]`, so the policy can never diverge: above the
//!   clamp it is *always* rendezvous, below the floor *always* eager.
//!
//! With the `telemetry` feature compiled out every wire stamp is zero, so
//! measured costs tie, the strict-inequality movement rules never fire, and
//! the adaptive policy degenerates to the static path (additionally guarded
//! on [`bgq_upc::ENABLED`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bgq_upc::{Histogram, Upc};
use parking_lot::Mutex;

/// Default short/eager crossover in bytes — the Charm++ PAMI machine
/// layer's `SHORT_CUTOFF 128`: payloads at or below it inline into a single
/// packet envelope with no region setup and no completion counter.
pub const SHORT_CUTOFF: usize = 128;

/// Which wire protocol a send uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The send is appended into a per-destination coalescing bucket
    /// (`pami::aggr`) and travels later as one record of a multi-message
    /// packet train — the TRAM-style amortization of per-message software
    /// overhead. Only ever selected for payloads at or below the
    /// aggregation cutoff, and (adaptively) only for destinations whose
    /// observed arrival rate is dense enough that the batching delay is
    /// repaid.
    Aggregated,
    /// Metadata and payload inline into one packet envelope — no region
    /// registration, no completion counter, no fragment loop; the receive
    /// side dispatches straight from the packet.
    Short,
    /// Payload travels with the message (memory-FIFO packets off-node,
    /// inline mailbox copy on-node).
    Eager,
    /// An RTS travels; the target pulls the payload (remote get off-node,
    /// global-VA single-copy read on-node).
    Rendezvous,
}

/// A completed-transfer observation fed back into the policy by the
/// receiving context. `ns` is the wire-to-delivery time measured against
/// the stamp the sender put in the message envelope (0 with telemetry off).
#[derive(Debug, Clone, Copy)]
pub enum ProtoEvent {
    /// A short-tier message (single inline packet) was delivered at `dest`.
    ShortDelivered {
        /// The receiving task (the key the sender selected by).
        dest: u32,
        /// Payload length.
        len: usize,
        /// Send-stamp → delivery nanoseconds.
        ns: u64,
    },
    /// An eager message was fully delivered at `dest`.
    EagerDelivered {
        /// The receiving task (the key the sender selected by).
        dest: u32,
        /// Payload length.
        len: usize,
        /// Send-stamp → delivery nanoseconds.
        ns: u64,
    },
    /// A rendezvous transfer completed at `dest` (RTS flight + remote get +
    /// direct put — the full round-trip cost of choosing rendezvous).
    RzvComplete {
        /// The receiving task.
        dest: u32,
        /// Payload length.
        len: usize,
        /// Send-stamp → completion nanoseconds.
        ns: u64,
    },
    /// The RAS layer saw link trouble on the path to `dest`: retransmits
    /// (a recoverable drop/corruption cost eager pays in full, since its
    /// payload rides memory-FIFO packets) and delivery failures (a channel
    /// gave up — traffic should be behind completion counters). Fed by the
    /// machine's RAS-ring observer, not by a delivery stamp, so it carries
    /// counts rather than nanoseconds.
    DeliveryTrouble {
        /// The destination task whose protocol state should shift.
        dest: u32,
        /// `ras.retransmits` delta attributed to this destination —
        /// RTO-driven probes, the protocol's strongest loss signal.
        retransmits: u64,
        /// `ras.sack_retransmits` + reorder-evict delta: losses recovered
        /// by selective-repeat SACK feedback (or buffer pressure) without
        /// waiting out an RTO — real loss, but cheaper than a timeout.
        sack_retransmits: u64,
        /// `ras.delivery_failures` delta attributed to this destination.
        failures: u64,
    },
}

impl ProtoEvent {
    fn parts(&self) -> (Protocol, u32, usize, u64) {
        match *self {
            ProtoEvent::ShortDelivered { dest, len, ns } => (Protocol::Short, dest, len, ns),
            ProtoEvent::EagerDelivered { dest, len, ns } => (Protocol::Eager, dest, len, ns),
            ProtoEvent::RzvComplete { dest, len, ns } => (Protocol::Rendezvous, dest, len, ns),
            ProtoEvent::DeliveryTrouble { .. } => {
                unreachable!("RAS events are consumed before parts()")
            }
        }
    }
}

/// A protocol-selection policy. Owned by the [`crate::machine::Machine`]
/// (one per partition); consulted by [`crate::context::Context::send`] on
/// every two-sided send and fed outcomes by the receiving context.
///
/// Implementations must be cheap and thread-safe: `select` runs on the
/// sender's fast path, `observe` on the advancing thread.
pub trait ProtocolPolicy: Send + Sync {
    /// Pick the protocol for a `len`-byte send to task `dest`.
    fn select(&self, dest: u32, len: usize) -> Protocol;

    /// Feed back a completed-transfer observation (default: ignored).
    fn observe(&self, ev: ProtoEvent) {
        let _ = ev;
    }

    /// Whether this policy uses [`Self::observe`] feedback at all. When
    /// `false` (the static default) the runtime skips the send-side clock
    /// stamp and the delivery-side clock read entirely — the envelope
    /// carries a zero stamp and `observe` is never called, keeping the
    /// eager hot path free of per-message clock costs.
    fn wants_feedback(&self) -> bool {
        false
    }

    /// The current eager/rendezvous crossover for `dest`, in bytes
    /// (diagnostics; adaptive policies report per-destination state).
    fn crossover(&self, dest: u32) -> usize;

    /// The current short/eager crossover for `dest`, in bytes. Zero means
    /// the policy has no short tier (the pre-ladder default).
    fn short_crossover(&self, dest: u32) -> usize {
        let _ = dest;
        0
    }

    /// Fixed `(aggr, short, limit)` thresholds when this policy is a pure
    /// destination-independent ladder, letting contexts select inline
    /// without the virtual call on every send. `None` (the default) for
    /// policies whose choice depends on the destination or on feedback.
    fn fixed_thresholds(&self) -> Option<(usize, usize, usize)> {
        None
    }

    /// Short policy name for reports (`"static"` / `"adaptive"`).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Static
// ---------------------------------------------------------------------------

/// Fixed-threshold ladder: `len <= aggr` (when enabled) aggregates,
/// `len <= short` goes short (inline single packet), `len <= limit` goes
/// eager, everything larger is rendezvous, for every destination.
pub struct StaticPolicy {
    aggr: usize,
    short: usize,
    limit: usize,
}

impl StaticPolicy {
    /// A static policy with the given eager limit in bytes and the default
    /// [`SHORT_CUTOFF`] short tier.
    pub fn new(limit: usize) -> StaticPolicy {
        StaticPolicy { aggr: 0, short: SHORT_CUTOFF.min(limit), limit }
    }

    /// A static policy with an explicit short cutoff (`0` disables the
    /// short tier — every small send takes the eager path, the pre-ladder
    /// behaviour the benches baseline against).
    pub fn with_short(short: usize, limit: usize) -> StaticPolicy {
        assert!(short <= limit, "short cutoff must not exceed the eager limit");
        StaticPolicy { aggr: 0, short, limit }
    }

    /// A static policy with an aggregation tier: payloads at or below
    /// `aggr` bytes coalesce unconditionally (`0` disables the tier). The
    /// machine installs this when [`crate::MachineBuilder::aggregation`] is
    /// set on a static-policy build.
    pub fn with_aggr(aggr: usize, short: usize, limit: usize) -> StaticPolicy {
        assert!(short <= limit, "short cutoff must not exceed the eager limit");
        assert!(aggr <= limit, "aggregation cutoff must not exceed the eager limit");
        StaticPolicy { aggr, short, limit }
    }
}

impl ProtocolPolicy for StaticPolicy {
    #[inline]
    fn select(&self, _dest: u32, len: usize) -> Protocol {
        if self.aggr > 0 && len <= self.aggr {
            Protocol::Aggregated
        } else if self.short > 0 && len <= self.short {
            Protocol::Short
        } else if len <= self.limit {
            Protocol::Eager
        } else {
            Protocol::Rendezvous
        }
    }

    fn crossover(&self, _dest: u32) -> usize {
        self.limit
    }

    fn short_crossover(&self, _dest: u32) -> usize {
        self.short
    }

    fn fixed_thresholds(&self) -> Option<(usize, usize, usize)> {
        Some((self.aggr, self.short, self.limit))
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

// ---------------------------------------------------------------------------
// Adaptive
// ---------------------------------------------------------------------------

/// Tuning knobs of the [`AdaptivePolicy`]. The defaults are conservative:
/// the crossover starts at the machine's static eager limit and can move by
/// 25% steps within `[min, max]` only when one protocol beats the other by
/// the hysteresis margin on live measurements.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Starting crossover for every destination (defaults to the machine's
    /// static eager limit).
    pub initial: usize,
    /// Hard floor: `len <= min` is always eager, and the crossover never
    /// tunes below this.
    pub min: usize,
    /// Hard clamp: `len > max` is always rendezvous — the policy can never
    /// pick eager above it — and the crossover never tunes past it.
    pub max: usize,
    /// Relative advantage one protocol must show before the crossover moves
    /// (0.15 = 15% cheaper per byte).
    pub hysteresis: f64,
    /// Multiplicative step per movement (crossover ×/÷ `step`).
    pub step: f64,
    /// Every `explore_every`-th in-band selection per destination flips the
    /// protocol so both cost estimates stay fresh.
    pub explore_every: u32,
    /// Minimum fresh samples of *each* protocol before a movement decision.
    pub min_samples: u32,
    /// Take a `Upc` snapshot (unexpected-queue depth, payload-copy
    /// pressure) every this many in-band observations.
    pub snapshot_every: u64,
    /// `match.unexpected_depth` p50 at or above which the congestion nudge
    /// pulls crossovers down (eager floods unexpected queues; rendezvous
    /// throttles the sender).
    pub depth_nudge_at: u64,
    /// Starting short/eager crossover for every destination.
    pub short_initial: usize,
    /// Hard floor of the short band: `len <= short_min` is always short and
    /// the short crossover never tunes below this.
    pub short_min: usize,
    /// Hard clamp of the short band; must stay at or below `min` (the short
    /// band sits strictly below the eager/rendezvous band) and below the
    /// single-packet payload limit so a short send is always one packet.
    pub short_max: usize,
    /// Aggregation eligibility cutoff in bytes: payloads at or below it
    /// *may* be coalesced (`pami::aggr`) when the destination's observed
    /// arrival rate is dense enough. `0` (the default) disables the
    /// aggregation arm entirely, keeping the small-message fast path
    /// lock-free. Must stay at or below `short_max` so a coalesced record
    /// that falls back still fits the short tier.
    pub aggr_cutoff: usize,
    /// Mean inter-arrival gap (EWMA, nanoseconds) at or below which a
    /// destination counts as *dense*: batching delay is repaid, so eligible
    /// sends start aggregating.
    pub aggr_dense_ns: u64,
    /// Single-gap threshold (nanoseconds) above which a destination counts
    /// as *sparse*: one such gap immediately stops aggregation for the
    /// destination (a one-shot trip, not an EWMA decision), so latency-
    /// sensitive trickle traffic never eats the age-bound delay twice.
    pub aggr_sparse_ns: u64,
    /// Fresh gap samples required before a destination may (re-)enter the
    /// aggregating state.
    pub aggr_min_samples: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial: 4096,
            min: 512,
            max: 128 * 1024,
            hysteresis: 0.15,
            step: 1.25,
            explore_every: 8,
            min_samples: 8,
            snapshot_every: 256,
            depth_nudge_at: 8,
            short_initial: SHORT_CUTOFF,
            short_min: 32,
            short_max: 512,
            aggr_cutoff: 0,
            aggr_dense_ns: 4_000,
            aggr_sparse_ns: 16_000,
            aggr_min_samples: 8,
        }
    }
}

/// Exponentially-weighted moving average with a fresh-sample count (the
/// count resets on every crossover movement so decisions use post-movement
/// evidence).
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: f64,
    fresh: u32,
}

impl Ewma {
    fn push(&mut self, v: f64) {
        if self.fresh == 0 && self.value == 0.0 {
            self.value = v;
        } else {
            self.value = 0.75 * self.value + 0.25 * v;
        }
        self.fresh = self.fresh.saturating_add(1);
    }

    fn reset_fresh(&mut self) {
        self.fresh = 0;
    }
}

/// Per-destination crossover state: two independently learned boundaries
/// (short/eager and eager/rendezvous), each steered by its own pair of
/// per-byte cost EWMAs sampled in its own decision band.
#[derive(Debug, Clone, Copy)]
struct DestState {
    crossover: usize,
    /// Per-byte eager delivery cost near the eager/rendezvous crossover.
    eager_cost: Ewma,
    /// Per-byte rendezvous round-trip cost near the crossover.
    rzv_cost: Ewma,
    selects: u32,
    /// Learned short/eager boundary.
    short_crossover: usize,
    /// Per-byte short delivery cost near the short crossover.
    short_cost: Ewma,
    /// Per-byte eager delivery cost near the *short* crossover (kept apart
    /// from `eager_cost` so small-message samples never steer the
    /// eager/rendezvous boundary and vice versa).
    eager_short_cost: Ewma,
    /// Clock reading of the last aggregation-eligible select (0 = never).
    last_arrival_ns: u64,
    /// EWMA of inter-arrival gaps between eligible sends, nanoseconds.
    interarrival: Ewma,
    /// Whether eligible sends to this destination currently aggregate.
    aggregating: bool,
}

/// Number of destination shards the adaptive per-destination map is split
/// across. The map used to sit behind one machine-wide mutex — every
/// in-band `select` from every context serialized on it, exactly the kind
/// of shared fast-path state the context-sharding work removes. Destinations
/// hash to shards by `dest % POLICY_SHARDS`, so contexts flooding disjoint
/// destinations take disjoint locks; the per-destination `selects` counter
/// inside each [`DestState`] doubles as the deterministic exploration clock,
/// leaving no shared RNG or clock state on the select path.
const POLICY_SHARDS: usize = 16;

/// Whole-stack congestion-reading state (snapshot deltas). Off the select
/// path entirely: touched only every `snapshot_every` observations.
struct CongestionState {
    last_copies: u64,
    last_depth_p50: u64,
}

/// `proto.*` probes: the selection layer's own telemetry.
struct ProtoProbes {
    aggr_selected: bgq_upc::Counter,
    short_selected: bgq_upc::Counter,
    eager_selected: bgq_upc::Counter,
    rzv_selected: bgq_upc::Counter,
    explorations: bgq_upc::Counter,
    crossover_raised: bgq_upc::Counter,
    crossover_lowered: bgq_upc::Counter,
    short_crossover_raised: bgq_upc::Counter,
    short_crossover_lowered: bgq_upc::Counter,
    congestion_nudges: bgq_upc::Counter,
    /// Crossover reductions driven by RAS trouble (retransmit/failure
    /// events pushing a destination toward counter-protected rendezvous).
    ras_downgrades: bgq_upc::Counter,
    /// Full rendezvous round-trip cost (send stamp → completion).
    rzv_rtt_ns: Histogram,
    /// Eager send stamp → delivery latency.
    eager_delivery_ns: Histogram,
    /// Short-tier send stamp → delivery latency.
    short_delivery_ns: Histogram,
}

impl ProtoProbes {
    fn new(upc: &Upc) -> ProtoProbes {
        ProtoProbes {
            aggr_selected: upc.counter("proto.aggr_selected"),
            short_selected: upc.counter("proto.short_selected"),
            eager_selected: upc.counter("proto.eager_selected"),
            rzv_selected: upc.counter("proto.rzv_selected"),
            explorations: upc.counter("proto.explorations"),
            crossover_raised: upc.counter("proto.crossover_raised"),
            crossover_lowered: upc.counter("proto.crossover_lowered"),
            short_crossover_raised: upc.counter("proto.short_crossover_raised"),
            short_crossover_lowered: upc.counter("proto.short_crossover_lowered"),
            congestion_nudges: upc.counter("proto.congestion_nudges"),
            ras_downgrades: upc.counter("proto.ras_downgrades"),
            rzv_rtt_ns: upc.histogram("proto.rzv_rtt_ns"),
            eager_delivery_ns: upc.histogram("proto.eager_delivery_ns"),
            short_delivery_ns: upc.histogram("proto.short_delivery_ns"),
        }
    }
}

/// Telemetry-driven adaptive eager/rendezvous selection with
/// per-destination crossover state. See the module docs for the algorithm;
/// the invariants are:
///
/// * the crossover is always inside `[cfg.min, cfg.max]`;
/// * `select` never returns [`Protocol::Eager`] for `len > cfg.max` and
///   never returns [`Protocol::Rendezvous`] for `len <= cfg.min`;
/// * with zero-cost observations (telemetry off) the crossover never moves,
///   so the policy behaves exactly like [`StaticPolicy`] at `initial`.
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    upc: Upc,
    probes: ProtoProbes,
    /// Per-destination crossover state, sharded by `dest % POLICY_SHARDS`.
    shards: Vec<Mutex<HashMap<u32, DestState>>>,
    /// In-band observation count (drives the periodic congestion check);
    /// lock-free so `observe` touches no shared mutex before the shard.
    observations: AtomicU64,
    congestion: Mutex<CongestionState>,
}

impl AdaptivePolicy {
    /// An adaptive policy registering its `proto.*` probes on `upc` (the
    /// machine's registry — also the registry its congestion readings come
    /// from).
    pub fn new(cfg: AdaptiveConfig, upc: &Upc) -> AdaptivePolicy {
        assert!(cfg.min >= 1 && cfg.min <= cfg.max, "adaptive clamp must satisfy 1 <= min <= max");
        assert!(cfg.step > 1.0, "adaptive step must be > 1");
        assert!(cfg.hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(
            cfg.short_min >= 1 && cfg.short_min <= cfg.short_max,
            "short clamp must satisfy 1 <= short_min <= short_max"
        );
        assert!(cfg.short_max <= cfg.min, "short band must sit below the eager/rzv band");
        assert!(
            cfg.aggr_cutoff <= cfg.short_max,
            "aggregation cutoff must sit inside the short band"
        );
        AdaptivePolicy {
            cfg,
            upc: upc.clone(),
            probes: ProtoProbes::new(upc),
            shards: (0..POLICY_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            observations: AtomicU64::new(0),
            congestion: Mutex::new(CongestionState { last_copies: 0, last_depth_p50: 0 }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    #[inline]
    fn shard(&self, dest: u32) -> &Mutex<HashMap<u32, DestState>> {
        &self.shards[dest as usize % POLICY_SHARDS]
    }

    fn dest_entry<'a>(
        dests: &'a mut HashMap<u32, DestState>,
        cfg: &AdaptiveConfig,
        dest: u32,
    ) -> &'a mut DestState {
        dests.entry(dest).or_insert_with(|| DestState {
            crossover: cfg.initial.clamp(cfg.min, cfg.max),
            eager_cost: Ewma::default(),
            rzv_cost: Ewma::default(),
            selects: 0,
            short_crossover: cfg.short_initial.clamp(cfg.short_min, cfg.short_max),
            short_cost: Ewma::default(),
            eager_short_cost: Ewma::default(),
            last_arrival_ns: 0,
            interarrival: Ewma::default(),
            aggregating: false,
        })
    }

    /// Whether `len` sits in the decision band around `crossover` — the
    /// window `[crossover/2, crossover*2]` whose samples are comparable
    /// enough to steer the threshold.
    fn in_band(len: usize, crossover: usize) -> bool {
        len >= crossover / 2 && len <= crossover.saturating_mul(2)
    }

    fn nudge_all_down(&self) {
        for shard in &self.shards {
            let mut dests = shard.lock();
            for st in dests.values_mut() {
                st.crossover =
                    (((st.crossover as f64) * 0.8) as usize).clamp(self.cfg.min, self.cfg.max);
                st.eager_cost.reset_fresh();
                st.rzv_cost.reset_fresh();
            }
        }
        self.probes.congestion_nudges.incr();
    }

    /// Periodic whole-stack reading: unexpected-queue depth growing past
    /// the threshold, or eager staging pressure (payload copies far in
    /// excess of the observed in-band traffic), pulls every destination's
    /// crossover down 20%. Takes the congestion mutex (never held together
    /// with a shard lock) and then the shards one at a time.
    fn congestion_check(&self) {
        let Some(mut cong) = self.congestion.try_lock() else {
            return; // another thread is already running this window's check
        };
        let snap = self.upc.snapshot();
        let depth = snap.histogram("match.unexpected_depth").map(|s| s.p50).unwrap_or(0);
        let copies = snap.counter("mu.payload_copies");
        let copies_delta = copies.saturating_sub(cong.last_copies);
        cong.last_copies = copies;
        let depth_growing = depth >= self.cfg.depth_nudge_at && depth > cong.last_depth_p50;
        cong.last_depth_p50 = depth;
        // Copy pressure: more than 128 packet copies per in-band
        // observation over the window means eager traffic is fragmenting
        // and staging heavily relative to the completions we see.
        let copy_pressure = copies_delta > self.cfg.snapshot_every * 128;
        drop(cong);
        if depth_growing || copy_pressure {
            self.nudge_all_down();
        }
    }

    /// RAS trouble on the path to `dest`: pull its eager/rendezvous
    /// crossover down one `cfg.step` per retransmit (half a step per SACK
    /// fast retransmit — loss recovered without an RTO stall is half as
    /// alarming — and four per delivery failure: a channel giving up is
    /// categorically worse than a recovered drop), capped at 8 steps per
    /// event. Rendezvous payload
    /// rides counter-protected direct puts, so a flaky destination is
    /// pushed toward the protocol whose completion semantics already
    /// tolerate loss. Fresh EWMAs reset so the post-trouble decision is
    /// made on post-trouble evidence.
    ///
    /// Unlike the stamp-driven arms this is *not* gated on
    /// `bgq_upc::ENABLED`: RAS events are protocol outcomes (the link layer
    /// counted real retransmits), not clock readings, so they steer even in
    /// telemetry-off builds — a deliberate softening of the "telemetry off
    /// ⇒ exactly static" invariant, limited to faulty runs.
    fn observe_trouble(&self, dest: u32, retransmits: u64, sack_retransmits: u64, failures: u64) {
        let steps = (retransmits + sack_retransmits.div_ceil(2) + 4 * failures).min(8);
        if steps == 0 {
            return;
        }
        let cfg = self.cfg;
        let mut dests = self.shard(dest).lock();
        let st = Self::dest_entry(&mut dests, &cfg, dest);
        let before = st.crossover;
        let divisor = cfg.step.powi(steps as i32);
        st.crossover = (((st.crossover as f64) / divisor) as usize).clamp(cfg.min, cfg.max);
        if st.crossover != before {
            st.eager_cost.reset_fresh();
            st.rzv_cost.reset_fresh();
            self.probes.ras_downgrades.incr();
        }
    }

    /// Record one aggregation-eligible arrival for `dest` and return
    /// whether the destination is currently dense enough to aggregate.
    ///
    /// The decision is a one-sided hysteresis loop: entering the
    /// aggregating state takes `aggr_min_samples` fresh gaps with an EWMA
    /// below `aggr_dense_ns`; leaving it takes a *single* gap above
    /// `aggr_sparse_ns` (or the EWMA drifting past it). The asymmetry is
    /// deliberate — the cost of wrongly aggregating is the age-bound delay
    /// on latency-sensitive traffic, which is paid immediately, while the
    /// cost of wrongly not aggregating is a small rate loss paid gradually.
    fn update_arrival(&self, dest: u32) -> bool {
        let now = bgq_upc::Stamp::now().ns();
        let cfg = self.cfg;
        let mut dests = self.shard(dest).lock();
        let st = Self::dest_entry(&mut dests, &cfg, dest);
        let last = st.last_arrival_ns;
        st.last_arrival_ns = now;
        if last == 0 || now <= last {
            return st.aggregating;
        }
        let gap = now - last;
        if gap > cfg.aggr_sparse_ns {
            // One-shot trip: the stream went quiet, stop batching at once
            // and demand fresh dense evidence before resuming.
            st.aggregating = false;
            st.interarrival = Ewma::default();
            return false;
        }
        st.interarrival.push(gap as f64);
        if st.aggregating {
            if st.interarrival.value > cfg.aggr_sparse_ns as f64 {
                st.aggregating = false;
                st.interarrival.reset_fresh();
            }
        } else if st.interarrival.fresh >= cfg.aggr_min_samples
            && st.interarrival.value < cfg.aggr_dense_ns as f64
        {
            st.aggregating = true;
            st.interarrival.reset_fresh();
        }
        st.aggregating
    }
}

impl ProtocolPolicy for AdaptivePolicy {
    fn select(&self, dest: u32, len: usize) -> Protocol {
        // Aggregation arm: eligible sends consult the destination's
        // arrival-rate state before the size ladder. Gated on a nonzero
        // cutoff *and* live telemetry (gaps are clock readings — with the
        // clock compiled out every gap is zero and "dense" would be
        // meaningless), so the default build never pays this lock.
        // (A sparse destination falls through to the normal ladder.)
        if self.cfg.aggr_cutoff > 0
            && bgq_upc::ENABLED
            && len <= self.cfg.aggr_cutoff
            && self.update_arrival(dest)
        {
            self.probes.aggr_selected.incr();
            return Protocol::Aggregated;
        }
        // Outside the tunable bands the answer is fixed and lock-free — the
        // uniform small-message (8-byte flood) fast path never touches
        // per-destination state.
        if len <= self.cfg.short_min {
            self.probes.short_selected.incr();
            return Protocol::Short;
        }
        if len > self.cfg.short_max && len <= self.cfg.min {
            self.probes.eager_selected.incr();
            return Protocol::Eager;
        }
        if len > self.cfg.max {
            self.probes.rzv_selected.incr();
            return Protocol::Rendezvous;
        }
        let mut dests = self.shard(dest).lock();
        let st = Self::dest_entry(&mut dests, &self.cfg, dest);
        st.selects = st.selects.wrapping_add(1);
        // Which boundary is this length deciding? The short band
        // (`short_min..=short_max`) steers short/eager; the in-band region
        // (`min..=max`) steers eager/rendezvous.
        let (natural, band_crossover) = if len <= self.cfg.short_max {
            let p = if len <= st.short_crossover { Protocol::Short } else { Protocol::Eager };
            (p, st.short_crossover)
        } else {
            let p = if len <= st.crossover { Protocol::Eager } else { Protocol::Rendezvous };
            (p, st.crossover)
        };
        // Deterministic exploration: with telemetry live, periodically send
        // an in-band message over the neighbouring protocol so both cost
        // EWMAs keep fresh samples. Both tiers of either boundary are
        // correct at any size inside their band, so this is purely a
        // measurement flip.
        let chosen = if bgq_upc::ENABLED
            && Self::in_band(len, band_crossover)
            && st.selects.is_multiple_of(self.cfg.explore_every)
        {
            self.probes.explorations.incr();
            match natural {
                Protocol::Short => Protocol::Eager,
                Protocol::Eager if len <= self.cfg.short_max => Protocol::Short,
                Protocol::Eager => Protocol::Rendezvous,
                Protocol::Rendezvous => Protocol::Eager,
                Protocol::Aggregated => unreachable!("aggregation decided before the ladder"),
            }
        } else {
            natural
        };
        drop(dests);
        match chosen {
            Protocol::Short => self.probes.short_selected.incr(),
            Protocol::Eager => self.probes.eager_selected.incr(),
            Protocol::Rendezvous => self.probes.rzv_selected.incr(),
            Protocol::Aggregated => unreachable!("aggregation decided before the ladder"),
        }
        chosen
    }

    fn observe(&self, ev: ProtoEvent) {
        if let ProtoEvent::DeliveryTrouble { dest, retransmits, sack_retransmits, failures } = ev {
            self.observe_trouble(dest, retransmits, sack_retransmits, failures);
            return;
        }
        let (proto, dest, len, ns) = ev.parts();
        match proto {
            Protocol::Short => self.probes.short_delivery_ns.record(ns),
            Protocol::Eager => self.probes.eager_delivery_ns.record(ns),
            Protocol::Rendezvous => self.probes.rzv_rtt_ns.record(ns),
            Protocol::Aggregated => unreachable!("no aggregated delivery event exists"),
        }
        // Compiled-out telemetry stamps every observation 0ns: skip all
        // adaptation so the policy is exactly the static path.
        if !bgq_upc::ENABLED || ns == 0 {
            return;
        }
        // Events far below any reachable band can never steer a boundary;
        // skip the lock (this is every 8-byte flood message).
        if len < self.cfg.short_min / 2 {
            return;
        }
        let obs = self.observations.fetch_add(1, Ordering::Relaxed) + 1;
        if obs.is_multiple_of(self.cfg.snapshot_every) {
            self.congestion_check();
        }
        let cfg = self.cfg;
        let mut dests = self.shard(dest).lock();
        let st = Self::dest_entry(&mut dests, &cfg, dest);
        let per_byte = ns as f64 / len.max(1) as f64;
        let h = 1.0 + cfg.hysteresis;
        // Short/eager boundary: fed by short samples and by eager samples
        // that land in the short decision band.
        if len <= cfg.short_max && Self::in_band(len, st.short_crossover) {
            match proto {
                Protocol::Short => st.short_cost.push(per_byte),
                Protocol::Eager => st.eager_short_cost.push(per_byte),
                Protocol::Rendezvous | Protocol::Aggregated => {}
            }
            if st.short_cost.fresh >= cfg.min_samples
                && st.eager_short_cost.fresh >= cfg.min_samples
            {
                if st.short_cost.value * h < st.eager_short_cost.value
                    && st.short_crossover < cfg.short_max
                {
                    // Short is decisively cheaper near the boundary: raise it.
                    st.short_crossover = (((st.short_crossover as f64) * cfg.step) as usize)
                        .clamp(cfg.short_min, cfg.short_max);
                    st.short_cost.reset_fresh();
                    st.eager_short_cost.reset_fresh();
                    self.probes.short_crossover_raised.incr();
                } else if st.eager_short_cost.value * h < st.short_cost.value
                    && st.short_crossover > cfg.short_min
                {
                    st.short_crossover = (((st.short_crossover as f64) / cfg.step) as usize)
                        .clamp(cfg.short_min, cfg.short_max);
                    st.short_cost.reset_fresh();
                    st.eager_short_cost.reset_fresh();
                    self.probes.short_crossover_lowered.incr();
                }
            }
        }
        // Eager/rendezvous boundary: short samples never steer it.
        if proto == Protocol::Short || !Self::in_band(len, st.crossover) {
            return;
        }
        match proto {
            Protocol::Eager => st.eager_cost.push(per_byte),
            Protocol::Rendezvous => st.rzv_cost.push(per_byte),
            Protocol::Short | Protocol::Aggregated => unreachable!(),
        }
        if st.eager_cost.fresh < cfg.min_samples || st.rzv_cost.fresh < cfg.min_samples {
            return;
        }
        if st.eager_cost.value * h < st.rzv_cost.value && st.crossover < cfg.max {
            // Eager is decisively cheaper near the crossover: raise it.
            st.crossover =
                (((st.crossover as f64) * cfg.step) as usize).clamp(cfg.min, cfg.max);
            st.eager_cost.reset_fresh();
            st.rzv_cost.reset_fresh();
            self.probes.crossover_raised.incr();
        } else if st.rzv_cost.value * h < st.eager_cost.value && st.crossover > cfg.min {
            st.crossover =
                (((st.crossover as f64) / cfg.step) as usize).clamp(cfg.min, cfg.max);
            st.eager_cost.reset_fresh();
            st.rzv_cost.reset_fresh();
            self.probes.crossover_lowered.incr();
        }
    }

    fn crossover(&self, dest: u32) -> usize {
        self.shard(dest)
            .lock()
            .get(&dest)
            .map(|s| s.crossover)
            .unwrap_or_else(|| self.cfg.initial.clamp(self.cfg.min, self.cfg.max))
    }

    fn short_crossover(&self, dest: u32) -> usize {
        self.shard(dest).lock().get(&dest).map(|s| s.short_crossover).unwrap_or_else(|| {
            self.cfg.short_initial.clamp(self.cfg.short_min, self.cfg.short_max)
        })
    }

    /// The adaptive policy lives on observations — but only when the
    /// telemetry clock is real. Compiled out, stamps are all zero and
    /// feedback is pure overhead, so the runtime skips it.
    fn wants_feedback(&self) -> bool {
        bgq_upc::ENABLED
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_matches_fixed_threshold() {
        let p = StaticPolicy::new(4096);
        assert_eq!(p.select(0, 0), Protocol::Short);
        assert_eq!(p.select(0, SHORT_CUTOFF), Protocol::Short);
        assert_eq!(p.select(0, SHORT_CUTOFF + 1), Protocol::Eager);
        assert_eq!(p.select(0, 4096), Protocol::Eager);
        assert_eq!(p.select(0, 4097), Protocol::Rendezvous);
        assert_eq!(p.crossover(9), 4096);
        assert_eq!(p.short_crossover(9), SHORT_CUTOFF);
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn static_policy_short_tier_can_be_disabled() {
        let p = StaticPolicy::with_short(0, 4096);
        assert_eq!(p.select(0, 0), Protocol::Eager);
        assert_eq!(p.select(0, 8), Protocol::Eager);
        assert_eq!(p.select(0, 4097), Protocol::Rendezvous);
        assert_eq!(p.short_crossover(0), 0);
    }

    #[test]
    fn delivery_trouble_pulls_crossover_down() {
        let upc = Upc::new();
        let cfg = AdaptiveConfig::default();
        let p = AdaptivePolicy::new(cfg, &upc);
        let initial = p.crossover(5);
        // One retransmit: one step down, only for the troubled destination.
        p.observe(ProtoEvent::DeliveryTrouble {
            dest: 5,
            retransmits: 1,
            sack_retransmits: 0,
            failures: 0,
        });
        let after_rexmit = p.crossover(5);
        assert!(after_rexmit < initial, "retransmit must lower the crossover");
        assert_eq!(p.crossover(6), initial, "clean destinations are untouched");
        // A delivery failure weighs four steps — strictly worse.
        p.observe(ProtoEvent::DeliveryTrouble {
            dest: 7,
            retransmits: 0,
            sack_retransmits: 0,
            failures: 1,
        });
        assert!(p.crossover(7) < after_rexmit);
        // A SACK fast retransmit weighs half a retransmit, rounded up: one
        // costs a full step, two still cost one step total.
        p.observe(ProtoEvent::DeliveryTrouble {
            dest: 8,
            retransmits: 0,
            sack_retransmits: 2,
            failures: 0,
        });
        assert_eq!(p.crossover(8), after_rexmit, "two SACK rexmits = one step");
        // Sustained trouble bottoms out at the clamp floor, never below.
        for _ in 0..64 {
            p.observe(ProtoEvent::DeliveryTrouble {
                dest: 5,
                retransmits: 8,
                sack_retransmits: 0,
                failures: 2,
            });
        }
        assert_eq!(p.crossover(5), cfg.min);
        // Zero-count events are a no-op.
        p.observe(ProtoEvent::DeliveryTrouble {
            dest: 9,
            retransmits: 0,
            sack_retransmits: 0,
            failures: 0,
        });
        assert_eq!(p.crossover(9), initial);
    }

    #[test]
    fn adaptive_short_band_respects_clamps() {
        let upc = Upc::new();
        let cfg = AdaptiveConfig::default();
        let p = AdaptivePolicy::new(cfg, &upc);
        // Below the short floor: always short, even after eager-favouring
        // evidence; above short_max: never short.
        for _ in 0..10_000 {
            p.observe(ProtoEvent::ShortDelivered { dest: 1, len: 128, ns: 1_000_000 });
            p.observe(ProtoEvent::EagerDelivered { dest: 1, len: 128, ns: 10 });
        }
        assert_eq!(p.select(1, cfg.short_min), Protocol::Short);
        assert!(p.short_crossover(1) >= cfg.short_min);
        assert_ne!(p.select(1, cfg.short_max + 1), Protocol::Short);
    }

    #[test]
    fn adaptive_short_crossover_converges_on_mixed_stream() {
        // Satellite coverage: on a mixed ≤512 B stream whose measurements
        // say short is decisively cheaper per byte, the short/eager
        // crossover must climb; when the evidence flips, it must fall back.
        // The eager/rzv boundary must not move either way (every sample is
        // far below its decision band).
        let upc = Upc::new();
        let cfg = AdaptiveConfig::default();
        let p = AdaptivePolicy::new(cfg, &upc);
        if !bgq_upc::ENABLED {
            return; // zero stamps: adaptation compiled out
        }
        for i in 0..4_000usize {
            let len = 16 + (i % 32) * 16; // 16..=512, mixed
            let _ = p.select(7, len);
            p.observe(ProtoEvent::ShortDelivered { dest: 7, len, ns: 40 * len as u64 });
            p.observe(ProtoEvent::EagerDelivered { dest: 7, len, ns: 400 * len as u64 });
        }
        let learned = p.short_crossover(7);
        assert!(
            learned > cfg.short_initial,
            "short crossover should rise from {} (got {learned})",
            cfg.short_initial
        );
        assert!(learned <= cfg.short_max);
        assert_eq!(p.crossover(7), cfg.initial, "eager/rzv boundary untouched");
        // Evidence flips: eager decisively cheaper → the boundary retreats.
        for i in 0..4_000usize {
            let len = 16 + (i % 32) * 16;
            let _ = p.select(7, len);
            p.observe(ProtoEvent::ShortDelivered { dest: 7, len, ns: 400 * len as u64 });
            p.observe(ProtoEvent::EagerDelivered { dest: 7, len, ns: 40 * len as u64 });
        }
        let fallen = p.short_crossover(7);
        assert!(fallen < learned, "short crossover should fall from {learned} (got {fallen})");
        assert!(fallen >= cfg.short_min);
        assert_eq!(p.crossover(7), cfg.initial, "eager/rzv boundary still untouched");
    }

    #[test]
    fn adaptive_respects_hard_clamps() {
        let upc = Upc::new();
        let cfg = AdaptiveConfig::default();
        let p = AdaptivePolicy::new(cfg, &upc);
        for dest in 0..4 {
            assert_eq!(p.select(dest, cfg.min), Protocol::Eager);
            assert_eq!(p.select(dest, cfg.max + 1), Protocol::Rendezvous);
        }
        // Saturate with eager-favouring evidence: crossover may rise but
        // never past max, and selection above max stays rendezvous.
        for _ in 0..10_000 {
            p.observe(ProtoEvent::EagerDelivered { dest: 1, len: cfg.max, ns: 10 });
            p.observe(ProtoEvent::RzvComplete { dest: 1, len: cfg.max, ns: 1_000_000 });
        }
        assert!(p.crossover(1) <= cfg.max);
        assert_eq!(p.select(1, cfg.max + 1), Protocol::Rendezvous);
    }

    #[test]
    fn adaptive_without_measurements_is_static() {
        let upc = Upc::new();
        let cfg = AdaptiveConfig { initial: 4096, ..AdaptiveConfig::default() };
        let p = AdaptivePolicy::new(cfg, &upc);
        // ns == 0 observations (what a telemetry-off build produces) must
        // never move the crossover.
        for _ in 0..1000 {
            p.observe(ProtoEvent::EagerDelivered { dest: 3, len: 4096, ns: 0 });
            p.observe(ProtoEvent::RzvComplete { dest: 3, len: 4096, ns: 0 });
        }
        assert_eq!(p.crossover(3), 4096);
    }

    #[test]
    fn adaptive_shards_keep_destinations_independent() {
        let upc = Upc::new();
        let cfg = AdaptiveConfig { initial: 4096, ..AdaptiveConfig::default() };
        let p = AdaptivePolicy::new(cfg, &upc);
        // Dest 1 (shard 1): rendezvous decisively cheaper → crossover falls.
        // Dest 2 (shard 2): eager decisively cheaper → crossover rises.
        for _ in 0..2_000 {
            p.observe(ProtoEvent::EagerDelivered { dest: 1, len: 4096, ns: 1_000_000 });
            p.observe(ProtoEvent::RzvComplete { dest: 1, len: 4096, ns: 10 });
            p.observe(ProtoEvent::EagerDelivered { dest: 2, len: 4096, ns: 10 });
            p.observe(ProtoEvent::RzvComplete { dest: 2, len: 4096, ns: 1_000_000 });
        }
        // With telemetry compiled out every observation is skipped and the
        // policy is exactly static — only assert adaptation when it can run.
        if bgq_upc::ENABLED {
            assert!(p.crossover(1) < 4096, "dest 1 crossover fell: {}", p.crossover(1));
            assert!(p.crossover(2) > 4096, "dest 2 crossover rose: {}", p.crossover(2));
        }
        // Dest 17 shares shard 1 with dest 1 but has untouched state.
        assert_eq!(p.crossover(17), 4096);
    }

    #[test]
    fn static_policy_aggregation_tier() {
        let p = StaticPolicy::with_aggr(64, 128, 4096);
        assert_eq!(p.select(0, 1), Protocol::Aggregated);
        assert_eq!(p.select(0, 64), Protocol::Aggregated);
        assert_eq!(p.select(0, 65), Protocol::Short);
        assert_eq!(p.select(0, 128), Protocol::Short);
        assert_eq!(p.select(0, 129), Protocol::Eager);
        assert_eq!(p.select(0, 4097), Protocol::Rendezvous);
        // Zero cutoff disables the tier outright.
        let p = StaticPolicy::with_aggr(0, 128, 4096);
        assert_eq!(p.select(0, 1), Protocol::Short);
    }

    #[test]
    fn adaptive_aggregation_off_by_default() {
        let upc = Upc::new();
        let p = AdaptivePolicy::new(AdaptiveConfig::default(), &upc);
        // Default config has aggr_cutoff 0: tiny sends stay on the
        // lock-free short fast path no matter how dense the stream.
        for _ in 0..100 {
            assert_eq!(p.select(3, 16), Protocol::Short);
        }
    }

    #[test]
    fn adaptive_aggregation_toggles_on_arrival_rate() {
        if !bgq_upc::ENABLED {
            return; // gaps are clock readings; compiled out, the arm is off
        }
        let upc = Upc::new();
        let cfg = AdaptiveConfig {
            aggr_cutoff: 64,
            aggr_dense_ns: 1_000_000,  // generous: a tight loop is "dense"
            aggr_sparse_ns: 5_000_000, // 5 ms — a sleep trips it reliably
            aggr_min_samples: 4,
            ..AdaptiveConfig::default()
        };
        let p = AdaptivePolicy::new(cfg, &upc);
        // A dense back-to-back stream starts aggregating once enough fresh
        // gaps accumulate — and eligibility is size-gated.
        let mut saw_aggregated = false;
        for _ in 0..64 {
            if p.select(5, 32) == Protocol::Aggregated {
                saw_aggregated = true;
            }
        }
        assert!(saw_aggregated, "dense stream must start aggregating");
        assert_eq!(p.select(5, 32), Protocol::Aggregated);
        assert_ne!(p.select(5, 65), Protocol::Aggregated, "above the cutoff never aggregates");
        // One long gap trips the one-shot sparse exit immediately.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_ne!(p.select(5, 32), Protocol::Aggregated, "a sparse gap stops aggregation");
        // Dense traffic resumes: after min_samples fresh gaps it re-enters.
        let mut resumed = false;
        for _ in 0..64 {
            if p.select(5, 32) == Protocol::Aggregated {
                resumed = true;
            }
        }
        assert!(resumed, "dense stream must re-enter aggregation");
        // Other destinations are independent: dest 6 has no dense history
        // yet, so its first eligible send does not aggregate.
        assert_ne!(p.select(6, 32), Protocol::Aggregated);
    }

    #[test]
    fn ewma_tracks_pushes() {
        let mut e = Ewma::default();
        e.push(100.0);
        assert_eq!(e.value, 100.0);
        e.push(0.0);
        assert!(e.value < 100.0 && e.value > 0.0);
        assert_eq!(e.fresh, 2);
        e.reset_fresh();
        assert_eq!(e.fresh, 0);
    }
}
