//! Integration tests for the telemetry primitives: concurrent counter
//! aggregation (property), histogram bucket boundaries at 2^k−1 / 2^k /
//! 2^k+1, and trace-ring wraparound with drop-oldest semantics and
//! monotonic merged timestamps.
//!
//! All tests are gated on the `telemetry` feature; the no-op build has
//! nothing to check beyond "it compiles", which the workspace build covers.
#![cfg(feature = "telemetry")]

use bgq_upc::{bucket_index, TracePhase, Upc};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent adds from many threads (some sharing a counter handle,
    /// some holding distinct instances of the same name) aggregate exactly:
    /// the striped cells lose no updates and the snapshot sums instances.
    #[test]
    fn concurrent_counter_aggregation(
        threads in 1usize..8,
        adds_per_thread in 1usize..400,
        step in 1u64..5,
    ) {
        let upc = Upc::new();
        let shared = Arc::new(upc.counter("prop.shared"));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let shared = shared.clone();
            let own = upc.counter("prop.instanced");
            handles.push(std::thread::spawn(move || {
                for _ in 0..adds_per_thread {
                    shared.add(step);
                    own.add(step);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect = threads as u64 * adds_per_thread as u64 * step;
        prop_assert_eq!(shared.value(), expect);
        let snap = upc.snapshot();
        prop_assert_eq!(snap.counter("prop.shared"), expect);
        prop_assert_eq!(snap.counter("prop.instanced"), expect);
        prop_assert_eq!(snap.layer_total("prop"), 2 * expect);
    }

    /// Histogram count/sum/max survive concurrent recording exactly.
    #[test]
    fn concurrent_histogram_totals(
        threads in 1usize..6,
        records in 1usize..300,
    ) {
        let upc = Upc::new();
        let h = Arc::new(upc.histogram("prop.lat"));
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..records {
                    h.record((t * records + i) as u64);
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        let n = (threads * records) as u64;
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.sum(), n * (n - 1) / 2);
        prop_assert_eq!(h.max(), n - 1);
    }
}

/// Values at 2^k−1, 2^k, 2^k+1 land in the documented buckets, and the
/// quantile walk respects the observed max.
#[test]
fn histogram_bucket_boundaries() {
    let upc = Upc::new();
    let h = upc.histogram("bounds");
    for k in 1..64u32 {
        let v = 1u64 << k;
        h.record(v - 1);
        h.record(v);
        h.record(v + 1);
    }
    h.record(0);
    h.record(1);
    // Bucket 0: just the value 0. Bucket 1: just the value 1 (2^1 - 1 = 1).
    assert_eq!(h.bucket_count(0), 1);
    assert_eq!(h.bucket_count(bucket_index(1)), 2); // the 1 and 2^1-1 records
    for k in 2..64u32 {
        let v = 1u64 << k;
        // 2^k-1 falls in bucket k; 2^k and 2^k+1 fall in bucket k+1.
        assert_eq!(bucket_index(v - 1), k as usize);
        assert_eq!(bucket_index(v), k as usize + 1);
        assert_eq!(bucket_index(v + 1), k as usize + 1);
    }
    // Each bucket k in 2..=63 received exactly: 2^k-1 (one record) plus
    // 2^(k-1) and 2^(k-1)+1 (two records) = 3.
    for k in 2..64usize {
        assert_eq!(h.bucket_count(k), 3, "bucket {k}");
    }
    assert_eq!(h.bucket_count(64), 2); // 2^63 and 2^63+1
    assert_eq!(h.max(), (1u64 << 63) + 1);
    assert!(h.quantile(1.0) <= h.max());
    assert!(h.quantile(0.5) <= h.quantile(0.99));
}

#[test]
fn histogram_quantiles_on_known_distribution() {
    let upc = Upc::new();
    let h = upc.histogram("q");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.summary();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 1000 * 1001 / 2);
    assert_eq!(s.max, 1000);
    // Linear interpolation within the power-of-two bucket: for a uniform
    // distribution the quantiles are (near-)exact instead of landing on
    // the bucket's upper edge (511 / 1023 with the old walk).
    assert!((498..=502).contains(&s.p50), "p50 = {}", s.p50);
    assert!((988..=992).contains(&s.p99), "p99 = {}", s.p99);
}

/// Interpolated quantiles stay inside the target bucket and monotone, and
/// never land below the bucket's lower bound the way naive rounding could.
#[test]
fn histogram_quantiles_interpolate_within_bucket() {
    let upc = Upc::new();
    let h = upc.histogram("interp");
    // All mass in one bucket [2048, 4095]: uniform fill.
    for v in 2048..4096u64 {
        h.record(v);
    }
    let p50 = h.quantile(0.5);
    let p99 = h.quantile(0.99);
    assert!((3060..=3080).contains(&p50), "p50 = {p50}");
    assert!((4060..=4095).contains(&p99), "p99 = {p99}");
    assert!(p50 <= p99);
    assert!(h.quantile(1.0) <= h.max());
    // A single-value histogram reports that value (hi clamped by max).
    let one = upc.histogram("one");
    one.record(7);
    assert_eq!(one.quantile(0.5), 7);
    assert_eq!(one.quantile(0.99), 7);
}

/// Pinned-stripe counters: exact totals under concurrent writers sharing a
/// pin, and distinct pins do not lose updates.
#[test]
fn counter_pinned_stripes_are_exact() {
    let upc = Upc::new();
    let c = upc.counter("pinned");
    std::thread::scope(|s| {
        for pin in 0..4usize {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..10_000 {
                    c.incr_pinned(pin);
                }
            });
        }
        // Two extra writers hammering the same pin (RMW keeps it exact).
        for _ in 0..2 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..10_000 {
                    c.add_pinned(1, 1);
                }
            });
        }
    });
    assert_eq!(c.value(), 60_000);
}

/// Wraparound drops the oldest events: after pushing `3*cap` spans into a
/// ring of capacity `cap`, exactly the newest `cap` survive, in order, and
/// the merged timeline is timestamp-monotonic.
#[test]
fn trace_ring_wraparound_drop_oldest() {
    let cap = 16usize;
    let upc = Upc::with_trace_capacity(cap);
    let total = 3 * cap as u64;
    for i in 0..total {
        // Distinct args identify events; timestamps come from the real clock
        // and are non-decreasing because one thread records sequentially.
        upc.trace_instant("wrap", i);
    }
    let events = upc.trace_events();
    assert_eq!(events.len(), cap, "ring keeps exactly `cap` newest events");
    let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
    let expect: Vec<u64> = (total - cap as u64..total).collect();
    assert_eq!(args, expect, "oldest dropped, newest retained in order");
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns, "merged timeline is monotonic");
    }
    assert!(events.iter().all(|e| e.ph == TracePhase::Instant));
}

/// Events recorded from several threads merge into one monotonic timeline
/// with per-thread ids, and spans keep their start/duration pairing.
#[test]
fn trace_merge_across_threads_is_monotonic() {
    let upc = Upc::with_trace_capacity(64);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let upc = upc.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..20u64 {
                let st = upc.stamp();
                std::thread::yield_now();
                upc.trace_span("work", st, t * 100 + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = upc.trace_events();
    assert_eq!(events.len(), 80);
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns);
    }
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort();
    tids.dedup();
    assert_eq!(tids.len(), 4, "one ring per recording thread");
    let json = upc.chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
}

/// Ring overflow is observable from the report alone: every lapped event
/// increments the aggregate `upc.trace_dropped` counter, and the counter
/// appears in `report_json()` (the `telemetry.json` body) even when zero.
#[test]
fn trace_dropped_surfaces_in_report() {
    let cap = 8usize;
    let upc = Upc::with_trace_capacity(cap);
    let total = 4 * cap as u64;
    for i in 0..total {
        upc.trace_instant("drop", i);
    }
    let snap = upc.snapshot();
    let expect = total - cap as u64;
    assert_eq!(
        snap.counter("upc.trace_dropped"),
        expect,
        "every lapped slot counts as one dropped event"
    );
    let json = snap.report_json();
    assert!(
        json.contains(&format!("\"upc.trace_dropped\": {expect}")),
        "drop counter is in the report JSON: {json}"
    );

    // A thread that raises its own ring capacity above the registry default
    // keeps all its events — the aggregate drop count does not move.
    let upc2 = upc.clone();
    std::thread::spawn(move || {
        upc2.set_thread_trace_capacity(Some(4 * 32));
        for i in 0..32u64 {
            upc2.trace_instant("keep", i);
        }
    })
    .join()
    .unwrap();
    let snap2 = upc.snapshot();
    assert_eq!(
        snap2.counter("upc.trace_dropped"),
        expect,
        "per-thread capacity override prevents drops on that thread"
    );

    // And a fresh registry that never overflows still reports the counter,
    // pinned at zero, so dashboards can rely on its presence.
    let quiet = Upc::with_trace_capacity(64);
    quiet.trace_instant("once", 1);
    assert!(quiet.report_json().contains("\"upc.trace_dropped\": 0"));
}

/// The report JSON carries every registered name with aggregated values.
#[test]
fn report_json_round_trip_shape() {
    let upc = Upc::new();
    let a = upc.counter("mu.packets_injected");
    let b = upc.counter("mu.packets_injected"); // second instance, same name
    let c = upc.counter("ctx.sends_eager");
    a.add(3);
    b.add(4);
    c.incr();
    upc.histogram("coll.barrier_ns").record(1500);
    let json = upc.report_json();
    assert!(json.contains("\"mu.packets_injected\": 7"));
    assert!(json.contains("\"ctx.sends_eager\": 1"));
    assert!(json.contains("\"coll.barrier_ns\""));
    let snap = upc.snapshot();
    assert_eq!(snap.live_layers(), vec!["ctx".to_owned(), "mu".to_owned()]);
}

/// `mu.packets_dropped` is *live*, not a registered-but-never-incremented
/// name: running a transfer through a fault-injected fabric whose counters
/// are registered on this Upc makes the drop count move, and the `ras.*`
/// family lands in the same report.
#[test]
fn mu_packets_dropped_counter_is_live_under_fault_injection() {
    use bgq_mu::{
        Descriptor, FaultPlan, MuFabric, PayloadSource, RetryConfig, XferKind,
    };
    use bgq_torus::TorusShape;

    let upc = Upc::new();
    let fabric = MuFabric::builder(TorusShape::new([2, 1, 1, 1, 1]))
        .telemetry(upc.clone())
        .fault_plan(
            FaultPlan::new()
                .seed(42)
                .drop_rate(0.25)
                .retry(RetryConfig { window: 8, rto_ticks: 1, rto_max_ticks: 4, retry_budget: 64 }),
        )
        .build();
    let rec = fabric.alloc_rec_fifos(1, 1).unwrap()[0];
    let done = bgq_hw::Counter::new();
    done.add_expected(4096);
    fabric.execute_now(
        0,
        Descriptor {
            dst_node: 1,
            dst_context: 0,
            src_context: 0,
            routing: bgq_torus::Routing::Deterministic,
            payload: PayloadSource::Region {
                region: bgq_hw::MemRegion::from_vec(vec![7u8; 4096]),
                offset: 0,
                len: 4096,
            },
            kind: XferKind::MemoryFifo {
                rec_fifo: rec,
                dispatch: 7,
                metadata: bytes::Bytes::new(),
                short: false,
            },
            inj_counter: Some(done.clone()),
        },
    );
    for _ in 0..10_000 {
        if done.is_complete() {
            break;
        }
        fabric.pump_links(0, usize::MAX);
    }
    assert!(done.is_ok(), "transfer must complete despite injected drops");

    let snap = upc.snapshot();
    assert!(
        snap.counter("mu.packets_dropped") > 0,
        "mu.packets_dropped must be incremented by the fault injector, got {}",
        snap.counter("mu.packets_dropped")
    );
    assert!(
        snap.counter("ras.retransmits") > 0,
        "recovery from drops costs retransmits"
    );
    assert!(snap.live_layers().contains(&"ras".to_owned()), "ras.* family is registered");
    let json = snap.report_json();
    assert!(json.contains("\"mu.packets_dropped\""), "drop counter is in the report: {json}");
    assert!(json.contains("\"ras.retransmits\""), "ras family is in the report: {json}");
}
