//! `bgq-upc` — a software reconstruction of the BG/Q **Universal Performance
//! Counter** (UPC) unit: the always-on, always-cheap observability substrate
//! the PAMI paper leans on for its entire evaluation (where do cycles go —
//! injection, matching, locking, commthread handoff, collective phases?).
//!
//! Three primitives, all lock-free on the record path:
//!
//! * [`Counter`] — cache-padded, per-thread striped cells. Threads that own an
//!   exclusive stripe bump it with a non-RMW relaxed `load + store` (a single
//!   writer per stripe makes this exact); late-arriving threads beyond the
//!   stripe count share one overflow cell via `fetch_add`. Reads aggregate at
//!   snapshot time, so the hot path never contends.
//! * [`Histogram`] — HDR-style power-of-two-bucket latency histogram (65
//!   buckets covering the full `u64` range) with p50/p99/max summaries.
//! * Trace ring — a per-thread SPSC ring buffer of events (fixed capacity,
//!   drop-oldest) written with a seqlock per slot so a reader on any thread
//!   can merge a consistent timeline and export it as chrome://tracing JSON.
//!
//! Everything hangs off a [`Upc`] registry handle (cheaply cloneable). The
//! whole crate is behind the `telemetry` cargo feature: with it disabled the
//! same API surface is exported but every type is a zero-sized no-op, so
//! probes in the PAMI stack compile away entirely.

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Bucket math (always compiled: pure functions, shared by impl and tests)
// ---------------------------------------------------------------------------

/// Number of power-of-two buckets: bucket 0 holds the value 0, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// Map a value to its power-of-two bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (used when reporting quantiles).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Inclusive lower bound of a bucket (used for intra-bucket interpolation
/// when reporting quantiles).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=64 => 1u64 << (i - 1),
        _ => u64::MAX,
    }
}

// ---------------------------------------------------------------------------
// Summary / snapshot types (always compiled; empty under no-op builds)
// ---------------------------------------------------------------------------

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
}

impl HistSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated view of every registered counter and histogram. Multiple
/// instances registered under the same name (e.g. one per node or per
/// context) are summed into a single entry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
}

impl Snapshot {
    /// Value of a counter by exact name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Summary of a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Sum of all counters whose name starts with `prefix` followed by `.`
    /// — the layer convention used across the PAMI stack (`mu.*`, `ctx.*`,
    /// `match.*`, `coll.*`, `commthread.*`).
    pub fn layer_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.len() > prefix.len() && n.starts_with(prefix) && n.as_bytes()[prefix.len()] == b'.')
            .map(|(_, v)| *v)
            .sum()
    }

    /// Distinct layer prefixes that have at least one non-zero counter.
    pub fn live_layers(&self) -> Vec<String> {
        let mut layers: Vec<String> = self
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .filter_map(|(n, _)| n.split('.').next().map(str::to_owned))
            .collect();
        layers.sort();
        layers.dedup();
        layers
    }

    /// Render the `pamistat`-style report JSON (hand-rolled; no serde in the
    /// offline workspace).
    pub fn report_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                escape_json(name),
                s.count,
                s.sum,
                s.mean(),
                s.p50,
                s.p99,
                s.max
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Trace events (always compiled)
// ---------------------------------------------------------------------------

/// Event phase, mirroring the chrome://tracing phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span (`ph: "X"`, with duration).
    Span,
    /// An instantaneous event (`ph: "i"`).
    Instant,
}

/// One merged trace event. Timestamps are nanoseconds from a process-global
/// epoch, so events from different threads interleave on one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub ph: TracePhase,
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub tid: u64,
    pub arg: u64,
}

/// Serialize events to chrome://tracing's JSON object format
/// (`chrome://tracing` / Perfetto both load it). Timestamps are microseconds.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match e.ph {
            TracePhase::Span => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"v\":{}}}}}",
                    escape_json(e.name),
                    e.tid,
                    e.ts_ns as f64 / 1000.0,
                    e.dur_ns as f64 / 1000.0,
                    e.arg
                );
            }
            TracePhase::Instant => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{{\"v\":{}}}}}",
                    escape_json(e.name),
                    e.tid,
                    e.ts_ns as f64 / 1000.0,
                    e.arg
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn escape_json(s: &str) -> String {
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Implementation selection
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
mod enabled;
#[cfg(feature = "telemetry")]
pub use enabled::{Counter, Histogram, Stamp, Upc};

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{Counter, Histogram, Stamp, Upc};

/// True when the crate was compiled with the `telemetry` feature — callers
/// use this to gate value assertions and report emission.
pub const ENABLED: bool = cfg!(feature = "telemetry");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..64u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1");
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(v + 1), k as usize + 1, "2^{k}+1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_index() {
        for i in 0..HIST_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i);
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i);
            assert!(lb <= ub);
        }
    }

    #[test]
    fn chrome_json_shape() {
        let evs = [TraceEvent {
            name: "barrier",
            ph: TracePhase::Span,
            ts_ns: 1500,
            dur_ns: 3000,
            tid: 7,
            arg: 2,
        }];
        let j = chrome_trace_json(&evs);
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ts\":1.500"));
        assert!(j.contains("\"dur\":3.000"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("plain.name"), "plain.name");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
    }
}
