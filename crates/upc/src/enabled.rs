//! Real (telemetry-on) implementation of the UPC primitives.

use crate::{
    bucket_index, bucket_upper_bound, HistSummary, Snapshot, TraceEvent, TracePhase, HIST_BUCKETS,
};
use crossbeam::utils::CachePadded;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of exclusive per-thread stripes per counter. The first `STRIPES`
/// threads to touch telemetry each own one stripe and bump it with a non-RMW
/// relaxed load+store (exact, because a stripe has exactly one writer);
/// threads beyond that share an overflow cell via `fetch_add`.
const STRIPES: usize = 16;

const DEFAULT_TRACE_CAP: usize = 4096;

// -- process-global thread slots and epoch ----------------------------------

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// A nanosecond timestamp on the process-global telemetry clock. Grab one
/// where an operation starts, feed it to [`Histogram::record_since`] or
/// [`Upc::trace_span`] where it ends.
#[derive(Debug, Clone, Copy)]
pub struct Stamp {
    ns: u64,
}

impl Stamp {
    #[inline]
    pub fn now() -> Self {
        Stamp { ns: now_ns() }
    }

    #[inline]
    pub fn ns(&self) -> u64 {
        self.ns
    }

    /// Rehydrate a stamp from a raw nanosecond reading previously obtained
    /// with [`Stamp::ns`] — used to carry timestamps across a wire format
    /// (the PAMI envelope stamps sends so receivers can measure delivery
    /// latency on the shared process clock).
    #[inline]
    pub fn from_ns(ns: u64) -> Self {
        Stamp { ns }
    }

    /// Nanoseconds elapsed since this stamp was taken.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.ns)
    }
}

// -- counters ---------------------------------------------------------------

struct CounterCell {
    stripes: [CachePadded<AtomicU64>; STRIPES],
    overflow: CachePadded<AtomicU64>,
}

impl CounterCell {
    fn new() -> Self {
        CounterCell {
            stripes: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
            overflow: CachePadded::new(AtomicU64::new(0)),
        }
    }

    fn sum(&self) -> u64 {
        let mut total = self.overflow.load(Ordering::Relaxed);
        for s in &self.stripes {
            total = total.wrapping_add(s.load(Ordering::Relaxed));
        }
        total
    }
}

/// Lock-free event counter: cache-padded per-thread stripes aggregated at
/// read time. `add` is a couple of nanoseconds and never contends for the
/// first [`STRIPES`] threads in the process.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = thread_slot();
        if slot < STRIPES {
            // Exclusive stripe: single writer, so a non-RMW relaxed
            // load+store is exact and avoids the locked-bus RMW cost.
            let s = &*self.cell.stripes[slot];
            s.store(s.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
        } else {
            self.cell.overflow.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Bump the counter on the stripe selected by `pin` (typically the
    /// owning context id) rather than by thread arrival order.
    ///
    /// Thread-slot striping degrades when many short-lived bench threads
    /// burn through the first [`STRIPES`] slots and later workers pile onto
    /// the shared overflow cell; pinning by a stable small id keeps each
    /// context on its own cache-padded stripe regardless of which thread
    /// advances it. Two pins can map to the same stripe (`pin % STRIPES`),
    /// so this uses a real `fetch_add` — still uncontended in the common
    /// case of ≤ [`STRIPES`] contexts per counter.
    #[inline]
    pub fn add_pinned(&self, pin: usize, n: u64) {
        self.cell.stripes[pin & (STRIPES - 1)].fetch_add(n, Ordering::Relaxed);
    }

    /// [`Counter::add_pinned`] by one.
    #[inline]
    pub fn incr_pinned(&self, pin: usize) {
        self.add_pinned(pin, 1);
    }

    /// Aggregate the stripes. Safe to call concurrently with writers; the
    /// result is exact once writers have quiesced.
    pub fn value(&self) -> u64 {
        self.cell.sum()
    }
}

// -- histograms -------------------------------------------------------------

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn load_raw(&self) -> RawHist {
        RawHist {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone)]
struct RawHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl RawHist {
    fn zero() -> Self {
        RawHist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn merge(&mut self, other: &RawHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Quantile with linear interpolation inside the target bucket.
    ///
    /// The old behaviour returned the bucket's upper bound, so every
    /// reported p50/p99 landed on a power-of-two edge (4095, 16383, …) and
    /// latency gates only moved when a distribution crossed a whole octave.
    /// Interpolating by rank within the bucket (values assumed uniform in
    /// `[lower, min(upper, max)]`) tracks sub-octave shifts; for a uniform
    /// distribution the result is exact.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            let next = cum + b;
            if next >= target {
                let lo = crate::bucket_lower_bound(i);
                let hi = bucket_upper_bound(i).min(self.max);
                if hi <= lo {
                    return lo.min(self.max);
                }
                // Rank within the bucket, 1..=b; interpolate across the
                // bucket's value span.
                let pos = (target - cum) as f64 / *b as f64;
                let v = lo as f64 + (hi - lo) as f64 * pos;
                return (v as u64).min(self.max);
            }
            cum = next;
        }
        self.max
    }

    fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

/// Power-of-two-bucket latency histogram (HDR-style): bucket 0 holds the
/// value 0, bucket `k` holds `[2^(k-1), 2^k-1]`. Recording is four relaxed
/// RMWs — cheap enough for per-operation latencies off the per-packet path.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.cell;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the nanoseconds elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Stamp) {
        self.record(start.elapsed_ns());
    }

    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.cell.max.load(Ordering::Relaxed)
    }

    pub fn bucket_count(&self, i: usize) -> u64 {
        self.cell.buckets[i].load(Ordering::Relaxed)
    }

    pub fn quantile(&self, q: f64) -> u64 {
        self.cell.load_raw().quantile(q)
    }

    pub fn summary(&self) -> HistSummary {
        self.cell.load_raw().summary()
    }
}

// -- trace rings ------------------------------------------------------------

/// Per-slot seqlock state: 0 = never written, `2n+1` = write `n` in
/// progress, `2n+2` = write `n` complete.
struct TraceSlot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

/// Per-thread SPSC ring: the owning thread writes, any thread may read a
/// consistent snapshot. Fixed capacity, drop-oldest (the cursor simply laps).
struct TraceRing {
    tid: u64,
    cap: usize,
    cursor: AtomicU64,
    /// Events overwritten before any reader saw them (cursor laps). The
    /// sum over all rings surfaces as the `upc.trace_dropped` counter so a
    /// truncated trace is detectable from the report alone.
    dropped: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl TraceRing {
    fn new(tid: u64, cap: usize) -> Self {
        TraceRing {
            tid,
            cap,
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| TraceSlot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Owner-thread-only push. SeqCst on the seq transitions keeps readers
    /// from accepting torn slots; word stores sit between the odd and even
    /// seq stores.
    fn push(&self, words: [u64; 4]) {
        let idx = self.cursor.load(Ordering::Relaxed);
        if idx >= self.cap as u64 {
            // Lapping: the slot we are about to claim still holds the
            // oldest unread event — count it as dropped.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(idx as usize) & (self.cap - 1)];
        slot.seq.store(2 * idx + 1, Ordering::SeqCst);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::SeqCst);
        }
        slot.seq.store(2 * idx + 2, Ordering::SeqCst);
        self.cursor.store(idx + 1, Ordering::Release);
    }

    /// Read every completed slot, skipping any that are mid-write or get
    /// overwritten while we read them. Returns `(write_index, words)` pairs.
    fn read_all(&self) -> Vec<(u64, [u64; 4])> {
        let mut out = Vec::with_capacity(self.cap.min(64));
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let words: [u64; 4] = std::array::from_fn(|i| slot.words[i].load(Ordering::SeqCst));
            let s2 = slot.seq.load(Ordering::SeqCst);
            if s1 != s2 {
                continue; // overwritten mid-read
            }
            out.push(((s1 - 2) / 2, words));
        }
        out
    }
}

thread_local! {
    /// Registry-id → ring map for the current thread (tiny, linear scan).
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<TraceRing>)>> = const { RefCell::new(Vec::new()) };

    /// Per-thread trace-ring capacity override (see
    /// [`Upc::set_thread_trace_capacity`]). Consulted once, when the thread
    /// lazily creates its ring.
    static THREAD_TRACE_CAP: RefCell<Option<usize>> = const { RefCell::new(None) };
}

// -- registry ---------------------------------------------------------------

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

struct Inner {
    id: u64,
    trace_cap: usize,
    counters: Mutex<Vec<(&'static str, Arc<CounterCell>)>>,
    histograms: Mutex<Vec<(&'static str, Arc<HistCell>)>>,
    /// Interned event names; events store an index into this table.
    names: Mutex<Vec<&'static str>>,
    rings: Mutex<Vec<Arc<TraceRing>>>,
}

/// The UPC registry: hands out counters/histograms, owns the per-thread
/// trace rings, aggregates everything into [`Snapshot`]s and trace exports.
/// Clones share state; every layer of the stack holds one.
#[derive(Clone)]
pub struct Upc {
    inner: Arc<Inner>,
}

impl Default for Upc {
    fn default() -> Self {
        Self::new()
    }
}

impl Upc {
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAP)
    }

    /// `cap` is rounded up to a power of two (min 8) — per-thread ring size.
    pub fn with_trace_capacity(cap: usize) -> Self {
        let cap = cap.max(8).next_power_of_two();
        Upc {
            inner: Arc::new(Inner {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                trace_cap: cap,
                counters: Mutex::new(Vec::new()),
                histograms: Mutex::new(Vec::new()),
                names: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a new counter instance under `name`. Instances registered
    /// under the same name (e.g. one per node) are summed in snapshots.
    pub fn counter(&self, name: &'static str) -> Counter {
        let cell = Arc::new(CounterCell::new());
        self.inner.counters.lock().unwrap().push((name, cell.clone()));
        Counter { cell }
    }

    /// Register a new histogram instance under `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let cell = Arc::new(HistCell::new());
        self.inner
            .histograms
            .lock()
            .unwrap()
            .push((name, cell.clone()));
        Histogram { cell }
    }

    #[inline]
    pub fn stamp(&self) -> Stamp {
        Stamp::now()
    }

    #[inline]
    pub fn now_ns(&self) -> u64 {
        now_ns()
    }

    fn intern(&self, name: &'static str) -> u64 {
        let mut names = self.inner.names.lock().unwrap();
        if let Some(i) = names.iter().position(|n| std::ptr::eq(*n, name) || *n == name) {
            i as u64
        } else {
            names.push(name);
            (names.len() - 1) as u64
        }
    }

    /// Override the trace-ring capacity for the *calling thread* (rounded
    /// up to a power of two, min 8). Takes effect when the thread lazily
    /// creates its ring — i.e. call it before the thread's first
    /// `trace_instant`/`trace_span`; an existing ring keeps its size. Lets
    /// a chatty commthread carry a deep ring while worker threads stay
    /// small. `None` reverts to the registry default for future rings.
    pub fn set_thread_trace_capacity(&self, cap: Option<usize>) {
        THREAD_TRACE_CAP.with(|c| *c.borrow_mut() = cap.map(|n| n.max(8).next_power_of_two()));
    }

    fn ring(&self) -> Arc<TraceRing> {
        let id = self.inner.id;
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, r)) = rings.iter().find(|(rid, _)| *rid == id) {
                return r.clone();
            }
            let cap = THREAD_TRACE_CAP
                .with(|c| *c.borrow())
                .unwrap_or(self.inner.trace_cap);
            let r = Arc::new(TraceRing::new(thread_slot() as u64, cap));
            self.inner.rings.lock().unwrap().push(r.clone());
            rings.push((id, r.clone()));
            r
        })
    }

    #[inline]
    fn encode_w0(name_id: u64, ph: TracePhase) -> u64 {
        let phb = match ph {
            TracePhase::Span => 0u64,
            TracePhase::Instant => 1u64,
        };
        name_id | (phb << 32)
    }

    /// Record an instantaneous event on the calling thread's ring.
    pub fn trace_instant(&self, name: &'static str, arg: u64) {
        let id = self.intern(name);
        self.ring()
            .push([Self::encode_w0(id, TracePhase::Instant), now_ns(), 0, arg]);
    }

    /// Record a complete span from `start` to now.
    pub fn trace_span(&self, name: &'static str, start: Stamp, arg: u64) {
        let id = self.intern(name);
        let dur = start.elapsed_ns();
        self.ring()
            .push([Self::encode_w0(id, TracePhase::Span), start.ns(), dur, arg]);
    }

    /// Aggregate every registered counter and histogram, summing instances
    /// that share a name.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, cell) in self.inner.counters.lock().unwrap().iter() {
            *counters.entry((*name).to_owned()).or_insert(0) += cell.sum();
        }
        // Trace overflow is accounted per-ring; surface the sum so a
        // truncated trace export is detectable from the report alone.
        let dropped: u64 = self
            .inner
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum();
        *counters.entry("upc.trace_dropped".to_owned()).or_insert(0) += dropped;
        let mut hists: BTreeMap<String, RawHist> = BTreeMap::new();
        for (name, cell) in self.inner.histograms.lock().unwrap().iter() {
            hists
                .entry((*name).to_owned())
                .or_insert_with(RawHist::zero)
                .merge(&cell.load_raw());
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            histograms: hists
                .into_iter()
                .map(|(n, raw)| (n, raw.summary()))
                .collect(),
        }
    }

    /// Merge every thread's ring into one timeline sorted by timestamp.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let names: Vec<&'static str> = self.inner.names.lock().unwrap().clone();
        let rings: Vec<Arc<TraceRing>> = self.inner.rings.lock().unwrap().clone();
        let mut events = Vec::new();
        for ring in rings {
            let mut slots = ring.read_all();
            slots.sort_by_key(|(idx, _)| *idx);
            for (_, w) in slots {
                let name_id = (w[0] & 0xffff_ffff) as usize;
                let ph = if (w[0] >> 32) & 1 == 1 {
                    TracePhase::Instant
                } else {
                    TracePhase::Span
                };
                let name = names.get(name_id).copied().unwrap_or("?");
                events.push(TraceEvent {
                    name,
                    ph,
                    ts_ns: w[1],
                    dur_ns: w[2],
                    tid: ring.tid,
                    arg: w[3],
                });
            }
        }
        events.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(a.tid.cmp(&b.tid)));
        events
    }

    /// chrome://tracing export of the merged timeline.
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome_trace_json(&self.trace_events())
    }

    /// `pamistat`-style aggregate report.
    pub fn report_json(&self) -> String {
        self.snapshot().report_json()
    }
}
