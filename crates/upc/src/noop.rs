//! No-op mirror of the telemetry API, selected when the `telemetry` feature
//! is disabled. Every type is zero-sized and every method is an empty
//! `#[inline(always)]`, so probes in the PAMI stack compile away entirely —
//! the disabled build carries no instrumentation code at all.

use crate::{Snapshot, TraceEvent};

/// Zero-sized stand-in for the telemetry timestamp.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stamp;

impl Stamp {
    #[inline(always)]
    pub fn now() -> Self {
        Stamp
    }

    #[inline(always)]
    pub fn ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn from_ns(_ns: u64) -> Self {
        Stamp
    }
}

/// Zero-sized no-op counter.
#[derive(Clone, Default)]
pub struct Counter;

impl Counter {
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    #[inline(always)]
    pub fn incr(&self) {}

    #[inline(always)]
    pub fn add_pinned(&self, _pin: usize, _n: u64) {}

    #[inline(always)]
    pub fn incr_pinned(&self, _pin: usize) {}

    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// Zero-sized no-op histogram.
#[derive(Clone, Default)]
pub struct Histogram;

impl Histogram {
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    #[inline(always)]
    pub fn record_since(&self, _start: Stamp) {}

    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn max(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn bucket_count(&self, _i: usize) -> u64 {
        0
    }

    #[inline(always)]
    pub fn quantile(&self, _q: f64) -> u64 {
        0
    }

    #[inline(always)]
    pub fn summary(&self) -> crate::HistSummary {
        crate::HistSummary::default()
    }
}

/// Zero-sized no-op registry.
#[derive(Clone, Default)]
pub struct Upc;

impl Upc {
    #[inline(always)]
    pub fn new() -> Self {
        Upc
    }

    #[inline(always)]
    pub fn with_trace_capacity(_cap: usize) -> Self {
        Upc
    }

    #[inline(always)]
    pub fn counter(&self, _name: &'static str) -> Counter {
        Counter
    }

    #[inline(always)]
    pub fn histogram(&self, _name: &'static str) -> Histogram {
        Histogram
    }

    #[inline(always)]
    pub fn stamp(&self) -> Stamp {
        Stamp
    }

    #[inline(always)]
    pub fn now_ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn set_thread_trace_capacity(&self, _cap: Option<usize>) {}

    #[inline(always)]
    pub fn trace_instant(&self, _name: &'static str, _arg: u64) {}

    #[inline(always)]
    pub fn trace_span(&self, _name: &'static str, _start: Stamp, _arg: u64) {}

    #[inline(always)]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    #[inline(always)]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    pub fn chrome_trace_json(&self) -> String {
        crate::chrome_trace_json(&[])
    }

    pub fn report_json(&self) -> String {
        Snapshot::default().report_json()
    }
}
