//! The BG/Q L2 atomic unit.
//!
//! Each BG/Q node exposes atomic operations on arbitrary 8-byte-aligned
//! words, implemented inside the L2 cache slices. Software reaches them
//! through aliased addresses; the operation is encoded in unused address
//! bits. The operations relevant to PAMI are reproduced here on top of
//! `AtomicU64`. The crucial property carried over from the hardware is that
//! every operation is a *single* atomic round trip — there is no
//! compare-and-swap retry loop visible to the caller except where the
//! hardware itself loops ([`BoundedCounter::bounded_increment`] maps to a
//! single hardware op and is implemented with one `fetch_update`).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// A 64-bit word serviced by the (simulated) L2 atomic unit.
///
/// Mirrors the BG/Q "L2 atomic" operation set on a single counter word:
/// load-increment, load-decrement, load-clear, store, store-add, store-max.
/// Each counter is cache-padded, as the real words would live in distinct L2
/// lines to avoid slice contention.
#[derive(Debug, Default)]
pub struct L2Counter {
    word: CachePadded<AtomicU64>,
}

impl L2Counter {
    /// Create a counter holding `value`.
    pub fn new(value: u64) -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(value)),
        }
    }

    /// Plain atomic load.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// BG/Q `load-increment`: returns the value *before* the increment.
    #[inline]
    pub fn load_increment(&self) -> u64 {
        self.word.fetch_add(1, Ordering::AcqRel)
    }

    /// BG/Q `load-decrement`: returns the value *before* the decrement.
    #[inline]
    pub fn load_decrement(&self) -> u64 {
        self.word.fetch_sub(1, Ordering::AcqRel)
    }

    /// BG/Q `load-clear`: returns the previous value and zeroes the word.
    #[inline]
    pub fn load_clear(&self) -> u64 {
        self.word.swap(0, Ordering::AcqRel)
    }

    /// Plain atomic store.
    #[inline]
    pub fn store(&self, value: u64) {
        self.word.store(value, Ordering::Release)
    }

    /// BG/Q `store-add`: adds `delta` without returning a value.
    #[inline]
    pub fn store_add(&self, delta: u64) {
        self.word.fetch_add(delta, Ordering::AcqRel);
    }

    /// BG/Q `store-add` with a signed delta (used by messaging byte counters
    /// which the MU decrements as packets arrive).
    #[inline]
    pub fn store_add_signed(&self, delta: i64) {
        if delta >= 0 {
            self.word.fetch_add(delta as u64, Ordering::AcqRel);
        } else {
            self.word.fetch_sub(delta.unsigned_abs(), Ordering::AcqRel);
        }
    }

    /// BG/Q `store-max`: keeps the maximum of the current value and `value`.
    #[inline]
    pub fn store_max(&self, value: u64) {
        self.word.fetch_max(value, Ordering::AcqRel);
    }

    /// BG/Q `store-or`: bitwise OR (used for flag words).
    #[inline]
    pub fn store_or(&self, bits: u64) {
        self.word.fetch_or(bits, Ordering::AcqRel);
    }
}

/// Sentinel the BG/Q hardware returns when a bounded operation fails.
///
/// The real unit returns `0x8000_0000_0000_0000` from a bounded
/// load-increment whose value has reached its bound; the Rust API surfaces
/// that case as `None`, but the constant is kept public because protocol
/// code sizes its windows around it in the original library.
pub const L2_BOUNDED_FAIL: u64 = 0x8000_0000_0000_0000;

/// A counter with a *bounded increment* operation — the primitive PAMI uses
/// to allocate slots in fixed-size lockless queues.
///
/// `bounded_increment` atomically performs "if `counter < bound { counter +=
/// 1; return old }` else fail" as one operation. The bound itself is a second
/// L2 word that the (single) consumer advances as it frees slots.
#[derive(Debug)]
pub struct BoundedCounter {
    value: CachePadded<AtomicU64>,
    bound: CachePadded<AtomicU64>,
}

impl BoundedCounter {
    /// Create a counter at `value` that may be incremented while strictly
    /// below `bound`.
    pub fn new(value: u64, bound: u64) -> Self {
        Self {
            value: CachePadded::new(AtomicU64::new(value)),
            bound: CachePadded::new(AtomicU64::new(bound)),
        }
    }

    /// Atomically claim the next value if it is below the current bound.
    ///
    /// Returns the claimed (pre-increment) value, or `None` if the counter
    /// has reached its bound — the software must then fall back (PAMI pushes
    /// to the mutex-guarded overflow queue).
    #[inline]
    pub fn bounded_increment(&self) -> Option<u64> {
        // The hardware evaluates value/bound as one transaction; a CAS loop
        // against a racing *bound advance* can only turn failure into
        // success, never the reverse, so fetch_update preserves semantics.
        let bound = self.bound.load(Ordering::Acquire);
        self.value
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if v < bound {
                    Some(v + 1)
                } else {
                    None
                }
            })
            .ok()
    }

    /// Atomically claim up to `n` consecutive values below the current bound.
    ///
    /// Generalizes [`BoundedCounter::bounded_increment`] to a batch: one
    /// `fetch_update` claims `min(n, bound − value)` slots and returns the
    /// claimed range, or `None` when no slot is free (or `n == 0`). Like the
    /// single-slot op, a racing bound advance can only turn failure into
    /// success, so pre-loading the bound preserves the hardware's
    /// one-transaction semantics.
    #[inline]
    pub fn bounded_add(&self, n: u64) -> Option<std::ops::Range<u64>> {
        if n == 0 {
            return None;
        }
        let bound = self.bound.load(Ordering::Acquire);
        self.value
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if v < bound {
                    Some(v + n.min(bound - v))
                } else {
                    None
                }
            })
            .ok()
            .map(|start| start..(start + n.min(bound - start)))
    }

    /// Current counter value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Current bound.
    #[inline]
    pub fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Raise the bound by `delta` slots (consumer side, after freeing slots).
    #[inline]
    pub fn advance_bound(&self, delta: u64) {
        self.bound.fetch_add(delta, Ordering::AcqRel);
    }

    /// Set the bound to an absolute value.
    #[inline]
    pub fn set_bound(&self, bound: u64) {
        self.bound.store(bound, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_increment_returns_previous() {
        let c = L2Counter::new(7);
        assert_eq!(c.load_increment(), 7);
        assert_eq!(c.load(), 8);
    }

    #[test]
    fn load_decrement_returns_previous() {
        let c = L2Counter::new(3);
        assert_eq!(c.load_decrement(), 3);
        assert_eq!(c.load(), 2);
    }

    #[test]
    fn load_clear_zeroes() {
        let c = L2Counter::new(55);
        assert_eq!(c.load_clear(), 55);
        assert_eq!(c.load(), 0);
    }

    #[test]
    fn store_max_keeps_maximum() {
        let c = L2Counter::new(10);
        c.store_max(4);
        assert_eq!(c.load(), 10);
        c.store_max(19);
        assert_eq!(c.load(), 19);
    }

    #[test]
    fn store_add_signed_decrements() {
        let c = L2Counter::new(100);
        c.store_add_signed(-30);
        assert_eq!(c.load(), 70);
        c.store_add_signed(5);
        assert_eq!(c.load(), 75);
    }

    #[test]
    fn store_or_sets_bits() {
        let c = L2Counter::new(0b0001);
        c.store_or(0b0110);
        assert_eq!(c.load(), 0b0111);
    }

    #[test]
    fn bounded_increment_respects_bound() {
        let b = BoundedCounter::new(0, 3);
        assert_eq!(b.bounded_increment(), Some(0));
        assert_eq!(b.bounded_increment(), Some(1));
        assert_eq!(b.bounded_increment(), Some(2));
        assert_eq!(b.bounded_increment(), None);
        b.advance_bound(1);
        assert_eq!(b.bounded_increment(), Some(3));
        assert_eq!(b.bounded_increment(), None);
    }

    #[test]
    fn bounded_add_claims_partial_batches() {
        let b = BoundedCounter::new(0, 5);
        assert_eq!(b.bounded_add(3), Some(0..3));
        // Only two slots left: the claim is truncated, not failed.
        assert_eq!(b.bounded_add(4), Some(3..5));
        assert_eq!(b.bounded_add(1), None);
        assert_eq!(b.bounded_add(0), None);
        b.advance_bound(2);
        assert_eq!(b.bounded_add(10), Some(5..7));
        assert_eq!(b.value(), 7);
    }

    #[test]
    fn bounded_add_concurrent_claims_are_disjoint_and_exhaustive() {
        const THREADS: usize = 8;
        const BOUND: u64 = 4096;
        let b = Arc::new(BoundedCounter::new(0, BOUND));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                // Mix batch sizes per thread to exercise truncation.
                let n = 1 + (t as u64 % 5);
                while let Some(r) = b.bounded_add(n) {
                    got.extend(r);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..BOUND).collect::<Vec<_>>());
        assert_eq!(b.value(), BOUND);
    }

    #[test]
    fn bounded_increment_concurrent_never_exceeds_bound() {
        const THREADS: usize = 8;
        const BOUND: u64 = 1000;
        let b = Arc::new(BoundedCounter::new(0, BOUND));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut claimed = Vec::new();
                while let Some(v) = b.bounded_increment() {
                    claimed.push(v);
                }
                claimed
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Every value in [0, BOUND) claimed exactly once, none beyond.
        assert_eq!(all, (0..BOUND).collect::<Vec<_>>());
        assert_eq!(b.value(), BOUND);
    }

    #[test]
    fn concurrent_load_increment_is_a_valid_ticket_source() {
        const THREADS: usize = 4;
        const PER: usize = 2000;
        let c = Arc::new(L2Counter::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..PER).map(|_| c.load_increment()).collect::<Vec<_>>()
            }));
        }
        let mut tickets: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..(THREADS * PER) as u64).collect::<Vec<_>>());
    }
}
