//! The BG/Q wakeup unit.
//!
//! "The main purpose of the wakeup unit is to increase application
//! performance by avoiding software polling. ... The thread can be put into
//! a wait via a special instruction until a desired event occurs." (paper
//! section II.A). PAMI programs the unit to watch the shared-memory region
//! containing a context's work queue: commthreads execute the PPC `wait`
//! instruction and consume no resources until a producer stores into the
//! watched region.
//!
//! The simulation keeps the same programming model: a [`WakeupUnit`] hands
//! out [`WakeupRegion`]s; writers call [`WakeupRegion::touch`] after storing
//! to the memory the region covers; a [`Waiter`] subscribed to one or more
//! regions parks in [`Waiter::wait`] until any of them has been touched since
//! it last looked.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

#[derive(Default)]
struct WaiterInner {
    /// Event count; incremented by every touch on a subscribed region.
    pending: Mutex<u64>,
    cv: Condvar,
    /// Set when the owning thread is inside `wait` — lets tests and the
    /// commthread scheduler observe that a thread really is suspended.
    parked: AtomicBool,
}

struct RegionInner {
    /// Monotone count of touches, readable without subscribing.
    epoch: AtomicU64,
    /// Number of entries in `watchers`, maintained under the `watchers`
    /// lock but readable without it — producers on the MU fast path skip
    /// the lock entirely when nobody is subscribed.
    watcher_count: AtomicUsize,
    watchers: Mutex<Vec<Arc<WaiterInner>>>,
    id: usize,
}

/// A watched memory region handed out by [`WakeupUnit::region`]. Cloning
/// shares the underlying watch — producers each hold a clone.
#[derive(Clone)]
pub struct WakeupRegion {
    inner: Arc<RegionInner>,
}

impl WakeupRegion {
    /// Signal that memory covered by this region has been written. Wakes
    /// every subscribed [`Waiter`]. Cheap when nobody is subscribed: one
    /// atomic increment and one atomic load — the watcher lock is only
    /// touched when a waiter is actually registered, keeping the MU
    /// packet-delivery fast path lock-free.
    pub fn touch(&self) {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        if self.inner.watcher_count.load(Ordering::Acquire) == 0 {
            // A touch racing a concurrent subscribe counts as happening
            // before it — subscriptions never observe earlier touches.
            return;
        }
        let watchers = self.inner.watchers.lock();
        for w in watchers.iter() {
            let mut pending = w.pending.lock();
            *pending += 1;
            w.cv.notify_all();
        }
    }

    /// Number of touches so far; pollable without a subscription.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Whether any [`Waiter`] is currently subscribed — one atomic load.
    /// Per-event producers (MU packet delivery) consult this to skip
    /// [`WakeupRegion::touch`] entirely when nobody could observe it; the
    /// race against a concurrent subscribe is the same "touches from
    /// before the subscription are not observed" contract `touch` itself
    /// documents.
    #[inline]
    pub fn has_watchers(&self) -> bool {
        self.inner.watcher_count.load(Ordering::Acquire) > 0
    }

    /// Identifier of this region within its unit (diagnostics).
    pub fn id(&self) -> usize {
        self.inner.id
    }
}

/// One wakeup unit, conventionally one per simulated node.
#[derive(Default)]
pub struct WakeupUnit {
    regions: Mutex<Vec<Arc<RegionInner>>>,
}

impl WakeupUnit {
    /// Create a unit with no regions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new watched region.
    pub fn region(&self) -> WakeupRegion {
        let mut regions = self.regions.lock();
        let inner = Arc::new(RegionInner {
            epoch: AtomicU64::new(0),
            watcher_count: AtomicUsize::new(0),
            watchers: Mutex::new(Vec::new()),
            id: regions.len(),
        });
        regions.push(Arc::clone(&inner));
        WakeupRegion { inner }
    }

    /// Number of regions allocated so far.
    pub fn region_count(&self) -> usize {
        self.regions.lock().len()
    }
}

/// A thread-side handle that can suspend until subscribed regions are
/// touched — the analogue of configuring the wakeup unit's WAC registers and
/// executing the PPC `wait` instruction.
pub struct Waiter {
    inner: Arc<WaiterInner>,
    /// Touches consumed so far; `wait` returns once `pending > consumed`.
    consumed: u64,
    subscriptions: Vec<WakeupRegion>,
}

impl Default for Waiter {
    fn default() -> Self {
        Self::new()
    }
}

impl Waiter {
    /// Create a waiter with no subscriptions.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(WaiterInner::default()),
            consumed: 0,
            subscriptions: Vec::new(),
        }
    }

    /// Start watching `region`. Touches from before the subscription are not
    /// observed.
    pub fn subscribe(&mut self, region: &WakeupRegion) {
        let mut watchers = region.inner.watchers.lock();
        watchers.push(Arc::clone(&self.inner));
        region
            .inner
            .watcher_count
            .store(watchers.len(), Ordering::Release);
        drop(watchers);
        self.subscriptions.push(region.clone());
    }

    /// Suspend until any subscribed region is touched (or has been touched
    /// since the last `wait`/`consume_events`). Returns the number of events
    /// consumed (≥ 1).
    pub fn wait(&mut self) -> u64 {
        let mut pending = self.inner.pending.lock();
        self.inner.parked.store(true, Ordering::Release);
        while *pending == self.consumed {
            self.inner.cv.wait(&mut pending);
        }
        self.inner.parked.store(false, Ordering::Release);
        let events = *pending - self.consumed;
        self.consumed = *pending;
        events
    }

    /// Like [`Waiter::wait`] but gives up after `timeout`; returns the number
    /// of events consumed (0 on timeout). Commthreads use a timeout so that
    /// shutdown and priority changes are always observed.
    pub fn wait_timeout(&mut self, timeout: Duration) -> u64 {
        let mut pending = self.inner.pending.lock();
        self.inner.parked.store(true, Ordering::Release);
        if *pending == self.consumed {
            let _ = self.inner.cv.wait_for(&mut pending, timeout);
        }
        self.inner.parked.store(false, Ordering::Release);
        let events = *pending - self.consumed;
        self.consumed = *pending;
        events
    }

    /// Consume any pending events without blocking; returns how many there
    /// were.
    pub fn consume_events(&mut self) -> u64 {
        let pending = self.inner.pending.lock();
        let events = *pending - self.consumed;
        self.consumed = *pending;
        events
    }

    /// Whether the owning thread is currently suspended inside `wait`.
    pub fn is_parked(&self) -> bool {
        self.inner.parked.load(Ordering::Acquire)
    }
}

impl Drop for Waiter {
    fn drop(&mut self) {
        for region in &self.subscriptions {
            let mut watchers = region.inner.watchers.lock();
            watchers.retain(|w| !Arc::ptr_eq(w, &self.inner));
            region
                .inner
                .watcher_count
                .store(watchers.len(), Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn touch_increments_epoch() {
        let unit = WakeupUnit::new();
        let region = unit.region();
        assert_eq!(region.epoch(), 0);
        region.touch();
        region.touch();
        assert_eq!(region.epoch(), 2);
    }

    #[test]
    fn wait_returns_after_touch() {
        let unit = WakeupUnit::new();
        let region = unit.region();
        let mut waiter = Waiter::new();
        waiter.subscribe(&region);
        let r2 = region.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.touch();
        });
        let events = waiter.wait();
        assert_eq!(events, 1);
        t.join().unwrap();
    }

    #[test]
    fn pre_wait_touches_are_not_lost() {
        let unit = WakeupUnit::new();
        let region = unit.region();
        let mut waiter = Waiter::new();
        waiter.subscribe(&region);
        region.touch();
        region.touch();
        // Both touches happened before wait; wait must not block.
        let start = Instant::now();
        assert_eq!(waiter.wait(), 2);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wait_timeout_expires_without_events() {
        let unit = WakeupUnit::new();
        let region = unit.region();
        let mut waiter = Waiter::new();
        waiter.subscribe(&region);
        assert_eq!(waiter.wait_timeout(Duration::from_millis(10)), 0);
    }

    #[test]
    fn multiple_regions_any_touch_wakes() {
        let unit = WakeupUnit::new();
        let a = unit.region();
        let b = unit.region();
        let mut waiter = Waiter::new();
        waiter.subscribe(&a);
        waiter.subscribe(&b);
        let b2 = b.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b2.touch();
        });
        assert_eq!(waiter.wait(), 1);
        t.join().unwrap();
    }

    #[test]
    fn unsubscribed_waiter_does_not_leak_notifications() {
        let unit = WakeupUnit::new();
        let region = unit.region();
        {
            let mut waiter = Waiter::new();
            waiter.subscribe(&region);
            drop(waiter);
        }
        // Touch after drop must not panic or deliver to a dead waiter.
        region.touch();
        assert_eq!(region.epoch(), 1);
    }

    #[test]
    fn many_producers_one_waiter_sees_all_events() {
        const PRODUCERS: usize = 4;
        const TOUCHES: u64 = 1000;
        let unit = WakeupUnit::new();
        let region = unit.region();
        let mut waiter = Waiter::new();
        waiter.subscribe(&region);
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let r = region.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..TOUCHES {
                    r.touch();
                }
            }));
        }
        let mut seen = 0;
        while seen < (PRODUCERS as u64) * TOUCHES {
            seen += waiter.wait();
        }
        assert_eq!(seen, (PRODUCERS as u64) * TOUCHES);
        for h in handles {
            h.join().unwrap();
        }
    }
}
