//! Registered communication memory.
//!
//! The simulated MU, collective network, and shared-address collectives all
//! read and write application buffers the way RDMA hardware does: given a
//! (region, offset, length) triple, asynchronously with respect to the
//! owning thread. [`MemRegion`] is that registered buffer: clonable (clones
//! share the storage, like multiple mappings of the same physical pages),
//! `Send + Sync`, with bounds-checked byte-level access.
//!
//! # Concurrency contract
//!
//! Accesses go through raw-pointer copies, so *disjoint* concurrent accesses
//! are race-free, exactly as on real hardware. Overlapping concurrent
//! accesses are a program bug on BG/Q (the MU gives no ordering there
//! either); the protocols in this workspace never issue them — every region
//! byte has a single writer between synchronization points (a completion
//! counter update or a wakeup), which is what makes the interior
//! `UnsafeCell` sound in practice.

use std::cell::UnsafeCell;
use std::sync::Arc;

struct RegionStorage {
    buf: UnsafeCell<Box<[u8]>>,
}

// SAFETY: all access is through raw-pointer copies with the documented
// single-writer-per-byte protocol; `&RegionStorage` never materializes a
// shared or mutable reference to the buffer contents.
unsafe impl Send for RegionStorage {}
unsafe impl Sync for RegionStorage {}

/// A registered communication buffer that the simulated hardware can read
/// and write directly ("RDMA").
#[derive(Clone)]
pub struct MemRegion {
    storage: Arc<RegionStorage>,
    len: usize,
}

impl std::fmt::Debug for MemRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemRegion").field("len", &self.len).finish()
    }
}

impl MemRegion {
    /// Allocate a zero-filled region of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self::from_vec(vec![0u8; len])
    }

    /// Register a region initialized from `data`.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Self {
            storage: Arc::new(RegionStorage {
                buf: UnsafeCell::new(data.into_boxed_slice()),
            }),
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        // Box<[u8]> pointer is stable for the life of the Arc.
        unsafe { (*self.storage.buf.get()).as_mut_ptr() }
    }

    /// Copy `src` into the region at `offset`.
    ///
    /// # Panics
    /// If `offset + src.len()` exceeds the region length.
    pub fn write(&self, offset: usize, src: &[u8]) {
        assert!(
            offset.checked_add(src.len()).is_some_and(|end| end <= self.len),
            "MemRegion write out of bounds: offset {offset} + len {} > region {}",
            src.len(),
            self.len
        );
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base().add(offset), src.len());
        }
    }

    /// Copy `dst.len()` bytes from the region at `offset` into `dst`.
    ///
    /// # Panics
    /// If `offset + dst.len()` exceeds the region length.
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        assert!(
            offset.checked_add(dst.len()).is_some_and(|end| end <= self.len),
            "MemRegion read out of bounds: offset {offset} + len {} > region {}",
            dst.len(),
            self.len
        );
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Copy `len` bytes from `src` (at `src_offset`) into `self` (at
    /// `dst_offset`) without an intermediate buffer — the zero-copy path the
    /// global virtual address space enables for intra-node transfers, and
    /// the MU's direct-put path between nodes.
    ///
    /// # Panics
    /// On out-of-bounds ranges.
    pub fn copy_from(&self, dst_offset: usize, src: &MemRegion, src_offset: usize, len: usize) {
        assert!(
            src_offset.checked_add(len).is_some_and(|end| end <= src.len),
            "MemRegion copy_from source out of bounds"
        );
        assert!(
            dst_offset.checked_add(len).is_some_and(|end| end <= self.len),
            "MemRegion copy_from destination out of bounds"
        );
        unsafe {
            if Arc::ptr_eq(&self.storage, &src.storage) {
                // Same physical pages: tolerate overlap.
                std::ptr::copy(src.base().add(src_offset), self.base().add(dst_offset), len);
            } else {
                std::ptr::copy_nonoverlapping(
                    src.base().add(src_offset),
                    self.base().add(dst_offset),
                    len,
                );
            }
        }
    }

    /// Fill `len` bytes at `offset` with `byte`.
    pub fn fill(&self, offset: usize, len: usize, byte: u8) {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "MemRegion fill out of bounds"
        );
        unsafe { std::ptr::write_bytes(self.base().add(offset), byte, len) }
    }

    /// Snapshot the whole region (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.read(0, &mut out);
        out
    }

    /// Read a little-endian `f64` at `offset` (8-byte granularity payloads
    /// for the collective network's floating-point reductions).
    pub fn read_f64(&self, offset: usize) -> f64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        f64::from_le_bytes(b)
    }

    /// Write a little-endian `f64` at `offset`.
    pub fn write_f64(&self, offset: usize, value: f64) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Read a little-endian `i64` at `offset`.
    pub fn read_i64(&self, offset: usize) -> i64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        i64::from_le_bytes(b)
    }

    /// Write a little-endian `i64` at `offset`.
    pub fn write_i64(&self, offset: usize, value: i64) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Whether two handles alias the same storage.
    pub fn same_region(&self, other: &MemRegion) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let r = MemRegion::zeroed(64);
        r.write(8, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        r.read(8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_storage() {
        let r = MemRegion::zeroed(16);
        let r2 = r.clone();
        r.write(0, &[42]);
        let mut out = [0u8; 1];
        r2.read(0, &mut out);
        assert_eq!(out[0], 42);
        assert!(r.same_region(&r2));
    }

    #[test]
    fn copy_from_distinct_regions() {
        let src = MemRegion::from_vec((0..32).collect());
        let dst = MemRegion::zeroed(32);
        dst.copy_from(4, &src, 8, 16);
        let v = dst.to_vec();
        assert_eq!(&v[4..20], &(8..24).collect::<Vec<u8>>()[..]);
        assert!(v[..4].iter().all(|&b| b == 0));
        assert!(v[20..].iter().all(|&b| b == 0));
    }

    #[test]
    fn copy_from_same_region_overlapping() {
        let r = MemRegion::from_vec((0..16).collect());
        let alias = r.clone();
        r.copy_from(2, &alias, 0, 8);
        let v = r.to_vec();
        assert_eq!(&v[2..10], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn f64_and_i64_round_trip() {
        let r = MemRegion::zeroed(16);
        r.write_f64(0, std::f64::consts::PI);
        r.write_i64(8, -12345);
        assert_eq!(r.read_f64(0), std::f64::consts::PI);
        assert_eq!(r.read_i64(8), -12345);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let r = MemRegion::zeroed(4);
        r.write(2, &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let r = MemRegion::zeroed(4);
        let mut buf = [0u8; 8];
        r.read(0, &mut buf);
    }

    #[test]
    fn disjoint_concurrent_writes_are_race_free() {
        let r = MemRegion::zeroed(1024);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let r = r.clone();
                s.spawn(move || {
                    let chunk = vec![t as u8 + 1; 128];
                    r.write(t * 128, &chunk);
                });
            }
        });
        let v = r.to_vec();
        for t in 0..8usize {
            assert!(v[t * 128..(t + 1) * 128].iter().all(|&b| b == t as u8 + 1));
        }
    }
}
