//! Reception/injection byte counters.
//!
//! The MU tracks transfer completion through counters in L2 atomic memory:
//! software arms a counter with the expected byte count and the hardware
//! decrements it as packets are sent or delivered; zero means complete.
//! Progress loops poll the counter (or park on a wakeup region covering it)
//! instead of inspecting packets — this is the only completion signal the
//! dynamically-routed direct-put path has.

use std::sync::Arc;

use crate::l2::L2Counter;

/// A shareable completion counter ("hardware" decrements, software polls).
#[derive(Clone, Debug)]
pub struct Counter {
    word: Arc<L2Counter>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A counter armed at zero (already complete).
    pub fn new() -> Self {
        Counter { word: Arc::new(L2Counter::new(0)) }
    }

    /// Arm the counter with `bytes` outstanding. Adding (rather than
    /// storing) lets one counter track several descriptors, as PAMI does
    /// for multi-slice transfers.
    pub fn add_expected(&self, bytes: u64) {
        self.word.store_add(bytes);
    }

    /// Hardware side: record `bytes` delivered.
    pub fn delivered(&self, bytes: u64) {
        self.word.store_add_signed(-(bytes as i64));
    }

    /// Outstanding byte count.
    pub fn outstanding(&self) -> u64 {
        self.word.load()
    }

    /// Whether every armed byte has been delivered.
    pub fn is_complete(&self) -> bool {
        self.outstanding() == 0
    }

    /// Spin until complete (test helper; production code advances contexts
    /// or parks on a wakeup region instead).
    pub fn spin_wait(&self) {
        while !self.is_complete() {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_and_completes() {
        let c = Counter::new();
        assert!(c.is_complete());
        c.add_expected(100);
        assert!(!c.is_complete());
        assert_eq!(c.outstanding(), 100);
        c.delivered(60);
        c.delivered(40);
        assert!(c.is_complete());
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add_expected(8);
        c2.delivered(8);
        assert!(c.is_complete());
    }

    #[test]
    fn tracks_multiple_descriptors() {
        let c = Counter::new();
        c.add_expected(10);
        c.add_expected(20);
        c.delivered(25);
        assert_eq!(c.outstanding(), 5);
        c.delivered(5);
        assert!(c.is_complete());
    }
}
