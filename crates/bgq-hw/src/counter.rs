//! Reception/injection byte counters.
//!
//! The MU tracks transfer completion through counters in L2 atomic memory:
//! software arms a counter with the expected byte count and the hardware
//! decrements it as packets are sent or delivered; zero means complete.
//! Progress loops poll the counter (or park on a wakeup region covering it)
//! instead of inspecting packets — this is the only completion signal the
//! dynamically-routed direct-put path has.
//!
//! With the RAS reliability layer a counter can also *fail*: when the
//! link-level retry protocol exhausts its budget the transfer will never
//! complete, and polling loops must not hang. A failed counter reports
//! [`Counter::is_complete`] = `true` (so `advance`-until-complete loops
//! terminate) and carries the [`DeliveryFault`] for the completion callback
//! to translate into a typed error.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::l2::L2Counter;

/// Why a transfer tracked by a [`Counter`] will never complete. The MU
/// analogue of a RAS fatal-event code attached to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum DeliveryFault {
    /// Link-level retry budget exhausted (persistent drop/corruption).
    Timeout = 1,
    /// No healthy route to the destination (link(s) killed).
    Unreachable = 2,
    /// Payload failed its CRC check and could not be recovered.
    Corrupt = 3,
    /// The transfer was abandoned for another reason (e.g. teardown).
    Aborted = 4,
}

impl DeliveryFault {
    fn from_u8(v: u8) -> Option<DeliveryFault> {
        match v {
            1 => Some(DeliveryFault::Timeout),
            2 => Some(DeliveryFault::Unreachable),
            3 => Some(DeliveryFault::Corrupt),
            4 => Some(DeliveryFault::Aborted),
            _ => None,
        }
    }
}

/// A shareable completion counter ("hardware" decrements, software polls).
#[derive(Clone, Debug)]
pub struct Counter {
    word: Arc<L2Counter>,
    /// 0 = healthy; otherwise a `DeliveryFault` discriminant. First failure
    /// wins — later deliveries/failures cannot clear it.
    fault: Arc<AtomicU8>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A counter armed at zero (already complete).
    pub fn new() -> Self {
        Counter { word: Arc::new(L2Counter::new(0)), fault: Arc::new(AtomicU8::new(0)) }
    }

    /// Arm the counter with `bytes` outstanding. Adding (rather than
    /// storing) lets one counter track several descriptors, as PAMI does
    /// for multi-slice transfers.
    pub fn add_expected(&self, bytes: u64) {
        self.word.store_add(bytes);
    }

    /// Hardware side: record `bytes` delivered.
    pub fn delivered(&self, bytes: u64) {
        self.word.store_add_signed(-(bytes as i64));
    }

    /// Outstanding byte count.
    pub fn outstanding(&self) -> u64 {
        self.word.load()
    }

    /// RAS side: mark the transfer as permanently failed. First fault wins;
    /// returns `true` if this call recorded the fault.
    pub fn fail(&self, fault: DeliveryFault) -> bool {
        self.fault
            .compare_exchange(0, fault as u8, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The recorded delivery fault, if the transfer failed.
    pub fn fault(&self) -> Option<DeliveryFault> {
        DeliveryFault::from_u8(self.fault.load(Ordering::Acquire))
    }

    /// Whether polling should stop: every armed byte delivered, *or* the
    /// transfer failed and will never finish.
    pub fn is_complete(&self) -> bool {
        self.outstanding() == 0 || self.fault().is_some()
    }

    /// Completed successfully: all bytes delivered and no fault recorded.
    pub fn is_ok(&self) -> bool {
        self.outstanding() == 0 && self.fault().is_none()
    }

    /// Spin until complete (test helper; production code advances contexts
    /// or parks on a wakeup region instead).
    pub fn spin_wait(&self) {
        while !self.is_complete() {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_and_completes() {
        let c = Counter::new();
        assert!(c.is_complete());
        c.add_expected(100);
        assert!(!c.is_complete());
        assert_eq!(c.outstanding(), 100);
        c.delivered(60);
        c.delivered(40);
        assert!(c.is_complete());
        assert!(c.is_ok());
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add_expected(8);
        c2.delivered(8);
        assert!(c.is_complete());
    }

    #[test]
    fn tracks_multiple_descriptors() {
        let c = Counter::new();
        c.add_expected(10);
        c.add_expected(20);
        c.delivered(25);
        assert_eq!(c.outstanding(), 5);
        c.delivered(5);
        assert!(c.is_complete());
    }

    #[test]
    fn failure_completes_without_delivery() {
        let c = Counter::new();
        c.add_expected(4096);
        assert!(!c.is_complete());
        assert!(c.fail(DeliveryFault::Timeout));
        assert!(c.is_complete(), "failed counter must not hang pollers");
        assert!(!c.is_ok());
        assert_eq!(c.fault(), Some(DeliveryFault::Timeout));
        assert_eq!(c.outstanding(), 4096, "bytes stay outstanding");
    }

    #[test]
    fn first_fault_wins() {
        let c = Counter::new();
        c.add_expected(1);
        assert!(c.fail(DeliveryFault::Unreachable));
        assert!(!c.fail(DeliveryFault::Timeout));
        assert_eq!(c.fault(), Some(DeliveryFault::Unreachable));
        let c2 = c.clone();
        assert_eq!(c2.fault(), Some(DeliveryFault::Unreachable), "clones share fault");
    }
}
