//! The "low overhead L2 atomic mutex".
//!
//! Where the paper's MPI layer must serialize (most prominently the matched
//! receive queue, section IV.A), it uses a mutex built directly on L2
//! atomics rather than a kernel futex: a ticket lock whose ticket dispenser
//! is an L2 `load-increment` and whose serving counter is a plain L2 word.
//! Fairness (FIFO grant order) falls out of the ticket discipline, which is
//! what keeps wildcard-receive serialization cheap under contention.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// A fair ticket lock built from two (simulated) L2 atomic words.
///
/// This deliberately does not wrap the protected data the way
/// `parking_lot::Mutex` does — PAMI uses it to bracket short critical
/// sections over structures it does not own (e.g. the MPICH receive queue) —
/// but a guard keeps unlocks paired with locks.
#[derive(Debug, Default)]
pub struct L2TicketMutex {
    next_ticket: CachePadded<AtomicU64>,
    now_serving: CachePadded<AtomicU64>,
}

/// RAII guard returned by [`L2TicketMutex::lock`]; releases on drop.
#[must_use = "dropping the guard immediately releases the mutex"]
pub struct L2TicketGuard<'a> {
    mutex: &'a L2TicketMutex,
}

impl L2TicketMutex {
    /// Create an unlocked mutex.
    pub const fn new() -> Self {
        Self {
            next_ticket: CachePadded::new(AtomicU64::new(0)),
            now_serving: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Acquire the lock, spinning briefly then yielding — the commthread
    /// design means hold times are tens of cycles, so a short spin almost
    /// always suffices, but yielding keeps oversubscribed hosts live.
    pub fn lock(&self) -> L2TicketGuard<'_> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        L2TicketGuard { mutex: self }
    }

    /// Try to acquire without waiting. Succeeds only when no one holds the
    /// lock *and* no earlier ticket is pending.
    pub fn try_lock(&self) -> Option<L2TicketGuard<'_>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        match self.next_ticket.compare_exchange(
            serving,
            serving + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Some(L2TicketGuard { mutex: self }),
            Err(_) => None,
        }
    }

    /// Whether some thread currently holds (or is queued for) the lock.
    pub fn is_contended(&self) -> bool {
        self.next_ticket.load(Ordering::Acquire) != self.now_serving.load(Ordering::Acquire)
    }
}

impl Drop for L2TicketGuard<'_> {
    fn drop(&mut self) {
        self.mutex.now_serving.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_cycles() {
        let m = L2TicketMutex::new();
        for _ in 0..100 {
            let g = m.lock();
            drop(g);
        }
        assert!(!m.is_contended());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = L2TicketMutex::new();
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 5000;
        let m = Arc::new(L2TicketMutex::new());
        // A deliberately non-atomic counter: races would lose increments.
        struct RacyCell(std::cell::UnsafeCell<u64>);
        // SAFETY: test-only; every access is bracketed by the mutex under test.
        unsafe impl Send for RacyCell {}
        unsafe impl Sync for RacyCell {}
        let counter = Arc::new(RacyCell(std::cell::UnsafeCell::new(0u64)));
        struct SendPtr(Arc<RacyCell>);
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            let c = SendPtr(Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let _g = m.lock();
                    unsafe { *c.0 .0.get() += 1 };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *counter.0.get() }, (THREADS * ITERS) as u64);
    }
}
