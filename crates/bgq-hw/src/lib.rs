//! Simulated Blue Gene/Q node-level hardware: the L2 atomic unit, the wakeup
//! unit, registered memory regions, and the CNK shared-address-space model.
//!
//! The Blue Gene/Q compute chip implements atomic operations (load-increment,
//! store-add, bounded-increment, ...) directly in the L2 cache, reachable
//! through aliased addresses. PAMI builds all of its lockless machinery on
//! those operations. This crate reproduces that toolbox in portable Rust:
//!
//! * [`l2`] — the atomic operations themselves ([`l2::L2Counter`],
//!   [`l2::BoundedCounter`]) with the exact semantics PAMI relies on,
//!   including the *bounded increment* used to claim slots in fixed-size
//!   queues.
//! * [`mutex`] — the "low overhead L2 atomic mutex" (a ticket lock built from
//!   two L2 counters) that PAMI/MPI use to serialize the receive queue.
//! * [`queue`] — the lockless multi-producer/single-consumer array queue with
//!   a mutex-guarded overflow list, exactly the structure described in
//!   section III.B of the paper.
//! * [`wakeup`] — the wakeup unit: threads wait on watched memory regions and
//!   are woken by stores to those regions, instead of polling.
//! * [`memory`] — registered communication buffers ([`memory::MemRegion`])
//!   that the simulated MU reads and writes like RDMA hardware.
//! * [`cnk`] — the Compute Node Kernel services PAMI depends on: the global
//!   virtual-address table that lets any process on a node read its peers'
//!   registered memory, and commthread priority levels.

pub mod cnk;
pub mod counter;
pub mod l2;
pub mod memory;
pub mod mutex;
pub mod queue;
pub mod wakeup;

pub use cnk::{CommThreadPriority, GlobalAddress, GlobalVa};
pub use counter::{Counter, DeliveryFault};
pub use l2::{BoundedCounter, L2Counter};
pub use memory::MemRegion;
pub use mutex::L2TicketMutex;
pub use queue::WorkQueue;
pub use wakeup::{WakeupRegion, WakeupUnit, Waiter};
