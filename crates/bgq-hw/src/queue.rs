//! The PAMI lockless queue (paper section III.B).
//!
//! "One of the supported L2 Atomics operations is *bounded increment*. This
//! combines an atomic load-and-increment with a compare against bounds,
//! enabling atomic allocation of elements to a fixed-sized array used to
//! implement a fast scalable queue. This fixed-sized array is enhanced with
//! an overflow queue to handle cases when the array is full. The overflow
//! queue is accessed through mutexes."
//!
//! [`WorkQueue`] is that structure: any number of producers `push` work into
//! a fixed ring whose slots are claimed with a single
//! [`BoundedCounter::bounded_increment`]; exactly one consumer (the thread
//! advancing the owning PAMI context) `pop`s. When the ring is full,
//! producers divert to a `parking_lot::Mutex`-guarded overflow list, and stay
//! diverted until the consumer has drained it — that keeps each producer's
//! items in FIFO order, which is what MPI ordering requires of the handoff
//! path.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::l2::{BoundedCounter, L2Counter};

struct Slot<T> {
    /// Lap/readiness protocol: `seq == pos` means free for the producer that
    /// claimed `pos`; `seq == pos + 1` means the value is ready for the
    /// consumer; the consumer then sets `seq = pos + capacity` to free the
    /// slot for the next lap.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Multi-producer / single-consumer lockless queue with mutex-guarded
/// overflow, as used for PAMI context work handoff and shared-memory packet
/// queues.
///
/// Guarantees:
/// * per-producer FIFO: two pushes by the same thread are popped in push
///   order;
/// * lock-free fast path: a push that finds ring space performs one bounded
///   increment plus one slot write;
/// * the consumer never blocks: [`WorkQueue::pop`] returns `None` when the
///   queue is empty *or* when the head item has been claimed but not yet
///   written (the producer was preempted mid-publish) — callers are advance
///   loops that simply come back.
///
/// Exactly one thread may call [`WorkQueue::pop`] (and the other consumer
/// methods); this is the same contract the paper's context-advance rule
/// imposes and it is asserted in debug builds.
pub struct WorkQueue<T> {
    slots: Box<[Slot<T>]>,
    capacity: u64,
    /// Producer cursor: claimed via bounded increment, bound maintained at
    /// `head + capacity` by the consumer.
    tail: BoundedCounter,
    /// Consumer cursor; written only by the consumer.
    head: CachePadded<AtomicU64>,
    overflow: Mutex<VecDeque<T>>,
    /// True from the first overflow push until the consumer drains the
    /// overflow list; while set, all producers divert to the overflow so
    /// per-producer ordering is preserved.
    overflow_active: CachePadded<AtomicBool>,
    /// Total pushes that took the overflow (mutex) path, for ablation
    /// benches comparing lockless vs locked behaviour. The total push
    /// count is *derived* (`tail` claims + this), not maintained — the
    /// push fast path carries no accounting RMW of its own.
    overflow_pushes: L2Counter,
}

unsafe impl<T: Send> Send for WorkQueue<T> {}
unsafe impl<T: Send> Sync for WorkQueue<T> {}

impl<T> WorkQueue<T> {
    /// Create a queue whose lockless ring holds `capacity` items
    /// (`capacity` must be ≥ 1; it is rounded up to a power of two so the
    /// slot index is a mask).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two() as u64;
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            capacity,
            tail: BoundedCounter::new(0, capacity),
            head: CachePadded::new(AtomicU64::new(0)),
            overflow: Mutex::new(VecDeque::new()),
            overflow_active: CachePadded::new(AtomicBool::new(false)),
            overflow_pushes: L2Counter::new(0),
        }
    }

    /// Ring capacity (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Push an item; wait-free unless the ring is full, in which case the
    /// item takes the mutex-guarded overflow path. Returns `true` if the
    /// lockless fast path was used.
    pub fn push(&self, item: T) -> bool {
        if self.overflow_active.load(Ordering::Acquire) {
            self.push_overflow(item);
            return false;
        }
        match self.tail.bounded_increment() {
            Some(pos) => {
                let slot = &self.slots[(pos & (self.capacity - 1)) as usize];
                debug_assert_eq!(slot.seq.load(Ordering::Acquire), pos);
                unsafe { (*slot.value.get()).write(item) };
                slot.seq.store(pos + 1, Ordering::Release);
                true
            }
            None => {
                self.push_overflow(item);
                false
            }
        }
    }

    /// Push `n` items produced by `make(i)` (for `i` in `0..n`), claiming as
    /// many ring slots as possible with a *single* bounded-increment
    /// ([`BoundedCounter::bounded_add`]) instead of one per item. Items that
    /// do not fit the ring divert to the overflow list, in order. Returns how
    /// many items took the lockless ring path.
    ///
    /// This is the MU's message-delivery primitive: all packets of a message
    /// are claimed in one atomic transaction, so an N-packet eager message
    /// costs one claim rather than N.
    pub fn push_batch_with<F>(&self, n: u64, mut make: F) -> usize
    where
        F: FnMut(u64) -> T,
    {
        if n == 0 {
            return 0;
        }
        let mut next = 0u64;
        if !self.overflow_active.load(Ordering::Acquire) {
            if let Some(range) = self.tail.bounded_add(n) {
                for pos in range {
                    let slot = &self.slots[(pos & (self.capacity - 1)) as usize];
                    debug_assert_eq!(slot.seq.load(Ordering::Acquire), pos);
                    unsafe { (*slot.value.get()).write(make(next)) };
                    slot.seq.store(pos + 1, Ordering::Release);
                    next += 1;
                }
            }
        }
        let ring = next as usize;
        if next < n {
            let mut ovf = self.overflow.lock();
            // Same flag-under-lock protocol as `push_overflow`; the ring
            // prefix was claimed at earlier positions than anything a later
            // push can claim, so draining ring-before-overflow preserves
            // per-producer FIFO order across the split.
            self.overflow_active.store(true, Ordering::Release);
            while next < n {
                ovf.push_back(make(next));
                next += 1;
            }
            self.overflow_pushes.store_add(n - ring as u64);
        }
        ring
    }

    /// Batch push from an exact-size iterator; see
    /// [`WorkQueue::push_batch_with`]. Returns how many items took the
    /// lockless ring path.
    pub fn push_batch<I>(&self, items: I) -> usize
    where
        I: IntoIterator<Item = T>,
        I::IntoIter: ExactSizeIterator,
    {
        let mut items = items.into_iter();
        let n = items.len() as u64;
        self.push_batch_with(n, |_| items.next().expect("iterator shorter than len()"))
    }

    fn push_overflow(&self, item: T) {
        let mut ovf = self.overflow.lock();
        // Set the flag while holding the lock so the consumer's
        // drain-then-clear (also under the lock) cannot miss this item.
        self.overflow_active.store(true, Ordering::Release);
        ovf.push_back(item);
        self.overflow_pushes.store_add(1);
    }

    /// Pop the next item (single consumer only). Returns `None` when the
    /// queue is empty or the head item is still being written.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & (self.capacity - 1)) as usize];
        if slot.seq.load(Ordering::Acquire) == head + 1 {
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.seq.store(head + self.capacity, Ordering::Release);
            self.head.store(head + 1, Ordering::Release);
            // Free the slot for producers `capacity` ahead.
            self.tail.advance_bound(1);
            return Some(value);
        }
        if self.tail.value() > head {
            // Claimed but not yet published; try again on the next advance.
            return None;
        }
        if self.overflow_active.load(Ordering::Acquire) {
            let mut ovf = self.overflow.lock();
            if self.tail.value() > head {
                // Re-check under the lock: a producer claims its batch's
                // ring prefix *before* pushing the overflow suffix (and
                // before taking this lock), so holding the lock makes that
                // claim visible. Ring items precede overflow items in
                // per-producer order — drain the ring first, come back.
                return None;
            }
            let item = ovf.pop_front();
            if ovf.is_empty() {
                self.overflow_active.store(false, Ordering::Release);
            }
            return item;
        }
        None
    }

    /// Pop up to `max` items into `out` (single consumer only). All
    /// consecutive ready ring slots are consumed with one head store and one
    /// bound advance, then the overflow list is drained (under its mutex) if
    /// the ring is exhausted. Returns the number of items appended to `out`.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.head.load(Ordering::Relaxed);
        let mut k = 0u64;
        while (k as usize) < max {
            let pos = head + k;
            let slot = &self.slots[(pos & (self.capacity - 1)) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            slot.seq.store(pos + self.capacity, Ordering::Release);
            k += 1;
        }
        if k > 0 {
            self.head.store(head + k, Ordering::Release);
            self.tail.advance_bound(k);
        }
        let mut popped = k as usize;
        if popped < max {
            if self.tail.value() > head + k {
                // Head slot claimed but not yet published; come back later.
                return popped;
            }
            if self.overflow_active.load(Ordering::Acquire) {
                let mut ovf = self.overflow.lock();
                if self.tail.value() > head + k {
                    // Same re-check as `pop`: a claim made before the
                    // overflow push would make draining the overflow here
                    // reorder one producer's batch (ring prefix after
                    // overflow suffix). Prefer the ring; retry next call.
                    return popped;
                }
                while popped < max {
                    match ovf.pop_front() {
                        Some(item) => {
                            out.push(item);
                            popped += 1;
                        }
                        None => break,
                    }
                }
                if ovf.is_empty() {
                    self.overflow_active.store(false, Ordering::Release);
                }
            }
        }
        popped
    }

    /// Whether both the ring and the overflow list are (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Acquire);
        self.tail.value() == head && !self.overflow_active.load(Ordering::Acquire)
    }

    /// Approximate number of queued items (ring claims plus overflow).
    pub fn len(&self) -> usize {
        let ring = self
            .tail
            .value()
            .saturating_sub(self.head.load(Ordering::Acquire)) as usize;
        let ovf = if self.overflow_active.load(Ordering::Acquire) {
            self.overflow.lock().len()
        } else {
            0
        };
        ring + ovf
    }

    /// How many pushes have taken the overflow (mutex) path so far.
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes.load()
    }

    /// Total pushes observed. Derived, not counted: every ring push claims
    /// exactly one `tail` position (a monotone counter that never rewinds)
    /// and every diverted push increments `overflow_pushes`, so the sum is
    /// the push total with zero cost on the push fast path.
    pub fn total_pushes(&self) -> u64 {
        self.tail.value() + self.overflow_pushes()
    }
}

impl<T> Drop for WorkQueue<T> {
    fn drop(&mut self) {
        // Drain any published-but-unpopped ring items so their destructors
        // run; overflow drains via VecDeque's own drop.
        while let Some(item) = self.pop() {
            drop(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_producer() {
        let q = WorkQueue::with_capacity(8);
        for i in 0..8 {
            assert!(q.push(i));
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_engages_when_ring_full_and_preserves_order() {
        let q = WorkQueue::with_capacity(4);
        for i in 0..4 {
            assert!(q.push(i), "ring path for {i}");
        }
        for i in 4..10 {
            assert!(!q.push(i), "overflow path for {i}");
        }
        assert_eq!(q.overflow_pushes(), 6);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // Overflow drained: pushes go lockless again.
        assert!(q.push(99));
        assert_eq!(q.pop(), Some(99));
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = WorkQueue::with_capacity(4);
        for lap in 0..100u64 {
            for i in 0..4 {
                assert!(q.push(lap * 4 + i));
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let q = WorkQueue::with_capacity(2);
        assert_eq!(q.len(), 0);
        q.push(1u32);
        q.push(2);
        q.push(3); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_releases_queued_items() {
        let live = Arc::new(AtomicU64::new(0));
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let q = WorkQueue::with_capacity(4);
            for _ in 0..6 {
                live.fetch_add(1, Ordering::SeqCst);
                q.push(Tracked(Arc::clone(&live)));
            }
            drop(q);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn push_batch_fits_ring() {
        let q = WorkQueue::with_capacity(8);
        assert_eq!(q.push_batch((0..5u64).collect::<Vec<_>>()), 5);
        assert_eq!(q.overflow_pushes(), 0);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(16, &mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop_batch(16, &mut out), 0);
    }

    #[test]
    fn push_batch_splits_across_ring_and_overflow_in_order() {
        let q = WorkQueue::with_capacity(4);
        // 7 items into a 4-slot ring: 4 lockless, 3 overflow.
        assert_eq!(q.push_batch((0..7u64).collect::<Vec<_>>()), 4);
        assert_eq!(q.overflow_pushes(), 3);
        assert_eq!(q.len(), 7);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(7, &mut out), 7);
        assert_eq!(out, (0..7).collect::<Vec<_>>());
        // Overflow drained: next batch is lockless again.
        assert_eq!(q.push_batch((10..12u64).collect::<Vec<_>>()), 2);
    }

    #[test]
    fn pop_batch_respects_max_and_mixes_with_pop() {
        let q = WorkQueue::with_capacity(8);
        q.push_batch((0..6u64).collect::<Vec<_>>());
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(2, &mut out), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop_batch(8, &mut out), 3);
        assert_eq!(out, vec![0, 1, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_batch_while_overflow_active_keeps_order() {
        let q = WorkQueue::with_capacity(2);
        q.push(0u64);
        q.push(1);
        q.push(2); // engages overflow
        assert_eq!(q.push_batch((3..6u64).collect::<Vec<_>>()), 0, "diverts while overflow active");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(16, &mut out), 6);
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn push_batch_wraps_many_laps() {
        let q = WorkQueue::with_capacity(4);
        let mut out = Vec::new();
        for lap in 0..200u64 {
            assert_eq!(q.push_batch((lap * 3..lap * 3 + 3).collect::<Vec<_>>()), 3);
            out.clear();
            assert_eq!(q.pop_batch(4, &mut out), 3);
            assert_eq!(out, vec![lap * 3, lap * 3 + 1, lap * 3 + 2]);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn batch_drop_releases_queued_items() {
        let live = Arc::new(AtomicU64::new(0));
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let q = WorkQueue::with_capacity(4);
            let n = 7u64;
            live.fetch_add(n, Ordering::SeqCst);
            q.push_batch_with(n, |_| Tracked(Arc::clone(&live)));
            drop(q);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn mpsc_batched_producers_preserve_per_producer_order() {
        const PRODUCERS: u64 = 4;
        const BATCHES: u64 = 4000;
        const BATCH: u64 = 5;
        let q = Arc::new(WorkQueue::with_capacity(32));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for b in 0..BATCHES {
                    let base = b * BATCH;
                    q.push_batch_with(BATCH, |i| (p, base + i));
                }
            }));
        }
        let mut next = vec![0u64; PRODUCERS as usize];
        let mut received = 0u64;
        let mut out = Vec::new();
        while received < PRODUCERS * BATCHES * BATCH {
            out.clear();
            if q.pop_batch(16, &mut out) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for &(p, i) in &out {
                assert_eq!(next[p as usize], i, "producer {p} order violated");
                next[p as usize] += 1;
                received += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
        assert_eq!(q.total_pushes(), PRODUCERS * BATCHES * BATCH);
    }

    /// Pin the single-producer/single-consumer fast path — the shape every
    /// context-owned injection FIFO sees after context sharding (one
    /// producer: the owning context; one consumer: the pumping engine).
    /// With a ring large enough to never fill, every push must take the
    /// lockless path (zero overflow pushes) while a concurrent consumer
    /// drains in strict FIFO order.
    #[test]
    fn spsc_fast_path_never_overflows_and_stays_ordered() {
        const ITEMS: u64 = 4096;
        let q = Arc::new(WorkQueue::<u64>::with_capacity(ITEMS as usize));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..ITEMS {
                    assert!(q.push(i), "ring has space; push {i} must be lockless");
                }
            })
        };
        let mut next = 0u64;
        let mut out = Vec::new();
        while next < ITEMS {
            out.clear();
            if q.pop_batch(64, &mut out) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for &v in &out {
                assert_eq!(v, next, "SPSC order violated");
                next += 1;
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.overflow_pushes(), 0, "SPSC fast path must never take the mutex");
        assert_eq!(q.total_pushes(), ITEMS);
    }

    #[test]
    fn mpsc_all_items_arrive_in_per_producer_order() {
        const PRODUCERS: u64 = 6;
        const PER: u64 = 20_000;
        let q = Arc::new(WorkQueue::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push((p, i));
                }
            }));
        }
        let mut next = vec![0u64; PRODUCERS as usize];
        let mut received = 0u64;
        while received < PRODUCERS * PER {
            if let Some((p, i)) = q.pop() {
                assert_eq!(
                    next[p as usize], i,
                    "producer {p} items must arrive in order"
                );
                next[p as usize] += 1;
                received += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
        assert_eq!(q.total_pushes(), PRODUCERS * PER);
    }
}
