//! Compute Node Kernel (CNK) services.
//!
//! Two CNK facilities matter to PAMI (paper section II.D):
//!
//! 1. **Commthreads** — special pthreads with extended low/high priority
//!    levels, reserved for messaging software. The priorities let a
//!    commthread run uninterrupted during low-level network operations and
//!    get completely out of the way otherwise. The simulation keeps the
//!    priority levels as data ([`CommThreadPriority`]) consumed by the
//!    commthread pool in the `pami` crate, which realizes them with a
//!    cooperative park/yield discipline.
//!
//! 2. **The global virtual address space** — CNK maintains a translation
//!    table of every process's memory so that any process on a node can read
//!    its peers' buffers, eliminating copies in intra-node collectives.
//!    [`GlobalVa`] is that table: processes publish [`MemRegion`]s under a
//!    [`GlobalAddress`] and peers resolve them directly.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::memory::MemRegion;

/// CNK scheduling levels for commthreads. Plain pthreads sit between the two
/// extended levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommThreadPriority {
    /// "Completely out of the way": the commthread only runs when no
    /// application thread wants the hardware thread (realized by parking on
    /// the wakeup unit).
    ExtendedLow,
    /// Normal pthread priority.
    Normal,
    /// "Without risk of being preempted": bracket short critical network
    /// operations.
    ExtendedHigh,
}

/// A node-wide global virtual address: (process rank on node, region id,
/// byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddress {
    /// Process index within the node (0..ppn).
    pub local_rank: usize,
    /// Region id returned by [`GlobalVa::publish`].
    pub region: u64,
    /// Byte offset within the region.
    pub offset: usize,
}

#[derive(Default)]
struct VaTable {
    regions: HashMap<(usize, u64), MemRegion>,
    next_id: u64,
}

/// The per-node global virtual-address translation table. One instance is
/// shared (via `Arc`) by every simulated process on the node.
#[derive(Clone, Default)]
pub struct GlobalVa {
    table: Arc<RwLock<VaTable>>,
}

impl GlobalVa {
    /// Create an empty table for a node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `region` as readable/writable by every process on the node.
    /// Returns the region id half of the [`GlobalAddress`].
    pub fn publish(&self, local_rank: usize, region: MemRegion) -> u64 {
        let mut t = self.table.write();
        let id = t.next_id;
        t.next_id += 1;
        t.regions.insert((local_rank, id), region);
        id
    }

    /// Withdraw a published region (process exit / buffer free).
    pub fn unpublish(&self, local_rank: usize, region: u64) -> bool {
        self.table.write().regions.remove(&(local_rank, region)).is_some()
    }

    /// Resolve a peer's region; `None` if never published or withdrawn.
    pub fn resolve(&self, local_rank: usize, region: u64) -> Option<MemRegion> {
        self.table.read().regions.get(&(local_rank, region)).cloned()
    }

    /// Resolve a full address to (region, offset).
    pub fn resolve_addr(&self, addr: GlobalAddress) -> Option<(MemRegion, usize)> {
        self.resolve(addr.local_rank, addr.region)
            .map(|r| (r, addr.offset))
    }

    /// Copy `len` bytes from one global address to another — the zero-extra-
    /// copy intra-node path ("a process can read the data from its peers").
    ///
    /// # Panics
    /// If either address does not resolve or the ranges are out of bounds.
    pub fn copy(&self, dst: GlobalAddress, src: GlobalAddress, len: usize) {
        let (srk, soff) = self
            .resolve_addr(src)
            .expect("GlobalVa copy: unresolved source address");
        let (drk, doff) = self
            .resolve_addr(dst)
            .expect("GlobalVa copy: unresolved destination address");
        drk.copy_from(doff, &srk, soff, len);
    }

    /// Number of currently published regions on the node.
    pub fn published_count(&self) -> usize {
        self.table.read().regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_resolve_round_trip() {
        let va = GlobalVa::new();
        let region = MemRegion::from_vec(vec![7u8; 32]);
        let id = va.publish(3, region.clone());
        let got = va.resolve(3, id).expect("published region resolves");
        assert!(got.same_region(&region));
    }

    #[test]
    fn unpublish_removes() {
        let va = GlobalVa::new();
        let id = va.publish(0, MemRegion::zeroed(8));
        assert!(va.unpublish(0, id));
        assert!(va.resolve(0, id).is_none());
        assert!(!va.unpublish(0, id));
    }

    #[test]
    fn ids_are_unique_across_ranks() {
        let va = GlobalVa::new();
        let a = va.publish(0, MemRegion::zeroed(8));
        let b = va.publish(1, MemRegion::zeroed(8));
        assert_ne!(a, b);
        assert_eq!(va.published_count(), 2);
    }

    #[test]
    fn peer_copy_moves_bytes_between_processes() {
        let va = GlobalVa::new();
        let src = MemRegion::from_vec((0..16).collect());
        let dst = MemRegion::zeroed(16);
        let sid = va.publish(0, src);
        let did = va.publish(1, dst.clone());
        va.copy(
            GlobalAddress { local_rank: 1, region: did, offset: 4 },
            GlobalAddress { local_rank: 0, region: sid, offset: 0 },
            8,
        );
        assert_eq!(&dst.to_vec()[4..12], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn shared_table_visible_across_clones() {
        let va = GlobalVa::new();
        let va2 = va.clone();
        let id = va.publish(0, MemRegion::zeroed(4));
        assert!(va2.resolve(0, id).is_some());
    }

    #[test]
    fn priority_ordering() {
        assert!(CommThreadPriority::ExtendedLow < CommThreadPriority::Normal);
        assert!(CommThreadPriority::Normal < CommThreadPriority::ExtendedHigh);
    }
}
