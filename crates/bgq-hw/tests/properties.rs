//! Property-based tests of the L2-atomic primitives and the lockless queue.

use bgq_hw::{BoundedCounter, Counter, L2Counter, WorkQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential push/pop against a model VecDeque: the queue is a FIFO
    /// regardless of ring capacity and overflow engagement.
    #[test]
    fn workqueue_matches_vecdeque_model(
        capacity in 1usize..32,
        ops in proptest::collection::vec(proptest::option::weighted(0.6, 0u8..255), 1..300),
    ) {
        let q: WorkQueue<u8> = WorkQueue::with_capacity(capacity);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                None => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain the rest.
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.pop(), Some(v));
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// Bounded increments never exceed the bound, and claims are dense.
    #[test]
    fn bounded_counter_claims_are_dense(bound in 0u64..200, extra in 1u64..50) {
        let c = BoundedCounter::new(0, bound);
        let mut claimed = Vec::new();
        for _ in 0..bound + extra {
            if let Some(v) = c.bounded_increment() {
                claimed.push(v);
            }
        }
        prop_assert_eq!(claimed.len() as u64, bound);
        for (i, v) in claimed.iter().enumerate() {
            prop_assert_eq!(*v, i as u64);
        }
        prop_assert!(c.bounded_increment().is_none());
        // Raising the bound reopens exactly the new slots.
        c.advance_bound(extra);
        let mut more = 0;
        while c.bounded_increment().is_some() {
            more += 1;
        }
        prop_assert_eq!(more, extra);
    }

    /// Batched push/pop against the same VecDeque model: `push_batch` and
    /// `pop_batch` interleaved with single-item operations preserve FIFO
    /// order and lose nothing, across ring capacities small enough to force
    /// the overflow path mid-batch.
    #[test]
    fn workqueue_batch_matches_vecdeque_model(
        capacity in 1usize..24,
        ops in proptest::collection::vec(0u8..4, 1..200),
        seq0 in 0u32..1000,
    ) {
        let mut seq = seq0;
        let q: WorkQueue<u32> = WorkQueue::with_capacity(capacity);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                0 => {
                    q.push(seq);
                    model.push_back(seq);
                    seq += 1;
                }
                1 => {
                    // Batch push, size chosen to straddle the ring capacity.
                    let n = (seq as usize % (capacity + 3)) + 1;
                    let items: Vec<u32> = (seq..seq + n as u32).collect();
                    q.push_batch(items.clone());
                    model.extend(items);
                    seq += n as u32;
                }
                2 => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                _ => {
                    let max = (seq as usize % 7) + 1;
                    let mut got = Vec::new();
                    q.pop_batch(max, &mut got);
                    let mut want = Vec::new();
                    for _ in 0..max {
                        match model.pop_front() {
                            Some(v) => want.push(v),
                            None => break,
                        }
                    }
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        let mut rest = Vec::new();
        q.pop_batch(usize::MAX, &mut rest);
        prop_assert_eq!(rest, model.into_iter().collect::<Vec<_>>());
        prop_assert!(q.is_empty());
    }

    /// L2 counter arithmetic is a plain register under sequential use.
    #[test]
    fn l2_counter_sequential_semantics(start in 0u64..1000, deltas in proptest::collection::vec(0i64..100, 0..50)) {
        let c = L2Counter::new(start);
        let mut model = start;
        for d in deltas {
            if d % 3 == 0 {
                prop_assert_eq!(c.load_increment(), model);
                model += 1;
            } else if d % 3 == 1 {
                c.store_add(d as u64);
                model += d as u64;
            } else {
                c.store_max(d as u64);
                model = model.max(d as u64);
            }
            prop_assert_eq!(c.load(), model);
        }
    }

    /// Completion counters balance: armed == delivered ⇒ complete, with
    /// any interleaving of arms and deliveries that never over-delivers.
    #[test]
    fn counter_balances(chunks in proptest::collection::vec(1u64..1000, 1..20)) {
        let c = Counter::new();
        let total: u64 = chunks.iter().sum();
        c.add_expected(total);
        let mut delivered = 0;
        for ch in &chunks {
            prop_assert!(!c.is_complete() || delivered == total);
            c.delivered(*ch);
            delivered += ch;
        }
        prop_assert!(c.is_complete());
    }
}

/// Concurrent MPSC with mixed single and batched producers, drained by a
/// batching consumer: nothing lost, duplicated, or reordered per producer,
/// with capacities that force batches to straddle the ring/overflow split.
#[test]
fn workqueue_mixed_batch_producers_preserve_order() {
    for capacity in [1usize, 3, 16, 128] {
        let q: std::sync::Arc<WorkQueue<(u8, u32)>> =
            std::sync::Arc::new(WorkQueue::with_capacity(capacity));
        const PRODUCERS: u8 = 4;
        const PER: u32 = 4000;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    let mut i = 0u32;
                    while i < PER {
                        if (i / 7).is_multiple_of(2) {
                            // Batch of up to 5 (clipped at PER).
                            let n = 5.min(PER - i);
                            let batch: Vec<(u8, u32)> =
                                (i..i + n).map(|k| (p, k)).collect();
                            q.push_batch(batch);
                            i += n;
                        } else {
                            q.push((p, i));
                            i += 1;
                        }
                    }
                });
            }
            let mut next = [0u32; PRODUCERS as usize];
            let mut seen = 0usize;
            let mut buf = Vec::new();
            while seen < PRODUCERS as usize * PER as usize {
                buf.clear();
                q.pop_batch(64, &mut buf);
                if buf.is_empty() {
                    std::thread::yield_now();
                    continue;
                }
                for &(p, i) in &buf {
                    assert_eq!(
                        next[p as usize], i,
                        "producer {p} reordered (cap {capacity})"
                    );
                    next[p as usize] += 1;
                    seen += 1;
                }
            }
        });
        assert!(q.is_empty());
    }
}

/// Concurrent MPSC: whatever interleaving the scheduler produces, nothing
/// is lost, duplicated, or reordered per producer (randomized capacities
/// force the overflow path).
#[test]
fn workqueue_concurrent_never_loses_items() {
    for capacity in [1usize, 2, 8, 64] {
        let q: std::sync::Arc<WorkQueue<(u8, u32)>> =
            std::sync::Arc::new(WorkQueue::with_capacity(capacity));
        const PRODUCERS: u8 = 3;
        const PER: u32 = 5000;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER {
                        q.push((p, i));
                    }
                });
            }
            let mut next = [0u32; PRODUCERS as usize];
            let mut seen = 0;
            while seen < PRODUCERS as usize * PER as usize {
                if let Some((p, i)) = q.pop() {
                    assert_eq!(next[p as usize], i, "producer {p} reordered (cap {capacity})");
                    next[p as usize] += 1;
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert!(q.is_empty());
    }
}
