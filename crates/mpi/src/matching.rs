//! The receive matching engine.
//!
//! The paper kept "the default MPICH2 receive queue algorithm with a low
//! overhead L2 atomic mutex to serialize access to it" because wildcard
//! receives — common in Blue Gene applications — make parallel receive
//! queues painful (section IV.A). That is exactly the structure here: one
//! posted-receive queue plus one unexpected-message queue per rank,
//! guarded by a single [`L2TicketMutex`]; first-match semantics in queue
//! order implement the MPI ordering rules, including `ANY_SOURCE` /
//! `ANY_TAG`.

use std::collections::VecDeque;
use std::sync::Arc;

use bgq_hw::{L2TicketMutex, MemRegion};
use bgq_upc::{Counter, Histogram, Upc};
use parking_lot::Mutex;

use crate::request::RequestInner;
use crate::types::{matches, Status, Tag, ANY_SOURCE, ANY_TAG};

/// A posted receive waiting for its message.
pub struct PostedRecv {
    /// Wanted source rank (or [`crate::ANY_SOURCE`]).
    pub src: i32,
    /// Wanted tag (or [`crate::ANY_TAG`]).
    pub tag: Tag,
    /// Communicator id.
    pub comm: u32,
    /// Destination buffer.
    pub buffer: (MemRegion, usize, usize),
    /// Request to complete.
    pub request: Arc<RequestInner>,
}

/// State of an unexpected message's payload.
pub enum UnexpectedData {
    /// Payload still streaming into the staging buffer.
    Arriving,
    /// Fully staged.
    Ready,
    /// A posted receive claimed it mid-arrival; deliver there on arrival.
    Claimed {
        /// The claimant's buffer.
        buffer: (MemRegion, usize, usize),
        /// The claimant's request.
        request: Arc<RequestInner>,
    },
}

/// A message that arrived before its receive was posted.
pub struct Unexpected {
    /// Sender rank within the communicator.
    pub src: i32,
    /// Message tag.
    pub tag: Tag,
    /// Communicator id.
    pub comm: u32,
    /// Payload length.
    pub len: usize,
    /// Staging buffer ("a buffer is allocated to receive the message").
    pub staging: MemRegion,
    /// Arrival/claim state, shared with the deposit completion callback.
    pub state: Arc<Mutex<UnexpectedData>>,
}

/// `match.*` telemetry probes: queue traffic, wildcard pressure, and the
/// depth distributions the paper's section IV.A discussion of parallel
/// receive queues turns on.
struct MatchProbes {
    /// Messages that matched a pre-posted receive (fast path).
    matched_posted: Counter,
    /// Posted receives that matched an already-staged unexpected message.
    matched_unexpected: Counter,
    /// Receives queued on the posted queue (matched nothing at post time).
    posted_queued: Counter,
    /// Messages staged on the unexpected queue.
    unexpected_queued: Counter,
    /// Successful matches whose posted selector used `ANY_SOURCE` or
    /// `ANY_TAG` — the wildcard traffic that forces the single-queue/L2
    /// mutex design.
    wildcard_hits: Counter,
    /// Posted-queue depth observed at each enqueue.
    posted_depth: Histogram,
    /// Unexpected-queue depth observed at each enqueue.
    unexpected_depth: Histogram,
}

impl MatchProbes {
    fn new(upc: &Upc) -> MatchProbes {
        MatchProbes {
            matched_posted: upc.counter("match.matched_posted"),
            matched_unexpected: upc.counter("match.matched_unexpected"),
            posted_queued: upc.counter("match.posted_queued"),
            unexpected_queued: upc.counter("match.unexpected_queued"),
            wildcard_hits: upc.counter("match.wildcard_hits"),
            posted_depth: upc.histogram("match.posted_depth"),
            unexpected_depth: upc.histogram("match.unexpected_depth"),
        }
    }
}

/// The per-rank matching engine.
pub struct MatchEngine {
    /// The L2 atomic mutex serializing queue access.
    pub lock: L2TicketMutex,
    queues: Mutex<Queues>,
    probes: MatchProbes,
}

#[derive(Default)]
struct Queues {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
}

impl Default for MatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchEngine {
    /// An empty engine with a private telemetry registry (unit tests,
    /// standalone use). Production ranks use
    /// [`MatchEngine::with_telemetry`] so `match.*` probes land in the
    /// machine-wide snapshot.
    pub fn new() -> MatchEngine {
        Self::with_telemetry(&Upc::new())
    }

    /// An empty engine registering its `match.*` probes on `upc`.
    pub fn with_telemetry(upc: &Upc) -> MatchEngine {
        MatchEngine {
            lock: L2TicketMutex::new(),
            queues: Mutex::new(Queues::default()),
            probes: MatchProbes::new(upc),
        }
    }

    /// Incoming-message side: find the first posted receive matching
    /// (src, tag, comm) and remove it, or `None` (the caller then stages
    /// the message as unexpected with [`MatchEngine::add_unexpected`]).
    ///
    /// Callers must hold [`MatchEngine::lock`] across this call and any
    /// related queue mutation to keep match order consistent — the L2
    /// mutex discipline of the paper.
    pub fn match_posted(&self, src: i32, tag: Tag, comm: u32) -> Option<PostedRecv> {
        let mut q = self.queues.lock();
        let idx = q
            .posted
            .iter()
            .position(|p| p.comm == comm && matches(p.src, p.tag, src, tag))?;
        self.probes.matched_posted.incr();
        let hit = q.posted.remove(idx);
        if let Some(p) = &hit {
            if p.src == ANY_SOURCE || p.tag == ANY_TAG {
                self.probes.wildcard_hits.incr();
            }
        }
        hit
    }

    /// Queue a message that matched nothing.
    pub fn add_unexpected(&self, msg: Unexpected) {
        self.probes.unexpected_queued.incr();
        let mut q = self.queues.lock();
        q.unexpected.push_back(msg);
        self.probes.unexpected_depth.record(q.unexpected.len() as u64);
    }

    /// Receive-posting side: find the first unexpected message matching the
    /// selector and remove it, or `None` (the caller then posts the
    /// receive with [`MatchEngine::add_posted`]).
    pub fn match_unexpected(&self, src: i32, tag: Tag, comm: u32) -> Option<Unexpected> {
        let mut q = self.queues.lock();
        let idx = q
            .unexpected
            .iter()
            .position(|u| u.comm == comm && matches(src, tag, u.src, u.tag))?;
        self.probes.matched_unexpected.incr();
        if src == ANY_SOURCE || tag == ANY_TAG {
            self.probes.wildcard_hits.incr();
        }
        q.unexpected.remove(idx)
    }

    /// Queue a receive that matched nothing.
    pub fn add_posted(&self, recv: PostedRecv) {
        self.probes.posted_queued.incr();
        let mut q = self.queues.lock();
        q.posted.push_back(recv);
        self.probes.posted_depth.record(q.posted.len() as u64);
    }

    /// Probe: the envelope of the first unexpected message matching the
    /// selector, without removing it (`MPI_Probe` support).
    pub fn peek_unexpected(&self, src: i32, tag: Tag, comm: u32) -> Option<Status> {
        let q = self.queues.lock();
        q.unexpected
            .iter()
            .find(|u| u.comm == comm && matches(src, tag, u.src, u.tag))
            .map(|u| Status { source: u.src, tag: u.tag, len: u.len })
    }

    /// Posted receives currently queued.
    pub fn posted_len(&self) -> usize {
        self.queues.lock().posted.len()
    }

    /// Unexpected messages currently queued.
    pub fn unexpected_len(&self) -> usize {
        self.queues.lock().unexpected.len()
    }

    /// Messages that matched a pre-posted receive (fast path count).
    /// Telemetry-backed: reads 0 when the `telemetry` feature is off.
    pub fn matched_posted_count(&self) -> u64 {
        self.probes.matched_posted.value()
    }

    /// Messages that had to be staged unexpected. Telemetry-backed: reads
    /// 0 when the `telemetry` feature is off.
    pub fn unexpected_count(&self) -> u64 {
        self.probes.unexpected_queued.value()
    }
}

/// Deliver an unexpected message to a posted receive: copy the staged
/// bytes (or arrange delivery on arrival) and complete the request.
pub fn deliver_unexpected(u: Unexpected, buffer: (MemRegion, usize, usize), req: Arc<RequestInner>) {
    assert!(u.len <= buffer.2, "receive buffer too small: {} < {}", buffer.2, u.len);
    let status = Status { source: u.src, tag: u.tag, len: u.len };
    let mut state = u.state.lock();
    match &*state {
        UnexpectedData::Ready => {
            buffer.0.copy_from(buffer.1, &u.staging, 0, u.len);
            drop(state);
            req.complete_with(status);
        }
        UnexpectedData::Arriving => {
            *state = UnexpectedData::Claimed { buffer, request: req };
        }
        UnexpectedData::Claimed { .. } => unreachable!("unexpected message claimed twice"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(src: i32, tag: Tag, comm: u32) -> PostedRecv {
        PostedRecv {
            src,
            tag,
            comm,
            buffer: (MemRegion::zeroed(8), 0, 8),
            request: RequestInner::with_flag(),
        }
    }

    fn unexpected(src: i32, tag: Tag, comm: u32) -> Unexpected {
        Unexpected {
            src,
            tag,
            comm,
            len: 4,
            staging: MemRegion::from_vec(vec![1, 2, 3, 4]),
            state: Arc::new(Mutex::new(UnexpectedData::Ready)),
        }
    }

    #[test]
    fn first_match_in_post_order() {
        let m = MatchEngine::new();
        m.add_posted(posted(crate::ANY_SOURCE, 5, 0));
        m.add_posted(posted(2, 5, 0));
        // A message from 2 with tag 5 must match the wildcard first (it was
        // posted first).
        let hit = m.match_posted(2, 5, 0).expect("match");
        assert_eq!(hit.src, crate::ANY_SOURCE);
        let hit2 = m.match_posted(2, 5, 0).expect("second match");
        assert_eq!(hit2.src, 2);
        assert!(m.match_posted(2, 5, 0).is_none());
    }

    #[test]
    fn communicators_do_not_cross_match() {
        let m = MatchEngine::new();
        m.add_posted(posted(1, 1, 7));
        assert!(m.match_posted(1, 1, 8).is_none());
        assert!(m.match_posted(1, 1, 7).is_some());
    }

    #[test]
    fn unexpected_queue_fifo_per_selector() {
        let m = MatchEngine::new();
        let mut u1 = unexpected(3, 9, 0);
        u1.len = 1;
        m.add_unexpected(u1);
        let mut u2 = unexpected(3, 9, 0);
        u2.len = 2;
        m.add_unexpected(u2);
        assert_eq!(m.match_unexpected(3, 9, 0).unwrap().len, 1, "FIFO");
        assert_eq!(m.match_unexpected(ANY, 9, 0).unwrap().len, 2);
        assert!(m.match_unexpected(3, 9, 0).is_none());
    }

    const ANY: i32 = crate::ANY_SOURCE;

    #[test]
    fn deliver_ready_unexpected_copies_and_completes() {
        let u = unexpected(1, 2, 0);
        let buf = MemRegion::zeroed(8);
        let req = RequestInner::with_flag();
        deliver_unexpected(u, (buf.clone(), 2, 6), Arc::clone(&req));
        assert!(req.is_complete());
        assert_eq!(&buf.to_vec()[2..6], &[1, 2, 3, 4]);
        let st = req.status.lock().unwrap();
        assert_eq!(st.len, 4);
        assert_eq!(st.source, 1);
    }

    #[test]
    fn deliver_arriving_unexpected_claims() {
        let mut u = unexpected(1, 2, 0);
        u.state = Arc::new(Mutex::new(UnexpectedData::Arriving));
        let state = Arc::clone(&u.state);
        let req = RequestInner::with_flag();
        deliver_unexpected(u, (MemRegion::zeroed(8), 0, 8), Arc::clone(&req));
        assert!(!req.is_complete(), "claimed, not yet complete");
        assert!(matches!(&*state.lock(), UnexpectedData::Claimed { .. }));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn overflowing_receive_buffer_panics() {
        let mut u = unexpected(1, 2, 0);
        u.len = 16;
        u.staging = MemRegion::zeroed(16);
        deliver_unexpected(u, (MemRegion::zeroed(8), 0, 8), RequestInner::with_flag());
    }
}
